"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure, saves the rendered
rows under ``benchmarks/results/`` and asserts the paper's qualitative
claims about the shape of the data.

Environment knobs:

* ``REPRO_FAST=1`` — shrink datasets/trial counts for quick iteration.
* ``REPRO_SEED=<int>`` — change the experiment seed (default 7).
"""

import os
import sys
import warnings

import pytest

from repro.experiments import ExperimentContext, render_table, save_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# The numpy engine occasionally overflows on deliberately-diverging
# configurations (e.g. huge learning rates the tuner must learn to avoid);
# that is expected behaviour, not noise worth surfacing per-benchmark.
warnings.filterwarnings("ignore", category=RuntimeWarning)


_CAPTURE_MANAGER = None


@pytest.fixture(scope="session", autouse=True)
def _grab_capture_manager(request):
    """Remember pytest's capture manager so reproduced tables can be
    echoed to the real terminal/output even on passing tests."""
    global _CAPTURE_MANAGER
    _CAPTURE_MANAGER = request.config.pluginmanager.getplugin(
        "capturemanager"
    )


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(
        seed=int(os.environ.get("REPRO_SEED", "7")),
        samples=500,
        fast=os.environ.get("REPRO_FAST", "") == "1",
    )


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def run_experiment(benchmark, experiment, ctx, results_dir):
    """Run one experiment exactly once under pytest-benchmark timing,
    persist its table, and return the result for assertions."""
    result = benchmark.pedantic(
        experiment, args=(ctx,), iterations=1, rounds=1
    )
    path = save_table(result, results_dir)

    def emit() -> None:
        print()
        print(render_table(result))
        print(f"[saved to {path}]")

    # Echo the reproduced rows past pytest's capture so the benchmark
    # run's output contains every regenerated table.
    if _CAPTURE_MANAGER is not None:
        with _CAPTURE_MANAGER.global_and_fixture_disabled():
            emit()
    else:
        emit()
    return result
