"""Gate a ``BENCH_nn.json`` produced by ``run_perf.py`` against the
committed baseline.

Two independent checks:

1. **Speedup floors** (machine independent): the fast backend must stay
   meaningfully ahead of the ``np.add.at`` reference on the kernels this
   PR vectorized.  Floors are set below the measured speedups (~2x on
   the conv workloads at paper-native scale) to absorb scheduler noise
   without letting a real regression through.

2. **Absolute tolerance band** (same-machine CI cache): each fast-path
   median may not degrade by more than ``--max-slowdown`` (default 2x)
   against ``baseline.json``.  The band is deliberately wide because CI
   machines vary; the speedup floors are the sharp check.

Exits non-zero with a per-metric report on any violation.

Usage::

    python benchmarks/perf/check_regression.py \
        [--current BENCH_nn.json] [--baseline benchmarks/perf/baseline.json] \
        [--max-slowdown 2.0]
"""

from __future__ import annotations

import argparse
import json
import sys

#: Minimum acceptable fast/reference speedup per metric.  Only the
#: kernels the vectorization targets are gated; NLP (pure RNN, no conv)
#: is reported but never gated.
SPEEDUP_FLOORS = {
    "micro.conv1d.backward": 1.5,
    "micro.conv2d.backward": 1.5,
    # The 1-D pool backward was never an add.at scatter; its fast path
    # only saves the per-step buffer allocation, so gate the forward
    # (one-pass reduction vs two) and hold the backward near parity.
    "micro.maxpool1d.forward": 1.5,
    "micro.maxpool1d.backward": 0.8,
    "micro.maxpool2d.backward": 1.2,
    "e2e.SR": 1.5,
    "e2e.IC": 1.5,
    # Batched-trial execution: 8 stacked lanes must beat the same 8
    # trials run serially by >= 1.5x (2x is the target on IC, whose
    # dense gemms amortize best).  Bit-identity is asserted inside the
    # benchmark itself, so this speedup can never be bought with skipped
    # or diverged work.
    "batched.IC": 1.5,
    "batched.SR": 1.5,
    # Artifact cache, end-to-end: warm-resume must at least halve the
    # retrain cost over a BOHB bracket (analytic work ratio is 1.92x),
    # and an exact-memo replay of a finished session must be far faster
    # than retraining.
    "artifact.IC": 1.5,
    "artifact.IC_memo": 2.0,
    # Asynchronous scheduling: virtual-time makespan of a 64-wide IC
    # bracket list-scheduled over 8 workers with one slowed 5x.  ASHA
    # (no rung barriers) must finish >= 1.3x faster than the
    # wave-synchronous path, which stalls at every barrier until the
    # straggler catches up.  Deterministic — the simulation is exact, so
    # this floor has no noise margin to absorb.
    "scheduler.asha": 1.3,
}

#: Minimum absolute throughput per metric (machine dependent only in the
#: extreme: the floors sit an order of magnitude below a laptop-class
#: measurement).  The traffic replay engine must stay a tight numpy loop
#: — 50k simulated requests/sec keeps per-candidate trace replays
#: cheaper than the steady-state evaluation they replace.
ABSOLUTE_FLOORS = {
    "traffic.replay": ("requests_per_sec", 50_000.0),
    # Equal-quality clause of the asha gate: the best score ASHA finds
    # must stay within ~10% of the synchronous bracket's (quality is
    # wave-best/asha-best on lower-is-better scores; promotion trial ids
    # differ between the schedulers, which reseeds model init, so the
    # gate is a ratio floor rather than bit-equality).
    "scheduler.asha": ("quality", 0.9),
}


def _metrics(report: dict):
    for name, entry in report.get("micro", {}).items():
        yield f"micro.{name}", entry
    for name, entry in report.get("e2e", {}).items():
        yield f"e2e.{name}", entry
    for name, entry in report.get("batched", {}).items():
        yield f"batched.{name}", entry
    for name, entry in report.get("artifact", {}).items():
        yield f"artifact.{name}", entry
    for name, entry in report.get("scheduler", {}).items():
        yield f"scheduler.{name}", entry
    for name, entry in report.get("traffic", {}).items():
        yield f"traffic.{name}", entry


#: Floors are calibrated at full scale; smoke runs use smaller batches
#: and a single end-to-end round, so the ratio estimate is noisier and
#: the fixed per-call overheads weigh more.  Relax rather than skip: a
#: real regression (fast path slower than add.at) still trips the gate.
SMOKE_FLOOR_RELAX = 0.6


def check(current: dict, baseline: dict, max_slowdown: float) -> list:
    failures = []
    current_metrics = dict(_metrics(current))

    relax = 1.0 if current.get("scale") == "full" else SMOKE_FLOOR_RELAX
    for name, floor in SPEEDUP_FLOORS.items():
        floor = floor * relax
        entry = current_metrics.get(name)
        if entry is None:
            failures.append(f"{name}: missing from current report")
            continue
        if entry["speedup"] < floor:
            failures.append(
                f"{name}: fast/reference speedup {entry['speedup']:.2f}x "
                f"below floor {floor:.2f}x"
            )

    for name, (key, floor) in ABSOLUTE_FLOORS.items():
        floor = floor * relax
        entry = current_metrics.get(name)
        if entry is None:
            failures.append(f"{name}: missing from current report")
            continue
        if entry[key] < floor:
            failures.append(
                f"{name}: {key} {entry[key]:,.0f} below floor {floor:,.0f}"
            )

    # Absolute medians are only comparable like-for-like: a smoke run
    # (smaller batches/sample counts) against the committed full-scale
    # baseline would fail or pass on workload size, not on regressions.
    # The machine-independent speedup floors above still gate smoke runs.
    if current.get("scale") != baseline.get("scale"):
        print(
            f"note: scale mismatch (current={current.get('scale')!r}, "
            f"baseline={baseline.get('scale')!r}) — absolute tolerance "
            "band skipped, speedup floors still enforced"
        )
        return failures

    for name, base_entry in _metrics(baseline):
        entry = current_metrics.get(name)
        if entry is None:
            failures.append(f"{name}: present in baseline, missing now")
            continue
        if "fast_ms" in base_entry:
            ratio = entry["fast_ms"] / base_entry["fast_ms"]
            if ratio > max_slowdown:
                failures.append(
                    f"{name}: fast path {entry['fast_ms']:.2f}ms is "
                    f"{ratio:.2f}x the baseline "
                    f"{base_entry['fast_ms']:.2f}ms "
                    f"(allowed {max_slowdown:.1f}x)"
                )
        elif "fast_trials_per_sec" in base_entry:
            ratio = (
                base_entry["fast_trials_per_sec"]
                / entry["fast_trials_per_sec"]
            )
            if ratio > max_slowdown:
                failures.append(
                    f"{name}: {entry['fast_trials_per_sec']:.3f} trials/s "
                    f"is {ratio:.2f}x slower than baseline "
                    f"{base_entry['fast_trials_per_sec']:.3f} trials/s "
                    f"(allowed {max_slowdown:.1f}x)"
                )
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", default="BENCH_nn.json")
    parser.add_argument(
        "--baseline", default="benchmarks/perf/baseline.json"
    )
    parser.add_argument("--max-slowdown", type=float, default=2.0)
    args = parser.parse_args()

    with open(args.current) as handle:
        current = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)

    failures = check(current, baseline, args.max_slowdown)
    if failures:
        print(f"perf regression check FAILED ({len(failures)} violations):")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    count = len(dict(_metrics(current)))
    print(f"perf regression check passed ({count} metrics within bounds)")


if __name__ == "__main__":
    main()
