"""Performance-regression harness for the numpy NN engine.

Times the hot kernels (im2col/col2im convolution gradients, pooling)
and full training trials on both kernel backends — ``fast`` (strided
slice-accumulate, the default) and ``reference`` (the original
``np.add.at`` implementations, kept as oracle and baseline) — and writes
the medians to ``BENCH_nn.json``.

Two kinds of numbers come out:

* absolute medians (milliseconds / trials per second), compared by
  ``check_regression.py`` against the committed ``baseline.json`` with a
  tolerance band;
* fast-over-reference speedup ratios, which are largely machine
  independent and gate the "vectorized kernels actually pay" claim.

Micro shapes and end-to-end workloads run at the paper's native scales
(32x32 CIFAR images, ~8k-sample audio), where the kernels dominate; the
repo's default shrunken datasets spend too much time in Python glue to
measure kernels meaningfully.  ``--scale smoke`` keeps the shapes but
cuts sample counts and repeats for CI.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py \
        [--repeats N] [--scale full|smoke] [--out BENCH_nn.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import statistics
import tempfile
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.datasets import (
    make_agnews,
    make_cifar10,
    make_coco,
    make_speech_commands,
)
from repro.nn import train_model, use_backend
from repro.nn.conv import Conv1d, Conv2d, MaxPool1d, MaxPool2d
from repro.nn.models import build_conv_resnet, get_model_family

BACKENDS = ("fast", "reference")


def _best_ms(fn: Callable[[], None], repeats: int) -> float:
    """Best-of-N: the least-interference estimate, used for the long
    end-to-end trials where a single background hiccup skews a median
    taken over few repeats."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append((time.perf_counter() - start) * 1000.0)
    return min(times)


# ---------------------------------------------------------------------------
# Per-layer microbenchmarks
# ---------------------------------------------------------------------------

def _micro_cases(scale: str):
    batch = 64 if scale == "full" else 16
    rng = np.random.default_rng(0)

    def conv1d():
        layer = Conv1d(32, 32, 8, stride=4, rng=1)
        x = rng.normal(size=(batch, 32, 2048))
        return layer, x

    def conv2d():
        layer = Conv2d(16, 16, 3, rng=1)
        x = rng.normal(size=(batch, 16, 32, 32))
        return layer, x

    def maxpool1d():
        layer = MaxPool1d(4)
        x = rng.normal(size=(batch, 32, 4096))
        return layer, x

    def maxpool2d():
        layer = MaxPool2d(2)
        x = rng.normal(size=(batch, 16, 32, 32))
        return layer, x

    return {
        "conv1d": conv1d,
        "conv2d": conv2d,
        "maxpool1d": maxpool1d,
        "maxpool2d": maxpool2d,
    }


def run_micro(scale: str, repeats: int) -> Dict[str, dict]:
    results: Dict[str, dict] = {}
    for name, make_case in _micro_cases(scale).items():
        for direction in ("forward", "backward"):
            timed = {}
            for backend in BACKENDS:
                with use_backend(backend):
                    layer, x = make_case()
                    out = layer.forward(x)
                    grad_out = np.ones_like(out)
                    if direction == "forward":
                        run = lambda layer=layer, x=x: layer.forward(x)
                    else:
                        run = lambda layer=layer, g=grad_out: layer.backward(g)
                    run()  # warm the layer's scratch buffers
                    timed[backend] = run
            # Interleave backend timings so background-load drift cannot
            # bias one side: within a round the two backends run
            # back-to-back under near-identical load, so the per-round
            # ratio is robust even when absolute times wander.
            samples = {backend: [] for backend in BACKENDS}
            for _ in range(repeats):
                for backend in BACKENDS:
                    with use_backend(backend):
                        samples[backend].append(
                            _best_ms(timed[backend], 1)
                        )
            entry: Dict[str, float] = {
                f"{backend}_ms": statistics.median(samples[backend])
                for backend in BACKENDS
            }
            entry["speedup"] = statistics.median(
                reference / fast
                for fast, reference in zip(
                    samples["fast"], samples["reference"]
                )
            )
            results[f"{name}.{direction}"] = entry
            print(
                f"micro {name}.{direction:8s}  "
                f"fast {entry['fast_ms']:8.2f}ms  "
                f"reference {entry['reference_ms']:8.2f}ms  "
                f"speedup {entry['speedup']:.2f}x"
            )
    return results


# ---------------------------------------------------------------------------
# End-to-end training trials (trials/sec per workload)
# ---------------------------------------------------------------------------

def _e2e_cases(scale: str):
    full = scale == "full"

    def ic():
        dataset = make_cifar10(
            samples=800 if full else 120, image_size=32, seed=11
        )
        train, test = dataset.split(0.2, rng=0)
        # The default IC model is the dense ResNet (kept untouched for
        # reproducibility); the conv variant is what exercises the 2-D
        # kernels this harness watches.
        model = lambda: build_conv_resnet(
            train.sample_shape, train.num_classes, seed=3
        )
        loss = get_model_family("resnet").make_loss(dataset.num_classes)
        return model, loss, train, test, 64

    def sr():
        dataset = make_speech_commands(
            samples=600 if full else 80, length=8192, seed=11
        )
        train, test = dataset.split(0.2, rng=0)
        family = get_model_family("m5")
        model = lambda: family.instantiate(
            train.sample_shape, train.num_classes, seed=3
        )
        return model, family.make_loss(dataset.num_classes), train, test, 64

    def nlp():
        dataset = make_agnews(samples=640 if full else 160, seed=11)
        train, test = dataset.split(0.2, rng=0)
        family = get_model_family("textrnn")
        model = lambda: family.instantiate(
            train.sample_shape, train.num_classes, seed=3
        )
        return model, family.make_loss(dataset.num_classes), train, test, 64

    def od():
        dataset = make_coco(
            samples=480 if full else 120, image_size=16, seed=11
        )
        train, test = dataset.split(0.2, rng=0)
        family = get_model_family("yolo")
        model = lambda: family.instantiate(
            train.sample_shape, train.num_classes, seed=3
        )
        return model, family.make_loss(dataset.num_classes), train, test, 64

    return {
        "IC": (ic, "conv_resnet @ 3x32x32"),
        "SR": (sr, "m5 @ 1x8192"),
        "NLP": (nlp, "textrnn @ 24x12"),
        "OD": (od, "yolo @ 3x16x16"),
    }


def run_e2e(scale: str, repeats: int) -> Dict[str, dict]:
    results: Dict[str, dict] = {}
    for workload, (make_case, description) in _e2e_cases(scale).items():
        make_model, loss, train, test, batch = make_case()
        entry: Dict[str, object] = {"model": description}

        def trial():
            train_model(
                make_model(), loss, train, test,
                epochs=1, batch_size=batch, lr=0.01, seed=5,
            )

        # Interleave the backends so slow drift in background load (CI
        # machines, shared runners) hits both measurements equally
        # instead of biasing whichever block ran during the busy spell;
        # the speedup is the median of per-round ratios for the same
        # reason (see run_micro).
        rounds = {backend: [] for backend in BACKENDS}
        for _ in range(repeats):
            for backend in BACKENDS:
                with use_backend(backend):
                    rounds[backend].append(_best_ms(trial, 1))
        for backend in BACKENDS:
            entry[f"{backend}_trials_per_sec"] = 1000.0 / min(rounds[backend])
        entry["speedup"] = statistics.median(
            reference / fast
            for fast, reference in zip(rounds["fast"], rounds["reference"])
        )
        results[workload] = entry
        print(
            f"e2e {workload:4s} ({description})  "
            f"fast {entry['fast_trials_per_sec']:.3f} trials/s  "
            f"reference {entry['reference_trials_per_sec']:.3f} trials/s  "
            f"speedup {entry['speedup']:.2f}x"
        )
    return results


# ---------------------------------------------------------------------------
# Batched-trial execution: K stacked lanes vs K serial runs (bit-identical)
# ---------------------------------------------------------------------------

def run_batched(scale: str, repeats: int) -> Dict[str, dict]:
    """Stacked K=8 training vs the same 8 trials run serially.

    Measures exactly what the ``TrialBatch`` execution unit runs in a
    session: the workload's own dataset, model family, and
    ``effective_training``-resolved batch/lr — so the speedup here is
    the one a ``--trial-batch 8`` session actually sees.  Bit-identity
    is asserted before timing (same per-lane seeds the serial path would
    derive), so the speedup can never come from skipped or diverged
    work.  ``speedup`` is the best-of-round serial/stacked wall-clock
    ratio; the floor in ``check_regression`` is 1.5x with 2x the target
    on IC.
    """
    from repro.nn.batched import train_model_batch
    from repro.rng import derive_seed
    from repro.workloads import get_workload

    full = scale == "full"
    lanes = 8
    epochs = 2
    cases = {"IC": 640 if full else 256, "SR": 320 if full else 128}
    results: Dict[str, dict] = {}
    for workload_id, samples in cases.items():
        wl = get_workload(workload_id)
        train_set, eval_set = wl.load(seed=3, samples=samples)
        family = wl.family
        loss = family.make_loss(train_set.num_classes)
        real_batch, lr = wl.effective_training(64)
        seeds = [derive_seed(3, "train", tid) for tid in range(lanes)]

        def make_models():
            return [
                family.instantiate(
                    train_set.sample_shape,
                    train_set.num_classes,
                    {"train_batch_size": 64},
                    seed=wl.model_seed(3, tid),
                )
                for tid in range(lanes)
            ]

        def serial():
            return [
                train_model(
                    model, loss, train_set, eval_set, epochs=epochs,
                    batch_size=real_batch, lr=lr, seed=seeds[tid],
                )
                for tid, model in enumerate(make_models())
            ]

        def stacked():
            return train_model_batch(
                make_models(), loss, train_set, eval_set, epochs=epochs,
                batch_size=real_batch, lr=lr, seeds=seeds,
            )

        with use_backend("fast"):
            serial_ref, stacked_ref = serial(), stacked()  # warms buffers
            for a, b in zip(serial_ref, stacked_ref):
                assert a.accuracy == b.accuracy, (workload_id, "accuracy")
                assert a.losses == b.losses, (workload_id, "losses")
                assert a.samples_seen == b.samples_seen, (
                    workload_id, "samples"
                )
                assert a.train_total_flops == b.train_total_flops, (
                    workload_id, "flops"
                )

            rounds = {"serial": [], "stacked": []}
            for _ in range(max(repeats, 2)):
                rounds["serial"].append(_best_ms(serial, 1))
                rounds["stacked"].append(_best_ms(stacked, 1))
        entry = {
            "model": f"{family.name} @ "
                     f"{'x'.join(str(d) for d in train_set.sample_shape)}",
            "lanes": lanes,
            "serial_trials_per_sec":
                lanes * 1000.0 / min(rounds["serial"]),
            "fast_trials_per_sec":
                lanes * 1000.0 / min(rounds["stacked"]),
            "speedup": min(rounds["serial"]) / min(rounds["stacked"]),
        }
        results[workload_id] = entry
        print(
            f"batched {workload_id:4s} (K={lanes}, {entry['model']})  "
            f"serial {entry['serial_trials_per_sec']:.2f} trials/s  "
            f"stacked {entry['fast_trials_per_sec']:.2f} trials/s  "
            f"speedup {entry['speedup']:.2f}x"
        )
    return results


# ---------------------------------------------------------------------------
# Artifact cache: warm-resume and exact-memoization end-to-end speedups
# ---------------------------------------------------------------------------

def run_artifact(scale: str) -> Dict[str, dict]:
    """Time one BOHB bracket on IC three ways: cold (no cache), warm
    (``--reuse-checkpoints`` on a fresh store) and memo (the same session
    replayed against the populated store).

    Unlike the kernel benchmarks these are whole-session wall-clock
    timings (best of two runs per mode) — the cold/warm work difference
    (40 vs 20.8 budget units over the 31-trial bracket) is far larger
    than scheduler noise.  ``speedup`` is cold-over-{warm,memo}, gated
    by ``check_regression``.
    """
    from repro.core import ModelTuningServer
    from repro.storage import TrialDatabase
    from repro.workloads import get_workload

    # Larger than the e2e cases on purpose: the warm-resume win is a
    # *work* ratio (40 vs 20.8 budget units over the bracket), so the
    # measured wall-clock ratio approaches it only where training time
    # dwarfs the per-trial fixed costs (model build, eval, store I/O).
    samples = 9600 if scale == "full" else 2400

    def session(database: Optional[TrialDatabase] = None,
                reuse: bool = False) -> float:
        server = ModelTuningServer(
            workload=get_workload("IC"),
            algorithm="bohb",
            database=database,
            seed=7,
            samples=samples,
            max_trials=31,  # exactly the first (widest) BOHB bracket
            reuse_checkpoints=reuse,
        )
        start = time.perf_counter()
        server.run()
        return time.perf_counter() - start

    # Min-of-2 per mode: the cold/warm work ratio is systematic, noise
    # spikes only ever slow a run down.  Warm must see a *fresh* store
    # each repeat (a second pass over a populated store is memo, not
    # warm), so the store is rebuilt per repeat and the last one feeds
    # the memo timings.
    cold_s = min(session() for _ in range(2))
    warm_runs, memo_runs = [], []
    for _ in range(2):
        tempdir = tempfile.mkdtemp(prefix="repro-perf-artifacts-")
        try:
            path = os.path.join(tempdir, "artifacts.sqlite")
            database = TrialDatabase(path)
            warm_runs.append(session(database=database, reuse=True))
            database.close()
            database = TrialDatabase(path)
            memo_runs.append(session(database=database, reuse=True))
            database.close()
        finally:
            shutil.rmtree(tempdir, ignore_errors=True)
    warm_s = min(warm_runs)
    memo_s = min(memo_runs)

    results = {
        "IC": {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s,
        },
        "IC_memo": {
            "cold_s": cold_s,
            "warm_s": memo_s,
            "speedup": cold_s / memo_s,
        },
    }
    print(
        f"artifact IC       cold {cold_s:7.2f}s  warm {warm_s:7.2f}s  "
        f"speedup {results['IC']['speedup']:.2f}x"
    )
    print(
        f"artifact IC_memo  cold {cold_s:7.2f}s  memo {memo_s:7.2f}s  "
        f"speedup {results['IC_memo']['speedup']:.2f}x"
    )
    return results


# ---------------------------------------------------------------------------
# Scheduler: asynchronous (ASHA) vs wave-synchronous halving under a straggler
# ---------------------------------------------------------------------------

def run_scheduler(scale: str) -> Dict[str, dict]:
    """Virtual-time makespan of one IC bracket, synchronous vs ASHA, on a
    heterogeneous worker pool with one straggler.

    Wall-clock cannot measure parallel scheduling honestly on a loaded
    (or single-core) benchmark host, so this follows the repo's
    virtual-time convention (DESIGN.md §5): both schedulers run inline —
    bit-deterministic, every trial carrying its emulator-virtual
    duration — and the measured quantity is the **simulated makespan**
    of those trials list-scheduled over an 8-worker pool whose first
    worker is 5x slower (the straggler every shared cluster has).  A
    64-wide bracket keeps rung widths above the pool size, so the
    barrier stall — not the longest promotion chain — dominates.  The
    synchronous wave path may not start a rung before the previous rung
    fully completes (the coordinator's barrier); ASHA carries no
    barriers, only true dependencies (a promotion cannot start before
    its parent's result has landed).  Identical pool, identical
    assignment policy, identical trial durations per scheduler's own
    schedule — the ratio isolates exactly the barrier stall.

    ``speedup`` is wave-over-asha makespan (gated at >= 1.3x) and
    ``quality`` is wave-best-score over asha-best-score (lower scores
    are better, so >= ~1 means ASHA's answer is at least as good;
    promotion trial ids differ between the two schedulers, which
    reseeds model init, so bit-equality is not expected and the gate is
    a ratio floor).  Both numbers are bit-reproducible.
    """
    from repro.service import SessionCoordinator, SessionSpec, SessionStore
    from repro.storage import TrialDatabase

    samples = 2400 if scale == "full" else 480
    pool_workers = 8
    slow_factor = 5.0
    #: Wide bracket (vs the eta**rungs = 16 default): rung widths must
    #: exceed the pool for the barrier stall to be the dominant cost —
    #: a pool-sized bracket is dominated by the longest promotion chain,
    #: which no scheduler can compress.
    num_configs = 64

    def session(scheduler: str):
        tempdir = tempfile.mkdtemp(prefix="repro-perf-scheduler-")
        try:
            database = TrialDatabase(
                os.path.join(tempdir, "session.sqlite")
            )
            spec = SessionSpec(
                workload="IC", samples=samples, seed=7,
                scheduler=scheduler, num_configs=num_configs,
            )
            session_id = SessionStore(database).create(spec)
            result = SessionCoordinator(
                database, session_id, workers=0
            ).run()
            record = SessionStore(database).get(session_id)
            database.close()
            return result, record.result["decision_log"]
        finally:
            shutil.rmtree(tempdir, ignore_errors=True)

    def assign(free: List[float], ready: float, duration: float) -> float:
        """Place on the worker that frees first; returns the end time.

        This is lease-queue order: a worker takes the head of the queue
        the moment it frees, blind to how long the unit will run.
        Earliest-*finish* placement would be omniscient — it would route
        long trials away from the straggler and hide exactly the stall
        this gate measures.
        """
        w = min(range(pool_workers), key=lambda i: (max(free[i], ready), i))
        factor = slow_factor if w == 0 else 1.0
        end = max(free[w], ready) + duration * factor
        free[w] = end
        return end

    def wave_makespan(result) -> float:
        free = [0.0] * pool_workers
        barrier = 0.0
        rung_key, rung_end = None, 0.0
        for trial in result.trials:
            if (trial.bracket, trial.rung) != rung_key:
                rung_key = (trial.bracket, trial.rung)
                barrier = max(barrier, rung_end)
            rung_end = max(
                rung_end, assign(free, barrier, trial.trial_runtime_s)
            )
        return max(free)

    def asha_makespan(result, decision_log) -> float:
        parent_of = {
            entry[4]: entry[1]
            for entry in decision_log
            if entry[4] is not None
        }
        free = [0.0] * pool_workers
        done: Dict[int, float] = {}
        for trial in result.trials:  # issue order (inline = pin order)
            ready = done.get(parent_of.get(trial.trial_id), 0.0)
            done[trial.trial_id] = assign(
                free, ready, trial.trial_runtime_s
            )
        return max(free)

    wave_result, _ = session("sha")
    asha_result, decision_log = session("asha")
    wave_s = wave_makespan(wave_result)
    asha_s = asha_makespan(asha_result, decision_log)

    results = {
        "asha": {
            "wave_s": wave_s,
            "asha_s": asha_s,
            "speedup": wave_s / asha_s,
            "quality": wave_result.best_score / asha_result.best_score,
        }
    }
    print(
        f"scheduler IC      wave {wave_s:7.2f}s  "
        f"asha {asha_s:7.2f}s  (virtual)  "
        f"speedup {results['asha']['speedup']:.2f}x  "
        f"quality {results['asha']['quality']:.3f}"
    )
    return results


# ---------------------------------------------------------------------------
# Traffic replay: simulated requests/sec through the discrete-event engine
# ---------------------------------------------------------------------------

def run_traffic(scale: str, repeats: int) -> Dict[str, dict]:
    """Replay throughput of :func:`repro.traffic.replay.replay_trace`.

    The SLO-aware objectives replay a full trace per candidate
    configuration, so replay speed bounds how much load-aware tuning
    costs on top of steady-state scoring; ``check_regression`` holds the
    floor at 50k simulated requests/sec.
    """
    from repro.traffic import build_trace, replay_trace

    duration = 60 if scale == "full" else 12
    trace = build_trace(f"poisson:rate=5000,duration={duration},seed=1")

    def latency_fn(batch: int) -> float:
        return 0.0005 + 0.0001 * batch

    def replay() -> None:
        replay_trace(trace, latency_fn, max_batch=64)

    replay()  # warm the latency tables / allocator
    best_ms = _best_ms(replay, max(repeats, 3))
    stats = replay_trace(trace, latency_fn, max_batch=64)
    results = {
        "replay": {
            "requests": stats.requests,
            "mean_batch": stats.mean_batch,
            "replay_ms": best_ms,
            "requests_per_sec": stats.requests / (best_ms / 1000.0),
        }
    }
    print(
        f"traffic replay    {stats.requests} requests in {best_ms:8.2f}ms  "
        f"({results['replay']['requests_per_sec']:,.0f} req/s)"
    )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per measurement (median is reported)",
    )
    parser.add_argument(
        "--scale", choices=("full", "smoke"), default="full",
        help="smoke keeps the paper-native shapes but cuts sample counts",
    )
    parser.add_argument(
        "--out", default="BENCH_nn.json", help="output JSON path"
    )
    args = parser.parse_args()

    e2e_repeats = max(3, args.repeats // 2) if args.scale == "full" else 1
    report = {
        "schema": 1,
        "scale": args.scale,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "micro": run_micro(args.scale, args.repeats),
        "e2e": run_e2e(args.scale, e2e_repeats),
        "batched": run_batched(args.scale, e2e_repeats),
        "artifact": run_artifact(args.scale),
        "scheduler": run_scheduler(args.scale),
        "traffic": run_traffic(args.scale, args.repeats),
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
