"""Ablation: the §3.4 historical-results cache, on vs off."""

from conftest import run_experiment

from repro.experiments import ablation_inference_cache


def test_ablation_inference_cache(benchmark, ctx, results_dir):
    result = run_experiment(
        benchmark, ablation_inference_cache, ctx, results_dir
    )
    rows = {r["cache"]: r for r in result.rows}
    on, off = rows["on"], rows["off"]
    # The cache collapses per-trial inference tuning down to one tune per
    # distinct architecture (ResNet has 3 depth choices).
    assert on["inference_tunes"] <= 3
    assert off["inference_tunes"] > on["inference_tunes"]
    # Without it, the inference lane does strictly more work: energy and
    # stalls can only grow.
    assert off["tuning_energy_kj"] >= on["tuning_energy_kj"]
    assert off["stall_s"] >= on["stall_s"]
