"""Ablation: the halving reduction factor (paper §4.3)."""

from conftest import run_experiment

from repro.experiments import ablation_reduction_factor


def test_ablation_reduction_factor(benchmark, ctx, results_dir):
    result = run_experiment(
        benchmark, ablation_reduction_factor, ctx, results_dir
    )
    by_eta = {r["eta"]: r for r in result.rows}
    assert set(by_eta) == {2, 3, 4}
    # A steeper reduction factor runs fewer trials overall (harder
    # pruning across brackets)...
    assert by_eta[4]["trials"] <= by_eta[2]["trials"]
    # ...and every setting still reaches a usable model.
    for row in result.rows:
        assert row["accuracy"] >= 0.5
