"""Ablation: onefold vs hierarchical tuning (paper §4.1)."""

from conftest import run_experiment

from repro.experiments import ablation_onefold_vs_hierarchical


def test_ablation_onefold_vs_hierarchical(benchmark, ctx, results_dir):
    result = run_experiment(
        benchmark, ablation_onefold_vs_hierarchical, ctx, results_dir
    )
    by_key = {(r["workload"], r["approach"]): r for r in result.rows}
    for workload in ("IC", "SR"):
        onefold = by_key[(workload, "onefold")]
        hierarchical = by_key[(workload, "hierarchical")]
        # Both approaches expose a system-parameter choice in the end...
        assert onefold["gpus_chosen"] != ""
        assert hierarchical["gpus_chosen"] != ""
        # ...but the hierarchical pipeline pays an extra phase: its total
        # energy is not lower than the onefold run's on these workloads.
        assert (
            hierarchical["tuning_energy_kj"]
            >= 0.8 * onefold["tuning_energy_kj"]
        )
