"""Ablation: search warm-starting from prior sessions, cold vs warm."""

from conftest import run_experiment

from repro.experiments import ablation_warm_start


def test_ablation_warm_start(benchmark, ctx, results_dir):
    result = run_experiment(benchmark, ablation_warm_start, ctx, results_dir)
    rows = {r["phase"]: r for r in result.rows}
    first, cold, warm = rows["first"], rows["cold"], rows["warm"]
    # Every phase reached the target accuracy.
    assert min(first["accuracy"], cold["accuracy"], warm["accuracy"]) >= 0.75
    # The warm session absorbed the first session's trials...
    assert warm["warm_started"] == first["trials"]
    # ...and reached the target in strictly fewer trials than the
    # identically-seeded cold run.
    assert warm["trials"] < cold["trials"]
