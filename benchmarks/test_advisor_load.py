"""Load benchmark: the advisor server under sustained concurrent asks.

Not a paper figure — this guards the ROADMAP's production-scale goal for
the recommendation path: many clients asking "what configuration for
workload X on device Y?" must be served from the LRU cache at four-digit
request rates with single-digit-millisecond tails.
"""

import threading

import pytest

from repro.advisor import AdvisorServer, KnowledgeBase, run_load
from repro.storage import TrialDatabase

#: The ISSUE's floor for sustained cached throughput, requests/second.
TARGET_RPS = 1000.0


@pytest.fixture(scope="module")
def served():
    from tests.test_advisor_kb import index

    database = TrialDatabase()
    kb = KnowledgeBase(database)
    for workload in ("IC", "SR", "NLP", "OD"):
        index(kb, workload=workload)
    server = AdvisorServer(database, port=0)
    thread = threading.Thread(target=server.serve_until_drained, daemon=True)
    thread.start()
    yield server
    server.initiate_drain()
    thread.join(timeout=5.0)


def test_sustained_throughput(served, benchmark):
    report = benchmark.pedantic(
        run_load,
        args=(served.host, served.port),
        kwargs=dict(
            threads=4,
            duration_s=2.0,
            asks=[
                {"workload": workload, "device": "armv7",
                 "objective": "runtime"}
                for workload in ("IC", "SR", "NLP", "OD")
            ],
        ),
        iterations=1,
        rounds=1,
    )
    print()
    print(report.render())
    assert report.errors == 0
    assert report.requests > 0
    assert report.throughput_rps >= TARGET_RPS
    # Tail latency comes from real telemetry on both sides of the wire.
    assert report.latency is not None and report.latency.p99 > 0.0
    server_latency = report.server_stats["stats"]["advisor.latency_s"]
    assert server_latency["p99"] > 0.0
    # Steady state is cache-served: after warm-up every distinct question
    # is resident, so hits dominate misses by orders of magnitude.
    stats = report.server_stats["stats"]
    assert stats["advisor.cache_hits"] > 100 * stats["advisor.cache_misses"]


def test_rate_limited_server_sheds_load():
    from tests.test_advisor_kb import index

    database = TrialDatabase()
    index(KnowledgeBase(database))
    server = AdvisorServer(database, port=0, rate_limit=50.0, burst=10)
    thread = threading.Thread(target=server.serve_until_drained, daemon=True)
    thread.start()
    try:
        report = run_load(server.host, server.port, threads=2,
                          duration_s=0.5)
    finally:
        server.initiate_drain()
        thread.join(timeout=5.0)
    # Refusals surface as errors in the report, not hangs or timeouts.
    assert report.errors > 0
    assert report.server_stats["stats"]["advisor.rate_limited"] > 0
