"""Fig 1: perf-counter events, forward-of-training vs inference."""

from conftest import run_experiment

from repro.experiments import figure_01_counters


def test_fig01_counters(benchmark, ctx, results_dir):
    result = run_experiment(benchmark, figure_01_counters, ctx, results_dir)
    cpu_rows = [r for r in result.rows if r["category"] == "cpu"]
    memory_rows = [r for r in result.rows if r["category"] == "memory"]
    assert len(result.rows) == 22  # all events of Fig 1
    # CPU-bound events behave consistently across phases (ratio ~ 1)...
    for row in cpu_rows:
        assert 0.8 <= row["ratio"] <= 1.3, row["event"]
    # ...while memory-bound events diverge substantially.
    assert all(row["ratio"] > 1.4 for row in memory_rows)
    average_memory_ratio = sum(r["ratio"] for r in memory_rows) / len(
        memory_rows
    )
    assert average_memory_ratio > 2.0
