"""Fig 2: ResNet depth vs training cost and inference performance."""

from conftest import run_experiment

from repro.experiments import figure_02_model_hparams


def test_fig02_model_hparams(benchmark, ctx, results_dir):
    result = run_experiment(
        benchmark, figure_02_model_hparams, ctx, results_dir
    )
    assert result.column("layers") == [18, 34, 50]
    runtimes = result.column("train_runtime_m")
    train_energy = result.column("train_energy_kj")
    throughput = result.column("inference_throughput_sps")
    inference_energy = result.column("inference_energy_j")
    # Training cost grows with depth (Fig 2a).
    assert runtimes == sorted(runtimes)
    assert train_energy == sorted(train_energy)
    # Inference throughput inversely proportional to depth, energy
    # proportional (Fig 2b).
    assert throughput == sorted(throughput, reverse=True)
    assert inference_energy == sorted(inference_energy)
