"""Fig 3: training and inference batch-size effects."""

from conftest import run_experiment

from repro.experiments import figure_03_batch_sizes


def test_fig03_batch_sizes(benchmark, ctx, results_dir):
    result = run_experiment(benchmark, figure_03_batch_sizes, ctx, results_dir)
    train = [r for r in result.rows if r["phase"] == "train"]
    inference = [r for r in result.rows if r["phase"] == "inference"]
    assert [r["batch"] for r in train] == [256, 512, 1024]
    assert [r["batch"] for r in inference] == [1, 10, 100]
    # Fig 3a: batch 1024 is the costliest way to reach the target accuracy
    # (needs more epochs despite cheaper steps).
    by_batch = {r["batch"]: r for r in train}
    assert by_batch[1024]["epochs"] >= by_batch[256]["epochs"]
    # Fig 3b: multi-image inference beats single-image on both throughput
    # and per-image energy.
    inf = {r["batch"]: r for r in inference}
    assert inf[10]["throughput_sps"] > inf[1]["throughput_sps"]
    assert inf[10]["energy_per_img_j"] < inf[1]["energy_per_img_j"]
