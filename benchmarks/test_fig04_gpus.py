"""Fig 4: number of training GPUs x batch size."""

from conftest import run_experiment

from repro.experiments import figure_04_gpus


def test_fig04_gpus(benchmark, ctx, results_dir):
    result = run_experiment(benchmark, figure_04_gpus, ctx, results_dir)
    small = {r["gpus"]: r for r in result.rows if r["batch"] == 32}
    large = {r["gpus"]: r for r in result.rows if r["batch"] == 1024}
    # Fig 4a: with batch 32, more GPUs make training *slower* — the paper
    # measures degradation of up to ~120 %.
    assert small[8]["runtime_m"] > small[1]["runtime_m"]
    assert 50 <= small[8]["vs_1gpu_runtime_pct"] <= 150
    assert small[8]["energy_kj"] > small[1]["energy_kj"]
    # Fig 4b: with batch 1024, runtime improves but sub-linearly...
    assert large[8]["runtime_m"] < large[1]["runtime_m"]
    speedup = large[1]["runtime_m"] / large[8]["runtime_m"]
    assert speedup < 8.0
    # ...while energy does NOT improve along with it.
    assert large[8]["energy_kj"] >= large[1]["energy_kj"] * 0.95
