"""Fig 5: inference CPU cores x batch size on the edge device."""

from conftest import run_experiment

from repro.experiments import figure_05_cpu_cores


def test_fig05_cpu_cores(benchmark, ctx, results_dir):
    result = run_experiment(benchmark, figure_05_cpu_cores, ctx, results_dir)
    single = {r["cores"]: r for r in result.rows if r["batch"] == 1}
    multi = {r["cores"]: r for r in result.rows if r["batch"] == 10}
    # Fig 5a: single-image inference — throughput does not grow with
    # cores, energy does.
    assert single[4]["throughput_sps"] <= single[1]["throughput_sps"] * 1.25
    assert single[4]["energy_per_img_j"] > single[1]["energy_per_img_j"]
    # Fig 5b: multi-image — throughput grows with cores, but 2 -> 4 cores
    # buys little throughput for a clear energy premium (paper: +9 %
    # throughput, +33 % energy).
    assert multi[4]["throughput_sps"] > multi[1]["throughput_sps"]
    throughput_gain = (
        multi[4]["throughput_sps"] / multi[2]["throughput_sps"] - 1
    )
    energy_premium = (
        multi[4]["energy_per_img_j"] / multi[2]["energy_per_img_j"] - 1
    )
    assert throughput_gain < 0.35
    assert energy_premium > 0.10
    assert energy_premium > throughput_gain
