"""Fig 6: pipelined overlap of the model and inference tuning servers."""

from conftest import run_experiment

from repro.experiments import figure_06_pipeline


def test_fig06_pipeline(benchmark, ctx, results_dir):
    result = run_experiment(benchmark, figure_06_pipeline, ctx, results_dir)
    model = [r for r in result.rows if r["lane"] == "model"
             and r["label"].startswith("trial:")]
    inference = [r for r in result.rows if r["lane"] == "inference"]
    assert len(model) == 3 and len(inference) == 3
    # Every inference job is fully contained within its trial's window:
    # the async server adds no wall-clock overhead (paper §3.3).
    for trial, job in zip(model, inference):
        assert job["start_s"] >= trial["start_s"]
        assert job["end_s"] <= trial["end_s"]
    stalls = [r for r in result.rows if r["label"].startswith("stall:")]
    assert not stalls
    # The model lane runs back to back: makespan = 3 trials exactly.
    assert model[-1]["end_s"] == sum(r["duration_s"] for r in model)
