"""Fig 10: trial placement of grid, random and BOHB searches."""

from conftest import run_experiment

from repro.experiments import figure_10_search_flow


def _mean_late_score(rows, algorithm):
    """Average objective of the last 4 trials of one algorithm."""
    scores = [r["score"] for r in rows if r["algorithm"] == algorithm]
    return sum(scores[-4:]) / 4


def test_fig10_search_flow(benchmark, ctx, results_dir):
    result = run_experiment(benchmark, figure_10_search_flow, ctx, results_dir)
    algorithms = {r["algorithm"] for r in result.rows}
    assert algorithms == {"grid", "random", "bohb"}
    for algorithm in algorithms:
        count = sum(1 for r in result.rows if r["algorithm"] == algorithm)
        assert count == 9
    # BOHB's later trials concentrate on the promising region: their mean
    # objective beats grid's systematic sweep (the paper's visual claim).
    assert _mean_late_score(result.rows, "bohb") < _mean_late_score(
        result.rows, "grid"
    )
