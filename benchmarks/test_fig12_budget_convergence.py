"""Fig 12: trial duration and accuracy convergence per budget strategy."""

from conftest import run_experiment

from repro.experiments import figure_12_budget_convergence


def _rows_for(result, budget):
    return [r for r in result.rows if r["budget"] == budget]


def test_fig12_budget_convergence(benchmark, ctx, results_dir):
    result = run_experiment(
        benchmark, figure_12_budget_convergence, ctx, results_dir
    )
    epochs = _rows_for(result, "epochs")
    dataset = _rows_for(result, "dataset")
    multi = _rows_for(result, "multi-budget")
    assert epochs and dataset and multi
    target = ctx.target_for("IC")

    def best_accuracy(rows):
        return max(r["accuracy"] for r in rows)

    def time_to_target(rows):
        """Cumulative trial time until the target accuracy is reached."""
        elapsed = 0.0
        for row in rows:
            elapsed += row["duration_m"]
            if row["accuracy"] >= target:
                return elapsed
        return float("inf")

    # Fig 12b: epoch and multi budgets reach the target accuracy; the
    # dataset budget plateaus well below it (paper: stuck around 40 %).
    assert best_accuracy(epochs) >= target
    assert best_accuracy(multi) >= target
    assert best_accuracy(dataset) < min(
        best_accuracy(epochs), best_accuracy(multi)
    )
    # Fig 12a/b combined: multi-budget reaches the target in at most
    # about the cumulative trial time of the epoch budget (usually much
    # less — its trials are far cheaper — though on easy tasks where the
    # epoch ladder saturates early the two converge).
    assert time_to_target(multi) < 1.25 * time_to_target(epochs)
    # Dataset-budget trials are the cheapest of all (Fig 12a).
    mean = lambda rows: sum(r["duration_m"] for r in rows) / len(rows)  # noqa: E731
    assert mean(dataset) < mean(multi) < mean(epochs)
