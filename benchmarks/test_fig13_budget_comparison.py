"""Fig 13: the three budget strategies across the four workloads."""

from conftest import run_experiment

from repro.experiments import figure_13_budget_comparison

WORKLOADS = ("IC", "SR", "NLP", "OD")


def test_fig13_budget_comparison(benchmark, ctx, results_dir):
    result = run_experiment(
        benchmark, figure_13_budget_comparison, ctx, results_dir
    )
    table = {
        (r["workload"], r["budget"]): r for r in result.rows
    }
    assert len(table) == 12
    multi_runtime_wins = 0
    multi_energy_wins = 0
    for workload in WORKLOADS:
        multi = table[(workload, "multi-budget")]
        epochs = table[(workload, "epochs")]
        if multi["tuning_runtime_m"] <= epochs["tuning_runtime_m"]:
            multi_runtime_wins += 1
        if multi["tuning_energy_kj"] <= epochs["tuning_energy_kj"]:
            multi_energy_wins += 1
    # The paper's claim: multi-budget performs consistently better than
    # the epoch budget (roughly 50 % cheaper on OD).  Require it to win on
    # at least 3 of 4 workloads on both axes.
    assert multi_runtime_wins >= 3
    assert multi_energy_wins >= 3
    # Inference recommendations converge to similar optima regardless of
    # budget — the paper makes this observation for the IC workload
    # ("the inference configuration of these 3 approaches are very
    # similar"); check IC's throughput stays within a 3x band.
    values = [
        table[("IC", budget)]["inference_throughput_sps"]
        for budget in ("epochs", "dataset", "multi-budget")
        if table[("IC", budget)]["inference_throughput_sps"] != ""
    ]
    if len(values) >= 2:
        assert max(values) <= 3.0 * min(values)
