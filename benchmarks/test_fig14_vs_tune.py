"""Fig 14: EdgeTune vs the Tune baseline."""

from conftest import run_experiment

from repro.experiments import figure_14_vs_tune

WORKLOADS = ("IC", "SR", "NLP", "OD")


def test_fig14_vs_tune(benchmark, ctx, results_dir):
    result = run_experiment(benchmark, figure_14_vs_tune, ctx, results_dir)
    edgetune = {
        r["workload"]: r for r in result.rows if r["system"] == "edgetune"
    }
    assert set(edgetune) == set(WORKLOADS)
    runtime_wins = sum(
        1 for w in WORKLOADS if edgetune[w]["runtime_diff_pct"] < 0
    )
    energy_wins = sum(
        1 for w in WORKLOADS if edgetune[w]["energy_diff_pct"] < 0
    )
    # Paper: tuning duration reduced by ~18 % and energy by ~53 %
    # (abstract: "at least 18 % and 53 %").  Require EdgeTune to win on
    # most workloads on both axes.
    assert runtime_wins >= 3
    assert energy_wins >= 3
    assert runtime_wins + energy_wins >= 7
    # Averaged across workloads the reductions are substantial — well past
    # the paper's "at least 18 %" headline.
    mean_runtime_diff = sum(
        edgetune[w]["runtime_diff_pct"] for w in WORKLOADS
    ) / len(WORKLOADS)
    mean_energy_diff = sum(
        edgetune[w]["energy_diff_pct"] for w in WORKLOADS
    ) / len(WORKLOADS)
    assert mean_runtime_diff <= -18
    assert mean_energy_diff <= -18
