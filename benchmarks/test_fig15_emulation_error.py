"""Fig 15: inference emulation percent error vs physical edge devices."""

from conftest import run_experiment

from repro.experiments import figure_15_emulation_error


def test_fig15_emulation_error(benchmark, ctx, results_dir):
    result = run_experiment(
        benchmark, figure_15_emulation_error, ctx, results_dir
    )
    rows = {r["metric"]: r for r in result.rows}
    assert set(rows) == {"throughput", "energy"}
    for metric, row in rows.items():
        # Paper §2.1: "the error ... is small (at most 20 % in our
        # experiments)"; the box plot's bulk sits well under that.
        assert row["p50"] <= 20.0, metric
        assert row["mean"] <= 25.0, metric
        # Outliers exist (the whiskers) but stay bounded.
        assert row["max"] <= 80.0, metric
        assert row["count"] >= 50
