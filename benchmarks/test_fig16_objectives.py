"""Fig 16: runtime-based vs energy-based objective functions."""

from conftest import run_experiment

from repro.experiments import figure_16_objectives

WORKLOADS = ("IC", "SR", "NLP", "OD")


def test_fig16_objectives(benchmark, ctx, results_dir):
    result = run_experiment(benchmark, figure_16_objectives, ctx, results_dir)
    by_key = {(r["workload"], r["objective"]): r for r in result.rows}
    assert len(by_key) == 8
    # Fig 16c/d: the runtime-focused objective recommends configurations
    # with BOTH higher inference throughput and higher per-image energy
    # than the energy-focused one (throughput costs watts).
    direction_holds = 0
    for workload in WORKLOADS:
        runtime_run = by_key[(workload, "obj:runtime")]
        energy_run = by_key[(workload, "obj:energy")]
        if (
            runtime_run["inference_throughput_sps"]
            >= energy_run["inference_throughput_sps"] * 0.99
            and runtime_run["inference_energy_j"]
            >= energy_run["inference_energy_j"] * 0.99
        ):
            direction_holds += 1
    assert direction_holds >= 3
    # Fig 16a/b: tuning cost differences between the two objectives stay
    # moderate (paper: energy strongly correlates with runtime, so the
    # two objectives land close — diffs bounded, not orders of magnitude).
    for workload in WORKLOADS:
        runtime_run = by_key[(workload, "obj:runtime")]
        energy_run = by_key[(workload, "obj:energy")]
        ratio = (
            runtime_run["tuning_runtime_m"] / energy_run["tuning_runtime_m"]
        )
        assert 1 / 3 <= ratio <= 3, workload
        ratio_energy = (
            runtime_run["tuning_energy_kj"] / energy_run["tuning_energy_kj"]
        )
        assert 1 / 3 <= ratio_energy <= 3, workload
