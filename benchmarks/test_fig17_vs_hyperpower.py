"""Fig 17: EdgeTune vs HyperPower."""

from conftest import run_experiment

from repro.experiments import figure_17_vs_hyperpower

WORKLOADS = ("IC", "SR", "NLP", "OD")


def test_fig17_vs_hyperpower(benchmark, ctx, results_dir):
    result = run_experiment(
        benchmark, figure_17_vs_hyperpower, ctx, results_dir
    )
    edgetune = {
        r["workload"]: r for r in result.rows if r["system"] == "edgetune"
    }
    hyperpower = {
        r["workload"]: r for r in result.rows if r["system"] == "hyperpower"
    }
    assert set(edgetune) == set(WORKLOADS)
    # Paper: HyperPower's tuning duration/energy are up to 39 %/33 %
    # lower (it explores a smaller, inference-unaware space).  Require
    # HyperPower to tune cheaper on at least 3 of 4 workloads per axis.
    cheaper_runtime = sum(
        1 for w in WORKLOADS
        if hyperpower[w]["tuning_runtime_m"] <= edgetune[w]["tuning_runtime_m"]
    )
    cheaper_energy = sum(
        1 for w in WORKLOADS
        if hyperpower[w]["tuning_energy_kj"] <= edgetune[w]["tuning_energy_kj"]
    )
    assert cheaper_runtime + cheaper_energy >= 5
    # ...but EdgeTune's inference-aware choice serves at least as well:
    # throughput >= HyperPower's and energy <= on most workloads.
    inference_wins = sum(
        1 for w in WORKLOADS
        if edgetune[w]["inference_throughput_sps"]
        >= hyperpower[w]["inference_throughput_sps"] * 0.99
        and edgetune[w]["inference_energy_j"]
        <= hyperpower[w]["inference_energy_j"] * 1.01
    )
    assert inference_wins >= 3
