"""Table 1: the four evaluation workloads."""

from conftest import run_experiment

from repro.experiments import table_01_workloads


def test_table1_workloads(benchmark, ctx, results_dir):
    result = run_experiment(benchmark, table_01_workloads, ctx, results_dir)
    ids = result.column("id")
    assert ids == ["IC", "SR", "NLP", "OD"]
    # Table 1's real-corpus metadata is preserved verbatim.
    sizes = dict(zip(ids, result.column("train_files")))
    assert sizes == {"IC": 50_000, "SR": 85_511, "NLP": 120_000,
                     "OD": 164_000}
