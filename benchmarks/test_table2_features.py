"""Table 2: feature matrix vs related systems."""

from conftest import run_experiment

from repro.experiments import table_02_features


def test_table2_features(benchmark, ctx, results_dir):
    result = run_experiment(benchmark, table_02_features, ctx, results_dir)
    rows = {row["system"]: row for row in result.rows}
    edgetune = rows["EdgeTune (this repo)"]
    # The paper's claim: only EdgeTune supports everything at once.
    feature_columns = [c for c in result.columns if c != "system"]
    assert all(edgetune[f] == "yes" for f in feature_columns)
    for name, row in rows.items():
        if name == "EdgeTune (this repo)":
            continue
        assert any(row[f] == "no" for f in feature_columns), name
    # HyperPower specifically lacks inference awareness (used in Fig 17).
    assert rows["HyperPower"]["inference"] == "no"
    assert rows["HyperPower"]["system_params"] == "no"
