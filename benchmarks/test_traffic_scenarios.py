"""Serving-load scenarios: load-tuned must beat steady-state-tuned."""

from conftest import run_experiment

from repro.experiments import traffic_slo_comparison


def test_traffic_slo_comparison(benchmark, ctx, results_dir):
    result = run_experiment(
        benchmark, traffic_slo_comparison, ctx, results_dir
    )
    by_family = {}
    for row in result.rows:
        by_family.setdefault(row["family"], {})[row["tuning"]] = row
    assert set(by_family) == {"diurnal", "flash"}
    for family, picks in by_family.items():
        steady, load = picks["steady"], picks["load"]
        # The acceptance claim: the configuration tuned under replayed
        # load strictly beats the steady-state pick on its SLO score,
        # on every trace family.
        assert load["slo_score"] < steady["slo_score"], family
        # And the mechanism: the picks genuinely differ, and the
        # load-tuned one misses (at most) as many deadlines.
        assert (load["batch"], load["cores"]) != (
            steady["batch"], steady["cores"]
        ), family
        assert load["miss_pct"] <= steady["miss_pct"], family
