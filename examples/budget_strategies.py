"""Comparing the three trial-budget strategies (paper §4.3, Fig 12).

Runs the same BOHB tuning job on the IC workload three times — with the
epoch-based, dataset-based and multi-budget strategies — and prints the
per-trial durations and the accuracy convergence, reproducing the paper's
observation: epoch budgets buy accuracy with very long trials, dataset
budgets keep trials short but plateau, and the multi-budget balances both.

Run:  python examples/budget_strategies.py
"""

import warnings

warnings.filterwarnings("ignore", category=RuntimeWarning)

from repro.budgets import DatasetBudget, EpochBudget, MultiBudget  # noqa: E402
from repro.core import ModelTuningServer  # noqa: E402
from repro.objectives import AccuracyObjective  # noqa: E402
from repro.storage import TrialDatabase  # noqa: E402
from repro.workloads import get_workload  # noqa: E402

TARGET = 0.8


def main() -> None:
    workload = get_workload("IC")
    strategies = {
        "epochs": EpochBudget(),
        "dataset": DatasetBudget(),
        "multi-budget": MultiBudget(),
    }
    print(f"tuning {workload.workload_id} to {TARGET:.0%} accuracy\n")
    summary = []
    for name, budget in strategies.items():
        server = ModelTuningServer(
            workload=workload,
            algorithm="bohb",
            budget=budget,
            objective=AccuracyObjective(),
            database=TrialDatabase(),
            seed=7,
            include_system_parameters=False,
            fixed_gpus=1,
            samples=500,
            max_trials=50,
            target_accuracy=TARGET,
            system_name=f"example-{name}",
        )
        run = server.run()
        time_to_target = None
        elapsed = 0.0
        for record in run.trials:
            elapsed += record.training.runtime_minutes
            if time_to_target is None and record.accuracy >= TARGET:
                time_to_target = elapsed
        summary.append((name, run, time_to_target))
        print(f"--- {name} ---")
        print(f"  trials:             {run.num_trials}")
        print(f"  best accuracy:      {run.best_accuracy:.3f}")
        print(f"  longest trial:      "
              f"{max(r.training.runtime_minutes for r in run.trials):.1f} m")
        print(f"  total trial time:   {elapsed:.1f} m")
        print(f"  time to {TARGET:.0%}:       "
              f"{'never' if time_to_target is None else f'{time_to_target:.1f} m'}")
        print()

    print("=== verdict (paper Fig 12) ===")
    by_name = {name: (run, ttt) for name, run, ttt in summary}
    dataset_best = by_name["dataset"][0].best_accuracy
    print(f"dataset budget plateaus at {dataset_best:.0%} — cheap but "
          "insufficient")
    epochs_ttt = by_name["epochs"][1]
    multi_ttt = by_name["multi-budget"][1]
    if epochs_ttt and multi_ttt:
        print(f"multi-budget reaches the target in {multi_ttt:.0f} m of "
              f"trial time vs {epochs_ttt:.0f} m for the epoch budget "
              f"({(1 - multi_ttt / epochs_ttt):.0%} less)")


if __name__ == "__main__":
    main()
