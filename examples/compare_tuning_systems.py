"""EdgeTune against the paper's baselines on one workload (Figs 14/17).

Runs four tuning systems on the speech-recognition workload:

* **EdgeTune** — onefold, inference-aware, multi-budget;
* **Tune** — hyperparameters only, epoch budgets, accuracy objective;
* **HyperPower** — power-aware BO with early termination, no inference;
* **Hierarchical** — hyperparameters first, system parameters second.

Run:  python examples/compare_tuning_systems.py
"""

import warnings

warnings.filterwarnings("ignore", category=RuntimeWarning)

from repro import EdgeTune  # noqa: E402
from repro.baselines import (  # noqa: E402
    HierarchicalTuner,
    HyperPowerBaseline,
    TuneBaseline,
)
from repro.budgets import EpochBudget  # noqa: E402

WORKLOAD = "SR"
TARGET = 0.7
SAMPLES = 500
SEED = 7


def describe(result) -> None:
    print(f"--- {result.system} ---")
    print(f"  trials:          {result.num_trials}")
    print(f"  best accuracy:   {result.best_accuracy:.3f}")
    print(f"  best config:     {result.best_configuration}")
    print(f"  tuning runtime:  {result.tuning_runtime_minutes:.1f} m")
    print(f"  tuning energy:   {result.tuning_energy_kj:.0f} kJ")
    if result.inference is not None:
        m = result.inference.measurement
        print(f"  inference rec:   {result.inference.configuration} -> "
              f"{m.throughput_sps:.2f}/s at "
              f"{m.energy_per_sample_j:.2f} J/sample")
    else:
        print("  inference rec:   none (inference-unaware system)")
    print()


def main() -> None:
    runs = [
        EdgeTune(workload=WORKLOAD, seed=SEED, samples=SAMPLES,
                 target_accuracy=TARGET).tune(),
        TuneBaseline(workload=WORKLOAD, seed=SEED, samples=SAMPLES,
                     budget=EpochBudget(), target_accuracy=TARGET).tune(),
        HyperPowerBaseline(workload=WORKLOAD, seed=SEED, samples=SAMPLES,
                           target_accuracy=TARGET).tune(),
        HierarchicalTuner(workload=WORKLOAD, seed=SEED,
                          samples=SAMPLES).tune(),
    ]
    for result in runs:
        describe(result)

    edgetune, tune = runs[0], runs[1]
    runtime_diff = (
        edgetune.tuning_runtime_s / tune.tuning_runtime_s - 1
    ) * 100
    energy_diff = (edgetune.tuning_energy_j / tune.tuning_energy_j - 1) * 100
    print("=== EdgeTune vs Tune (paper Fig 14) ===")
    print(f"runtime: {runtime_diff:+.0f} %   energy: {energy_diff:+.0f} % "
          "(negative = EdgeTune wins)")


if __name__ == "__main__":
    main()
