"""Tuning a user-defined workload with the EdgeTune machinery.

EdgeTune's servers work with any :class:`~repro.workloads.Workload`, so a
downstream user can register their own (model family, dataset) pair.  Here
we define a compact "tiny-vision" workload: a narrow ResNet on a 6-class
synthetic image task, and tune it with the multi-budget BOHB pipeline.

Run:  python examples/custom_workload.py
"""

import warnings

warnings.filterwarnings("ignore", category=RuntimeWarning)

from repro import EdgeTune  # noqa: E402
from repro.datasets.base import Dataset  # noqa: E402
from repro.datasets import registry as dataset_registry  # noqa: E402
from repro.rng import make_rng  # noqa: E402
from repro.workloads import Workload  # noqa: E402
from repro.workloads.workload import Table1Row  # noqa: E402


def make_tiny_vision(samples: int = 400, seed=None, **_) -> Dataset:
    """Six-class 2-channel 6x6 image task."""
    rng = make_rng(seed)
    prototypes = rng.normal(0.0, 1.0, size=(6, 2, 6, 6))
    targets = rng.integers(6, size=samples)
    features = prototypes[targets] + rng.normal(
        0.0, 2.0, size=(samples, 2, 6, 6)
    )
    return Dataset("tiny-vision", features, targets, num_classes=6)


def main() -> None:
    # Register the dataset so Workload.load() can build it by name.
    dataset_registry._BUILDERS["tinyvision"] = make_tiny_vision

    workload = Workload(
        workload_id="TV",
        model_name="resnet",  # reuse the ResNet-like family
        dataset_name="tinyvision",
        table1=Table1Row(
            type_label="Tiny Vision (custom)",
            datasize="synthetic",
            train_files=400,
            test_files=100,
        ),
        learning_rate=0.02,
        samples=400,
    )

    result = EdgeTune(
        workload=workload,
        device="raspberrypi3b",
        target_accuracy=0.7,
        seed=13,
    ).tune()

    print("=== custom workload tuned ===")
    print(f"best configuration: {result.best_configuration}")
    print(f"best accuracy:      {result.best_accuracy:.3f}")
    print(f"tuning runtime:     {result.tuning_runtime_minutes:.1f} m "
          f"({result.num_trials} trials)")
    m = result.inference.measurement
    print(f"deployment:         {result.inference.configuration} on "
          f"{result.inference.device}")
    print(f"                    {m.throughput_sps:.2f} samples/s, "
          f"{m.energy_per_sample_j:.3f} J/sample")


if __name__ == "__main__":
    main()
