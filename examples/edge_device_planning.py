"""Deployment planning across edge devices for a trained model.

Given one architecture, sweep the emulated edge platforms (ARMv7 board,
Raspberry Pi 3B+, Intel i7 NUC) and their system parameters to answer the
deployment question EdgeTune's inference recommendations automate: which
device/cores/frequency/batch serves this model best, under a throughput
or an energy objective?

Run:  python examples/edge_device_planning.py
"""

from repro.core import InferenceTuningServer
from repro.hardware import edge_device_names
from repro.nn.models import build_m5
from repro.objectives import InferenceObjective
from repro.storage import TrialDatabase
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("SR")
    train_set, _ = workload.load(seed=7, samples=200)
    model = build_m5(train_set.sample_shape, train_set.num_classes,
                     embedding_dim=64, seed=7)
    flops, _ = model.flops(train_set.sample_shape)
    params = model.parameter_count()
    print(f"architecture: M5 (embedding 64), {params} params, "
          f"{flops} FLOPs/sample (scaled)\n")

    database = TrialDatabase()
    for metric in ("throughput", "energy"):
        print(f"=== objective: best {metric} ===")
        for device in edge_device_names():
            server = InferenceTuningServer(
                device=device,
                objective=InferenceObjective(metric),
                database=database,
                seed=7,
            )
            recommendation, _ = server.tune(
                architecture_key=f"m5-64:{device}:{metric}",
                forward_flops_per_sample=flops,
                parameter_count=params,
                space=workload.inference_space(device),
            )
            measurement = recommendation.measurement
            configuration = recommendation.configuration
            print(f"  {device:14s} -> batch "
                  f"{configuration['inference_batch_size']:>3}, "
                  f"{configuration['cores']} cores @ "
                  f"{configuration['frequency_ghz']} GHz: "
                  f"{measurement.throughput_sps:7.2f} samples/s, "
                  f"{measurement.energy_per_sample_j:6.3f} J/sample")
        print()

    print("(the Inference Tuning Server cached every architecture/device/"
          f"objective tuple: {database.inference_cache_size()} entries)")


if __name__ == "__main__":
    main()
