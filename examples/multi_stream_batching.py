"""Batch-size planning for the paper's two deployment scenarios (Fig 8).

A server receiving N-sample queries at a fixed frequency, and a
multi-stream system receiving Poisson single-sample queries, both benefit
from multi-sample inference — but the right batch size depends on the
device's latency curve and the load.  This example builds the latency
curve from the hardware emulator for a tuned architecture and lets the
Batching optimizer pick the sweet spot for each scenario.

Run:  python examples/multi_stream_batching.py
"""

from repro.batching import (
    MultiStreamScenario,
    ServerScenario,
    optimize_batch_size,
)
from repro.hardware import Emulator
from repro.nn.models import build_resnet
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("IC")
    train_set, _ = workload.load(seed=7, samples=200)
    model = build_resnet(train_set.sample_shape, train_set.num_classes,
                         num_layers=18, seed=7)
    flops, _ = model.flops(train_set.sample_shape)
    emulator = Emulator()

    def latency_on(device: str, cores: int):
        """Latency curve batch -> seconds for one device configuration."""

        def latency(batch_size: int) -> float:
            return emulator.measure_inference(
                forward_flops_per_sample=flops,
                parameter_count=model.parameter_count(),
                batch_size=batch_size,
                device=device,
                cores=cores,
            ).batch_latency_s

        return latency

    latency = latency_on("i7nuc", cores=4)

    print("=== Scenario 1: server (Fig 8 top) ===")
    print("queries of 64 samples arrive every 4 s")
    scenario = ServerScenario(samples_per_query=64, period_s=4.0)
    sweep = optimize_batch_size(latency, scenario)
    for result in sweep.results:
        marker = " <= best" if result is sweep.best else ""
        print(f"  batch {result.batch_size:>3}: mean response "
              f"{result.mean_response_s:7.3f} s, throughput "
              f"{result.throughput_sps:6.1f}/s, "
              f"{'stable' if result.stable else 'OVERLOADED'}{marker}")

    print("\n=== Scenario 2: multi-stream (Fig 8 bottom) ===")
    print("single-sample queries arrive at 30/s (Poisson)")
    stream = MultiStreamScenario(arrival_rate_sps=30.0, seed=1)
    sweep = optimize_batch_size(latency, stream)
    for result in sweep.results:
        marker = " <= best" if result is sweep.best else ""
        print(f"  batch {result.batch_size:>3}: mean response "
              f"{result.mean_response_s:7.3f} s, p95 "
              f"{result.p95_response_s:7.3f} s, "
              f"{'stable' if result.stable else 'OVERLOADED'}{marker}")

    print(f"\nrecommended batch sizes: server={sweep.best_batch_size}")


if __name__ == "__main__":
    main()
