"""Quickstart: inference-aware tuning of the image-classification workload.

Runs EdgeTune end to end on the synthetic CIFAR10 workload: BOHB search
over model/training/system parameters with multi-budget trials, while the
Inference Tuning Server finds the best edge-device deployment for every
architecture it encounters.

Run:  python examples/quickstart.py
"""

import warnings

warnings.filterwarnings("ignore", category=RuntimeWarning)

from repro import EdgeTune  # noqa: E402


def main() -> None:
    tuner = EdgeTune(
        workload="IC",  # ResNet-like on synthetic CIFAR10 (Table 1)
        device="armv7",  # the edge device to deploy on
        tuning_metric="runtime",  # §4.4 objective (1)
        inference_metric="energy",  # what the inference server minimises
        budget="multi-budget",  # the paper's Algorithm 2
        target_accuracy=0.8,  # stop once a full-budget trial hits 80 %
        seed=7,
        samples=600,  # synthetic dataset size (speed knob)
    )
    result = tuner.tune()

    print("=== EdgeTune result ===")
    print(f"workload:            {result.workload_id}")
    print(f"trials run:          {result.num_trials}")
    print(f"best configuration:  {result.best_configuration}")
    print(f"best accuracy:       {result.best_accuracy:.3f}")
    print(f"tuning runtime:      {result.tuning_runtime_minutes:.1f} "
          f"simulated minutes")
    print(f"tuning energy:       {result.tuning_energy_kj:.0f} kJ")
    print(f"pipeline stalls:     {result.stall_s:.0f} s")

    recommendation = result.inference
    print("\n=== Inference recommendation (deploy-ready) ===")
    print(f"device:              {recommendation.device}")
    print(f"configuration:       {recommendation.configuration}")
    measurement = recommendation.measurement
    print(f"expected throughput: {measurement.throughput_sps:.2f} samples/s")
    print(f"expected energy:     {measurement.energy_per_sample_j:.3f} "
          f"J/sample")
    print(f"found from cache:    {recommendation.cache_hit}")

    # The winning trained model is a live numpy model, ready to use.
    model = result.best_model
    print(f"\ntrained model: {type(model).__name__} with "
          f"{model.parameter_count()} parameters")


if __name__ == "__main__":
    main()
