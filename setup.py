"""Setuptools shim enabling legacy editable installs offline.

The sandbox has no network and no ``wheel`` package, so PEP 660 editable
wheels cannot be built; with this shim ``pip install -e . --no-build-isolation``
falls back to ``setup.py develop``, which works with the preinstalled
setuptools alone.
"""

from setuptools import setup

setup()
