"""EdgeTune reproduction: inference-aware multi-parameter tuning.

Reimplementation of *EdgeTune: Inference-Aware Multi-Parameter Tuning*
(Rocha, Felber, Schiavoni, Chen — Middleware 2022) as a self-contained
Python library: a numpy NN engine, synthetic workloads, an edge-device
hardware emulator, multi-fidelity search algorithms, the multi-budget
trial strategy, and the onefold Model/Inference tuning servers.

Quick start::

    from repro import EdgeTune

    result = EdgeTune(workload="IC", device="armv7", seed=7,
                      samples=600).tune()
    print(result.best_configuration, result.best_accuracy)
    print(result.inference.configuration)
"""

from .budgets import DatasetBudget, EpochBudget, MultiBudget, TrialBudget
from .core import (
    EdgeTune,
    InferenceRecommendation,
    InferenceTuningServer,
    ModelTuningServer,
    TrialRecord,
    TuningRunResult,
)
from .hardware import DeviceSpec, Emulator, RealEdgeDevice, get_device
from .objectives import (
    AccuracyObjective,
    InferenceObjective,
    PowerAwareObjective,
    RatioObjective,
)
from .space import Categorical, Configuration, Float, Integer, ParameterSpace
from .storage import TrialDatabase
from .workloads import Workload, get_workload, workload_ids

__version__ = "1.0.0"

__all__ = [
    "EdgeTune",
    "ModelTuningServer",
    "InferenceTuningServer",
    "TuningRunResult",
    "TrialRecord",
    "InferenceRecommendation",
    "MultiBudget",
    "EpochBudget",
    "DatasetBudget",
    "TrialBudget",
    "RatioObjective",
    "AccuracyObjective",
    "PowerAwareObjective",
    "InferenceObjective",
    "Emulator",
    "RealEdgeDevice",
    "DeviceSpec",
    "get_device",
    "ParameterSpace",
    "Configuration",
    "Categorical",
    "Integer",
    "Float",
    "TrialDatabase",
    "Workload",
    "get_workload",
    "workload_ids",
    "__version__",
]
