"""Top-level command-line interface.

Tune a workload end to end from the shell::

    python -m repro tune IC --device armv7 --target 0.8
    python -m repro tune SR --system tune --budget epochs
    python -m repro devices
    python -m repro workloads

(`python -m repro.experiments ...` regenerates the paper's tables/figures.)
"""

from __future__ import annotations

import argparse
import sys
import warnings


def print_result(result) -> None:
    """Shared result block for ``tune`` and ``service resume``."""
    print(f"system:           {result.system}")
    print(f"workload:         {result.workload_id}")
    print(f"trials:           {result.num_trials}")
    print(f"best accuracy:    {result.best_accuracy:.3f}")
    print(f"best config:      {result.best_configuration}")
    print(f"tuning runtime:   {result.tuning_runtime_minutes:.1f} simulated minutes")
    print(f"tuning energy:    {result.tuning_energy_kj:.1f} kJ")
    if result.inference is not None:
        measurement = result.inference.measurement
        print(f"deployment:       {result.inference.configuration} on "
              f"{result.inference.device}")
        print(f"                  {measurement.throughput_sps:.2f} samples/s, "
              f"{measurement.energy_per_sample_j:.3f} J/sample")


def _tune_service(args) -> int:
    """``tune --workers N``: run through the job-queue service."""
    import os
    import tempfile

    from .service import SERVICE_SYSTEMS, SessionCoordinator, SessionSpec, \
        SessionStore
    from .storage import TrialDatabase

    if args.system not in SERVICE_SYSTEMS:
        print(f"--workers does not support system {args.system!r} "
              f"(pick one of {', '.join(SERVICE_SYSTEMS)})", file=sys.stderr)
        return 2
    db_path = args.db
    temp_handle = None
    if db_path is None:
        # Workers are separate processes; they need a real file to share.
        temp_handle = tempfile.NamedTemporaryFile(
            prefix="repro-tune-", suffix=".sqlite", delete=False
        )
        temp_handle.close()
        db_path = temp_handle.name
    database = TrialDatabase(db_path)
    try:
        spec = SessionSpec(
            system=args.system,
            workload=args.workload,
            device=args.device,
            budget=args.budget,
            tuning_metric=args.metric,
            seed=args.seed,
            samples=args.samples,
            target_accuracy=args.target,
        )
        session_id = SessionStore(database).create(spec)
        result = SessionCoordinator(
            database, session_id, workers=args.workers
        ).run()
    finally:
        database.close()
        if temp_handle is not None:
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(db_path + suffix)
                except OSError:
                    pass
    print_result(result)
    return 0


def _cmd_tune(args) -> int:
    from . import EdgeTune
    from .baselines import HierarchicalTuner, HyperPowerBaseline, TuneBaseline
    from .budgets import build_budget

    warnings.filterwarnings("ignore", category=RuntimeWarning)
    if args.workers:
        return _tune_service(args)
    common = dict(
        workload=args.workload,
        seed=args.seed,
        samples=args.samples,
        target_accuracy=args.target,
    )
    if args.system == "edgetune":
        tuner = EdgeTune(device=args.device, budget=args.budget,
                         tuning_metric=args.metric, **common)
    elif args.system == "tune":
        tuner = TuneBaseline(budget=build_budget(args.budget), **common)
    elif args.system == "hyperpower":
        tuner = HyperPowerBaseline(budget=build_budget(args.budget), **common)
    else:
        common.pop("target_accuracy")
        tuner = HierarchicalTuner(device=args.device, tuning_metric=args.metric,
                                  **common)
    result = tuner.tune()
    print_result(result)
    return 0


def _cmd_devices(args) -> int:
    from .hardware import DEVICES

    for name, spec in sorted(DEVICES.items()):
        print(f"{name:14s} [{spec.device_class:6s}] {spec.cores} cores @ "
              f"{spec.max_frequency_ghz} GHz, {spec.memory_gb} GB RAM"
              + (f", {spec.gpus} GPUs" if spec.gpus else ""))
    return 0


def _cmd_workloads(args) -> int:
    from .workloads import WORKLOADS

    for workload_id, workload in WORKLOADS.items():
        row = workload.table1
        print(f"{workload_id:4s} {row.type_label:28s} "
              f"{workload.model_name:8s} on {workload.dataset_name} "
              f"({row.datasize}, {row.train_files} train files)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="EdgeTune reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    tune = subparsers.add_parser("tune", help="run a tuning job")
    tune.add_argument("workload", choices=["IC", "SR", "NLP", "OD"])
    tune.add_argument("--system", default="edgetune",
                      choices=["edgetune", "tune", "hyperpower",
                               "hierarchical"])
    tune.add_argument("--device", default="armv7")
    tune.add_argument("--budget", default="multi-budget")
    tune.add_argument("--metric", default="runtime",
                      choices=["runtime", "energy"])
    tune.add_argument("--target", type=float, default=None,
                      help="target accuracy (e.g. 0.8)")
    tune.add_argument("--seed", type=int, default=7)
    tune.add_argument("--samples", type=int, default=600)
    tune.add_argument("--workers", type=int, default=0,
                      help="run via the tuning service with N parallel "
                           "worker processes (0 = classic in-process run)")
    tune.add_argument("--db", default=None,
                      help="sqlite path for --workers runs (default: "
                           "a temporary file)")
    tune.set_defaults(func=_cmd_tune)

    devices = subparsers.add_parser("devices", help="list emulated devices")
    devices.set_defaults(func=_cmd_devices)

    workloads = subparsers.add_parser("workloads",
                                      help="list Table 1 workloads")
    workloads.set_defaults(func=_cmd_workloads)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
