"""Top-level command-line interface.

Tune a workload end to end from the shell::

    python -m repro tune IC --device armv7 --target 0.8
    python -m repro tune IC --db tuning.sqlite --warm-start
    python -m repro tune SR --system tune --budget epochs
    python -m repro advisor ask IC --db tuning.sqlite
    python -m repro devices
    python -m repro workloads

(`python -m repro.experiments ...` regenerates the paper's tables/figures;
``python -m repro advisor ...`` serves recommendations from past sessions.)
"""

from __future__ import annotations

import argparse
import sys
import warnings


def print_result(result) -> None:
    """Shared result block for ``tune`` and ``service resume``."""
    print(f"system:           {result.system}")
    print(f"workload:         {result.workload_id}")
    print(f"trials:           {result.num_trials}")
    print(f"best accuracy:    {result.best_accuracy:.3f}")
    print(f"best config:      {result.best_configuration}")
    print(f"tuning runtime:   {result.tuning_runtime_minutes:.1f} simulated minutes")
    print(f"tuning energy:    {result.tuning_energy_kj:.1f} kJ")
    if result.inference is not None:
        measurement = result.inference.measurement
        print(f"deployment:       {result.inference.configuration} on "
              f"{result.inference.device}")
        print(f"                  {measurement.throughput_sps:.2f} samples/s, "
              f"{measurement.energy_per_sample_j:.3f} J/sample")


def _tune_service(args) -> int:
    """``tune --workers N``: run through the job-queue service."""
    import os
    import tempfile

    from .service import SERVICE_SYSTEMS, SessionCoordinator, SessionSpec, \
        SessionStore
    from .storage import TrialDatabase

    if args.system not in SERVICE_SYSTEMS:
        print(f"--workers does not support system {args.system!r} "
              f"(pick one of {', '.join(SERVICE_SYSTEMS)})", file=sys.stderr)
        return 2
    db_path = args.db
    temp_handle = None
    if db_path is None:
        # Workers are separate processes; they need a real file to share.
        temp_handle = tempfile.NamedTemporaryFile(
            prefix="repro-tune-", suffix=".sqlite", delete=False
        )
        temp_handle.close()
        db_path = temp_handle.name
    database = TrialDatabase(db_path)
    try:
        spec = SessionSpec(
            system=args.system,
            workload=args.workload,
            device=args.device,
            budget=args.budget,
            tuning_metric=args.metric,
            seed=args.seed,
            samples=args.samples,
            target_accuracy=args.target,
            warm_start=args.warm_start,
            reuse_checkpoints=args.reuse_checkpoints,
            scheduler=args.scheduler,
            num_configs=args.num_configs,
            traffic=args.traffic,
            traffic_metric=args.traffic_metric,
            slo_p99_s=args.slo_p99,
            slo_deadline_s=args.slo_deadline,
            trial_batch=args.trial_batch,
        )
        session_id = SessionStore(database).create(spec)
        result = SessionCoordinator(
            database, session_id, workers=args.workers,
            pin_order=args.pin_order,
        ).run()
    finally:
        database.close()
        if temp_handle is not None:
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(db_path + suffix)
                except OSError:
                    pass
    print_result(result)
    return 0


def _slo_from_args(args):
    """SLOSpec from the ``--slo-*`` flags (None when none are set)."""
    if args.slo_p99 is None and args.slo_deadline is None:
        return None
    from .traffic import SLOSpec

    return SLOSpec(p99_target_s=args.slo_p99, deadline_s=args.slo_deadline)


def _cmd_tune(args) -> int:
    from . import EdgeTune
    from .baselines import HierarchicalTuner, HyperPowerBaseline, TuneBaseline
    from .budgets import build_budget
    from .storage import TrialDatabase

    warnings.filterwarnings("ignore", category=RuntimeWarning)
    if args.traffic is None and args.system == "edgetune" \
            and _slo_from_args(args) is not None:
        print("--slo-p99/--slo-deadline need --traffic (a trace to replay)",
              file=sys.stderr)
        return 2
    if args.traffic is not None and args.system != "edgetune":
        print("--traffic is only supported by --system edgetune",
              file=sys.stderr)
        return 2
    if args.scheduler is not None and args.system != "edgetune":
        print("--scheduler is only supported by --system edgetune",
              file=sys.stderr)
        return 2
    if args.num_configs is not None and args.scheduler not in ("sha", "asha"):
        print("--num-configs only applies to --scheduler sha/asha",
              file=sys.stderr)
        return 2
    if args.workers:
        return _tune_service(args)
    if args.warm_start and args.db is None:
        print("--warm-start needs --db (prior sessions to learn from)",
              file=sys.stderr)
        return 2
    if args.warm_start and args.system == "hierarchical":
        print("--warm-start is not supported by the hierarchical tuner",
              file=sys.stderr)
        return 2
    if args.reuse_checkpoints and args.system == "hierarchical":
        print("--reuse-checkpoints is not supported by the hierarchical "
              "tuner", file=sys.stderr)
        return 2
    database = TrialDatabase(args.db) if args.db is not None else None
    common = dict(
        workload=args.workload,
        seed=args.seed,
        samples=args.samples,
        target_accuracy=args.target,
        database=database,
    )
    try:
        if args.system == "edgetune":
            extra = {}
            if args.scheduler is not None:
                extra["algorithm"] = args.scheduler
            if args.num_configs is not None:
                extra["num_configs"] = args.num_configs
            tuner = EdgeTune(device=args.device, budget=args.budget,
                             tuning_metric=args.metric,
                             warm_start=args.warm_start,
                             reuse_checkpoints=args.reuse_checkpoints,
                             traffic=args.traffic,
                             traffic_metric=args.traffic_metric,
                             slo=_slo_from_args(args),
                             trial_batch=args.trial_batch,
                             **extra, **common)
        elif args.system == "tune":
            tuner = TuneBaseline(budget=build_budget(args.budget), **common)
        elif args.system == "hyperpower":
            tuner = HyperPowerBaseline(budget=build_budget(args.budget),
                                       **common)
        else:
            common.pop("target_accuracy")
            common.pop("database")
            tuner = HierarchicalTuner(device=args.device,
                                      tuning_metric=args.metric, **common)
        if args.warm_start and args.system in ("tune", "hyperpower"):
            tuner.server.warm_start = True
        if args.reuse_checkpoints and args.system in ("tune", "hyperpower"):
            tuner.server.enable_checkpoint_reuse()
        result = tuner.tune()
    finally:
        if database is not None:
            database.close()
    print_result(result)
    if args.warm_start and hasattr(tuner, "server"):
        print(f"warm-started from: "
              f"{tuner.server.warm_started_trials} prior trials")
    elif args.warm_start:
        print(f"warm-started from: "
              f"{tuner.model_server.warm_started_trials} prior trials")
    return 0


def _cmd_devices(args) -> int:
    from .hardware import DEVICES

    for name, spec in sorted(DEVICES.items()):
        print(f"{name:14s} [{spec.device_class:6s}] {spec.cores} cores @ "
              f"{spec.max_frequency_ghz} GHz, {spec.memory_gb} GB RAM"
              + (f", {spec.gpus} GPUs" if spec.gpus else ""))
    return 0


def _cmd_workloads(args) -> int:
    from .workloads import WORKLOADS

    for workload_id, workload in WORKLOADS.items():
        row = workload.table1
        print(f"{workload_id:4s} {row.type_label:28s} "
              f"{workload.model_name:8s} on {workload.dataset_name} "
              f"({row.datasize}, {row.train_files} train files)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="EdgeTune reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    tune = subparsers.add_parser("tune", help="run a tuning job")
    tune.add_argument("workload", choices=["IC", "SR", "NLP", "OD"])
    tune.add_argument("--system", default="edgetune",
                      choices=["edgetune", "tune", "hyperpower",
                               "hierarchical"])
    tune.add_argument("--device", default="armv7")
    tune.add_argument("--budget", default="multi-budget")
    tune.add_argument("--metric", default="runtime",
                      choices=["runtime", "energy"])
    tune.add_argument("--target", type=float, default=None,
                      help="target accuracy (e.g. 0.8)")
    tune.add_argument("--seed", type=int, default=7)
    tune.add_argument("--samples", type=int, default=600)
    tune.add_argument("--workers", type=int, default=0,
                      help="run via the tuning service with N parallel "
                           "worker processes (0 = classic in-process run)")
    tune.add_argument("--db", default=None,
                      help="persistent sqlite path: required by --workers "
                           "runs (default: a temporary file) and by "
                           "--warm-start")
    tune.add_argument("--warm-start", action="store_true",
                      help="seed the search model from prior trials of the "
                           "same experiment recorded in --db")
    tune.add_argument("--reuse-checkpoints", action="store_true",
                      help="warm-resume promoted trials from their parent "
                           "rung's checkpoint via the artifact cache "
                           "(changes scores vs. retrain-from-scratch)")
    tune.add_argument("--scheduler", default=None,
                      help="override the edgetune search algorithm, e.g. "
                           "'asha' for asynchronous successive halving "
                           "(default: the system's own, bohb)")
    tune.add_argument("--num-configs", type=int, default=None,
                      help="bracket width for --scheduler sha/asha: how "
                           "many fresh configurations enter the bottom "
                           "rung (default: eta ** num_rungs)")
    tune.add_argument("--pin-order", action="store_true",
                      help="with an asynchronous scheduler, integrate "
                           "results strictly in issue order (replay mode: "
                           "decision log is identical across worker "
                           "counts, at the cost of async speedup)")
    tune.add_argument("--traffic", default=None,
                      help="serving-load scenario to tune under, e.g. "
                           "'diurnal:rate=40,peak=4,duration=120,seed=7' "
                           "(edgetune only; see `python -m repro traffic`)")
    tune.add_argument("--traffic-metric", default="p99",
                      choices=["p99", "deadline", "energy"],
                      help="SLO metric scored against the replayed trace")
    tune.add_argument("--slo-p99", type=float, default=None,
                      help="p99 latency target in seconds (reported as an "
                           "SLO violation when exceeded)")
    tune.add_argument("--slo-deadline", type=float, default=None,
                      help="per-request deadline in seconds (missed "
                           "requests count against the deadline metric)")
    tune.add_argument("--trial-batch", type=int, default=None,
                      help="stack up to K shape-compatible trials into one "
                           "vectorized training run (bit-identical to "
                           "serial; default: auto via $REPRO_TRIAL_BATCH "
                           "or 8; 1 disables)")
    tune.set_defaults(func=_cmd_tune)

    devices = subparsers.add_parser("devices", help="list emulated devices")
    devices.set_defaults(func=_cmd_devices)

    workloads = subparsers.add_parser("workloads",
                                      help="list Table 1 workloads")
    workloads.set_defaults(func=_cmd_workloads)

    subparsers.add_parser(
        "advisor",
        help="recommendation advisor (serve/ask/index/bench); "
             "see `python -m repro advisor --help`",
        add_help=False,
    )

    subparsers.add_parser(
        "fleet",
        help="multi-host tuning fleet (serve/workers/register/status/"
             "drain); see `python -m repro fleet --help`",
        add_help=False,
    )

    subparsers.add_parser(
        "traffic",
        help="serving-load traces (generate/replay/compare); "
             "see `python -m repro traffic --help`",
        add_help=False,
    )

    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "advisor":
        # The advisor owns its whole sub-CLI (including --help).
        from .advisor.cli import main as advisor_main

        return advisor_main(argv[1:])
    if argv and argv[0] == "fleet":
        from .fleet.cli import main as fleet_main

        return fleet_main(argv[1:])
    if argv and argv[0] == "traffic":
        from .traffic.cli import main as traffic_main

        return traffic_main(argv[1:])
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
