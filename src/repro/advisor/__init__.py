"""The tuning advisor: knowledge base + recommendation server.

EdgeTune's contract (§3.1) is to *hand users deployment recommendations*;
§3.4's historical look-up makes repeated tuning cheap.  This package
extends both ideas across sessions:

* :mod:`repro.advisor.signature` — workload signatures and the distance
  used to match unseen workloads to their nearest tuned neighbour;
* :mod:`repro.advisor.kb` — the knowledge base over
  :class:`~repro.storage.TrialDatabase`'s ``recommendations`` table,
  populated when a service session finalizes (or by ``advisor index``);
* :mod:`repro.advisor.server` — a threaded TCP server answering
  line-delimited JSON queries with an LRU cache, per-client rate limits
  and graceful drain;
* :mod:`repro.advisor.client` / :mod:`repro.advisor.loadgen` — the
  matching client and a multi-threaded throughput benchmark.

CLI: ``python -m repro advisor serve|ask|index|bench``.
"""

from .client import AdvisorClient
from .kb import Advice, KnowledgeBase, inference_recommendation_of
from .loadgen import LoadReport, run_load
from .resilience import CircuitBreaker
from .server import AdvisorServer, LRUCache, TokenBucket
from .signature import signature_distance, signature_for, workload_signature

__all__ = [
    "CircuitBreaker",
    "Advice",
    "KnowledgeBase",
    "inference_recommendation_of",
    "AdvisorServer",
    "LRUCache",
    "TokenBucket",
    "AdvisorClient",
    "LoadReport",
    "run_load",
    "workload_signature",
    "signature_for",
    "signature_distance",
]
