"""``python -m repro.advisor`` — alias for ``python -m repro advisor``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
