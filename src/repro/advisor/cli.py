"""Advisor command-line interface.

Operate the recommendation service over a tuning database::

    python -m repro advisor index --db tuning.sqlite
    python -m repro advisor serve --db tuning.sqlite --port 8377
    python -m repro advisor ask IC --port 8377 --target 0.8
    python -m repro advisor ask IC --db tuning.sqlite       # serverless
    python -m repro advisor bench --db tuning.sqlite --threads 8

``serve`` runs until SIGTERM/SIGINT, then drains gracefully: in-flight
requests finish, new ones are refused, and the final telemetry snapshot
is printed.  ``ask`` talks to a running server by default; given
``--db`` it queries the knowledge base in-process instead.  ``bench``
load-tests a running server, or self-hosts an ephemeral one when given
``--db``.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from typing import Optional

from ..errors import AdvisorError
from ..storage import TrialDatabase
from .client import DEFAULT_PORT, AdvisorClient
from .kb import KnowledgeBase
from .loadgen import run_load
from .server import DEFAULT_CACHE_SIZE, AdvisorServer


def _cmd_serve(args) -> int:
    with TrialDatabase(args.db) as database:
        server = AdvisorServer(
            database,
            host=args.host,
            port=args.port,
            cache_size=args.cache_size,
            rate_limit=args.rate_limit,
            burst=args.burst,
        )
        if args.index:
            print(f"indexed {server.kb.index_sessions()} sessions")
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(
                signum, lambda *_: server.initiate_drain()
            )
        print(f"advisor listening on {server.host}:{server.port} "
              f"(knowledge base: {server.kb.size()} recommendations)")
        sys.stdout.flush()
        server.serve_until_drained(drain_timeout_s=args.drain_timeout)
        print("drained; final stats:")
        print(json.dumps(server.meters.snapshot(), sort_keys=True, indent=2))
    return 0


def _cmd_ask(args) -> int:
    if args.db is not None:
        with TrialDatabase(args.db) as database:
            try:
                advice = KnowledgeBase(database).query(
                    workload=args.workload,
                    device=args.device,
                    objective=args.objective,
                    target_accuracy=args.target,
                    allow_nearest=not args.exact,
                )
            except AdvisorError as error:
                print(f"error: {error}", file=sys.stderr)
                return 1
        print(json.dumps(advice.to_dict(), sort_keys=True, indent=2))
        return 0
    try:
        with AdvisorClient(args.host, args.port) as client:
            response = client.ask(
                workload=args.workload,
                device=args.device,
                objective=args.objective,
                target_accuracy=args.target,
                allow_nearest=not args.exact,
            )
    except AdvisorError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(json.dumps(response, sort_keys=True, indent=2))
    return 0 if response.get("ok") else 1


def _cmd_index(args) -> int:
    with TrialDatabase(args.db) as database:
        kb = KnowledgeBase(database)
        indexed = kb.index_sessions()
        print(f"sessions indexed:  {indexed}")
        print(f"knowledge base:    {kb.size()} recommendations")
    return 0


def _cmd_bench(args) -> int:
    server: Optional[AdvisorServer] = None
    database: Optional[TrialDatabase] = None
    serve_thread: Optional[threading.Thread] = None
    host, port = args.host, args.port
    try:
        if args.db is not None:
            # Self-hosted mode: ephemeral server on a random port.
            database = TrialDatabase(args.db)
            server = AdvisorServer(
                database, host=args.host, port=0,
                cache_size=args.cache_size,
            )
            host, port = server.host, server.port
            serve_thread = threading.Thread(
                target=server.serve_until_drained, daemon=True
            )
            serve_thread.start()
        asks = [
            {"workload": workload, "device": args.device,
             "objective": args.objective}
            for workload in args.workloads
        ]
        report = run_load(
            host, port,
            threads=args.threads,
            duration_s=args.duration,
            asks=asks,
        )
        print(report.render())
        return 0 if report.errors == 0 else 1
    except AdvisorError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if server is not None:
            server.initiate_drain()
        if serve_thread is not None:
            serve_thread.join(timeout=5.0)
        if database is not None:
            database.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro advisor",
        description="EdgeTune recommendation advisor",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    serve = subparsers.add_parser(
        "serve", help="run the recommendation server"
    )
    serve.add_argument("--db", required=True, help="sqlite database path")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve.add_argument("--cache-size", type=int, default=DEFAULT_CACHE_SIZE)
    serve.add_argument("--rate-limit", type=float, default=None,
                       help="per-client requests/second (default: off)")
    serve.add_argument("--burst", type=int, default=None,
                       help="rate-limit burst depth (default: 1s of rate)")
    serve.add_argument("--index", action="store_true",
                       help="index finished sessions before serving")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       help="max seconds to wait for in-flight requests")
    serve.set_defaults(func=_cmd_serve)

    ask = subparsers.add_parser(
        "ask", help="query a recommendation (server, or --db in-process)"
    )
    ask.add_argument("workload", choices=["IC", "SR", "NLP", "OD"])
    ask.add_argument("--host", default="127.0.0.1")
    ask.add_argument("--port", type=int, default=DEFAULT_PORT)
    ask.add_argument("--db", default=None,
                     help="query this database directly instead of a server")
    ask.add_argument("--device", default="armv7")
    ask.add_argument("--objective", default="runtime",
                     choices=["runtime", "energy"])
    ask.add_argument("--target", type=float, default=None,
                     help="target accuracy the session was tuned for")
    ask.add_argument("--exact", action="store_true",
                     help="fail instead of nearest-workload matching")
    ask.set_defaults(func=_cmd_ask)

    index = subparsers.add_parser(
        "index", help="build the knowledge base from finished sessions"
    )
    index.add_argument("--db", required=True)
    index.set_defaults(func=_cmd_index)

    bench = subparsers.add_parser(
        "bench", help="load-test a server (or self-host one with --db)"
    )
    bench.add_argument("--host", default="127.0.0.1")
    bench.add_argument("--port", type=int, default=DEFAULT_PORT)
    bench.add_argument("--db", default=None,
                       help="self-host an ephemeral server over this db")
    bench.add_argument("--threads", type=int, default=4)
    bench.add_argument("--duration", type=float, default=2.0,
                       help="measured load duration, seconds")
    bench.add_argument("--cache-size", type=int, default=DEFAULT_CACHE_SIZE)
    bench.add_argument("--device", default="armv7")
    bench.add_argument("--objective", default="runtime",
                       choices=["runtime", "energy"])
    bench.add_argument("--workloads", nargs="+", default=["IC"],
                       choices=["IC", "SR", "NLP", "OD"])
    bench.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
