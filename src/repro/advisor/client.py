"""Line-JSON client for the recommendation server.

One persistent connection per client; every request is one line out, one
line back.  Used by ``advisor ask``/``advisor bench``, the load
generator's worker threads, and tests.

Resilience: transport errors and malformed responses are retried a
bounded number of times with jittered exponential backoff, reconnecting
each time (a fresh connection is the only reliable way to resynchronise
a line protocol after garbage).  An optional
:class:`~repro.advisor.resilience.CircuitBreaker` makes a *dead* advisor
cheap: after a few consecutive failures requests fail instantly instead
of burning a connect timeout each, and callers fall back to cold-start
via :meth:`AdvisorClient.try_ask`.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Dict, Optional

from ..errors import AdvisorError
from ..faults import should
from .resilience import CircuitBreaker

DEFAULT_PORT = 8377
DEFAULT_TIMEOUT_S = 5.0

#: Retries after the first attempt; 3 tries total by default.
DEFAULT_RETRIES = 2
DEFAULT_BACKOFF_S = 0.05


class AdvisorClient:
    """Blocking client over one persistent TCP connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        retries: int = DEFAULT_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_s = float(backoff_s)
        self.breaker = breaker
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._request_seq = 0

    # -- connection ---------------------------------------------------------
    def connect(self) -> "AdvisorClient":
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
            except OSError as error:
                raise AdvisorError(
                    f"cannot reach advisor at {self.host}:{self.port}: "
                    f"{error}"
                )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._rfile = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._rfile is not None:
            self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "AdvisorClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- requests -----------------------------------------------------------
    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request, retrying transport faults with backoff.

        Raises :class:`AdvisorError` once the retry budget is spent, or
        immediately when the circuit breaker is open.
        """
        payload = dict(params, op=op)
        last_error: Optional[AdvisorError] = None
        for attempt in range(1, self.retries + 2):
            if self.breaker is not None and not self.breaker.allow():
                raise AdvisorError(
                    f"advisor at {self.host}:{self.port} circuit is open; "
                    "failing fast"
                )
            try:
                response = self._request_once(payload, attempt)
            except AdvisorError as error:
                last_error = error
                if self.breaker is not None:
                    self.breaker.record_failure()
                # Reconnect-resync: after a transport error or garbage
                # frame the stream position is unknowable; a fresh
                # connection is the only safe retry.
                self.close()
                if attempt <= self.retries:
                    time.sleep(
                        self.backoff_s * (2.0 ** (attempt - 1))
                        * random.uniform(0.5, 1.0)
                    )
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return response
        assert last_error is not None
        raise last_error

    def _request_once(
        self, payload: Dict[str, Any], attempt: int
    ) -> Dict[str, Any]:
        self.connect()
        assert self._sock is not None and self._rfile is not None
        self._request_seq += 1
        seq = self._request_seq
        if should("advisor.drop", key=seq, attempt=attempt):
            # Chaos: sever the connection mid-request, as a flaky network
            # or a restarting server would.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        try:
            self._sock.sendall(
                (json.dumps(payload, sort_keys=True) + "\n").encode()
            )
            line = self._rfile.readline()
        except OSError as error:
            raise AdvisorError(f"advisor connection failed: {error}")
        if not line:
            raise AdvisorError("advisor closed the connection")
        if should("advisor.garbage", key=seq, attempt=attempt):
            # Chaos: the bytes that arrived are not the bytes that were
            # sent (proxy corruption, interleaved writes).
            line = b"\x00\xfe{{{not-json\n"
        try:
            return json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise AdvisorError(f"malformed advisor response: {error}")

    def ask(
        self,
        workload: str,
        device: str = "armv7",
        objective: str = "runtime",
        target_accuracy: Optional[float] = None,
        system: Optional[str] = None,
        allow_nearest: bool = True,
    ) -> Dict[str, Any]:
        return self.request(
            "ask",
            workload=workload,
            device=device,
            objective=objective,
            target_accuracy=target_accuracy,
            system=system,
            allow_nearest=allow_nearest,
        )

    def try_ask(self, *args: Any, **kwargs: Any) -> Optional[Dict[str, Any]]:
        """Best-effort :meth:`ask`: ``None`` instead of raising.

        The warm-start fallback — callers treat ``None`` exactly like
        "no advice available" and cold-start the search.
        """
        try:
            return self.ask(*args, **kwargs)
        except AdvisorError:
            return None

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def index(self) -> Dict[str, Any]:
        return self.request("index")
