"""Line-JSON client for the recommendation server.

One persistent connection per client; every request is one line out, one
line back.  Used by ``advisor ask``/``advisor bench``, the load
generator's worker threads, and tests.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

from ..errors import AdvisorError

DEFAULT_PORT = 8377
DEFAULT_TIMEOUT_S = 5.0


class AdvisorClient:
    """Blocking client over one persistent TCP connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ):
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._rfile = None

    # -- connection ---------------------------------------------------------
    def connect(self) -> "AdvisorClient":
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
            except OSError as error:
                raise AdvisorError(
                    f"cannot reach advisor at {self.host}:{self.port}: "
                    f"{error}"
                )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._rfile = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._rfile is not None:
            self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "AdvisorClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- requests -----------------------------------------------------------
    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request and return the decoded response object."""
        self.connect()
        assert self._sock is not None and self._rfile is not None
        payload = dict(params, op=op)
        try:
            self._sock.sendall(
                (json.dumps(payload, sort_keys=True) + "\n").encode()
            )
            line = self._rfile.readline()
        except OSError as error:
            raise AdvisorError(f"advisor connection failed: {error}")
        if not line:
            raise AdvisorError("advisor closed the connection")
        try:
            return json.loads(line.decode("utf-8"))
        except ValueError as error:
            raise AdvisorError(f"malformed advisor response: {error}")

    def ask(
        self,
        workload: str,
        device: str = "armv7",
        objective: str = "runtime",
        target_accuracy: Optional[float] = None,
        system: Optional[str] = None,
        allow_nearest: bool = True,
    ) -> Dict[str, Any]:
        return self.request(
            "ask",
            workload=workload,
            device=device,
            objective=objective,
            target_accuracy=target_accuracy,
            system=system,
            allow_nearest=allow_nearest,
        )

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def index(self) -> Dict[str, Any]:
        return self.request("index")
