"""The tuning knowledge base (the advisor's read/write core).

One row per (workload, device, objective, target, system): the distilled
outcome of a finished tuning session — best training configuration, the
deployment :class:`~repro.core.results.InferenceRecommendation`, and what
finding them cost.  Rows are written when a service session finalizes
(:class:`~repro.service.coordinator.SessionCoordinator`) or in bulk by
``python -m repro advisor index``; queries fall back to the
nearest-signature neighbour when the exact workload was never tuned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..core.results import InferenceRecommendation, TuningRunResult
from ..errors import AdvisorError
from ..storage import StoredRecommendation, TrialDatabase
from ..telemetry import InferenceMeasurement
from .signature import signature_distance, signature_for

#: Penalties added to the signature distance when a candidate row does not
#: match the non-workload key fields.  Objective mismatch is worst: an
#: energy-optimal configuration answers a different question entirely.
DEVICE_MISMATCH_PENALTY = 2.0
OBJECTIVE_MISMATCH_PENALTY = 3.0
TARGET_MISMATCH_PENALTY = 0.5


@dataclass(frozen=True)
class Advice:
    """One answer from the knowledge base."""

    recommendation: StoredRecommendation
    #: Whether every key field (workload, device, objective, target)
    #: matched exactly; inexact answers carry the match cost instead.
    exact: bool
    match_cost: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload served over the wire."""
        rec = self.recommendation
        return {
            "workload": rec.workload,
            "device": rec.device,
            "objective": rec.objective,
            "target_accuracy": rec.target_accuracy,
            "system": rec.system,
            "session_id": rec.session_id,
            "best_configuration": rec.best_configuration,
            "best_accuracy": rec.best_accuracy,
            "best_score": rec.best_score,
            "num_trials": rec.num_trials,
            "tuning_runtime_s": rec.tuning_runtime_s,
            "tuning_energy_j": rec.tuning_energy_j,
            "inference": rec.inference,
            "exact": self.exact,
            "match_cost": self.match_cost,
        }


def inference_recommendation_of(
    payload: Dict[str, Any]
) -> InferenceRecommendation:
    """Materialize the stored JSON inference block back into the
    :class:`InferenceRecommendation` the original session produced."""
    measurement = payload.get("measurement") or {}
    return InferenceRecommendation(
        configuration=dict(payload.get("configuration") or {}),
        measurement=InferenceMeasurement(
            batch_latency_s=float(measurement.get("batch_latency_s", 0.0)),
            throughput_sps=float(measurement.get("throughput_sps", 0.0)),
            energy_per_sample_j=float(
                measurement.get("energy_per_sample_j", 0.0)
            ),
            power_w=float(measurement.get("power_w", 0.0)),
            working_set_bytes=0,
            device=payload.get("device", ""),
            batch_size=int(measurement.get("batch_size", 1)),
            cores=int(measurement.get("cores", 1)),
        ),
        device=payload.get("device", ""),
        objective=payload.get("objective", ""),
        tuning_runtime_s=float(payload.get("tuning_runtime_s", 0.0)),
        tuning_energy_j=float(payload.get("tuning_energy_j", 0.0)),
        cache_hit=bool(payload.get("cache_hit", False)),
    )


class KnowledgeBase:
    """Reads and writes the ``recommendations`` table."""

    def __init__(self, database: TrialDatabase):
        self.database = database

    # -- writing -----------------------------------------------------------
    def index_result(
        self,
        *,
        workload: str,
        device: str,
        objective: str,
        target_accuracy: Optional[float],
        system: str,
        session_id: Optional[str],
        result: TuningRunResult,
    ) -> StoredRecommendation:
        """Distill a live :class:`TuningRunResult` into one KB row."""
        inference: Optional[Dict[str, Any]] = None
        if result.inference is not None:
            rec = result.inference
            inference = {
                "configuration": dict(rec.configuration),
                "device": rec.device,
                "objective": rec.objective,
                "tuning_runtime_s": float(rec.tuning_runtime_s),
                "tuning_energy_j": float(rec.tuning_energy_j),
                "cache_hit": bool(rec.cache_hit),
                "measurement": {
                    "batch_latency_s": rec.measurement.batch_latency_s,
                    "throughput_sps": rec.measurement.throughput_sps,
                    "energy_per_sample_j":
                        rec.measurement.energy_per_sample_j,
                    "power_w": rec.measurement.power_w,
                    "batch_size": rec.measurement.batch_size,
                    "cores": rec.measurement.cores,
                },
            }
        return self._store(
            workload=workload,
            device=device,
            objective=objective,
            target_accuracy=target_accuracy,
            system=system,
            session_id=session_id,
            best_configuration={
                str(k): _json_safe(v)
                for k, v in result.best_configuration.items()
            },
            best_accuracy=float(result.best_accuracy),
            best_score=float(result.best_score),
            num_trials=len(result.trials),
            tuning_runtime_s=float(result.tuning_runtime_s),
            tuning_energy_j=float(result.tuning_energy_j),
            inference=inference,
        )

    def index_summary(
        self,
        *,
        workload: str,
        device: str,
        objective: str,
        target_accuracy: Optional[float],
        system: str,
        session_id: Optional[str],
        summary: Dict[str, Any],
    ) -> StoredRecommendation:
        """Index from a stored session-result summary (``advisor index``)."""
        return self._store(
            workload=workload,
            device=device,
            objective=objective,
            target_accuracy=target_accuracy,
            system=system,
            session_id=session_id,
            best_configuration=dict(summary.get("best_configuration") or {}),
            best_accuracy=float(summary.get("best_accuracy", 0.0)),
            best_score=float(summary.get("best_score", 0.0)),
            num_trials=int(summary.get("num_trials", 0)),
            tuning_runtime_s=float(summary.get("tuning_runtime_s", 0.0)),
            tuning_energy_j=float(summary.get("tuning_energy_j", 0.0)),
            inference=summary.get("inference"),
        )

    def _store(self, **fields: Any) -> StoredRecommendation:
        record = StoredRecommendation(
            signature=signature_for(fields["workload"]),
            created_at=time.time(),
            **fields,
        )
        self.database.store_recommendation(record)
        return record

    def index_sessions(self) -> int:
        """(Re)index every finished session with a stored result summary.

        The bulk path behind ``python -m repro advisor index`` — covers
        sessions finished by releases that predate the advisor, since the
        coordinator now indexes on finalize anyway.
        """
        from ..service.sessions import S_DONE, SessionStore

        indexed = 0
        for record in SessionStore(self.database).list(state=S_DONE):
            if not record.result:
                continue
            self.index_summary(
                workload=record.spec.workload,
                device=record.spec.device,
                objective=record.spec.tuning_metric,
                target_accuracy=record.spec.target_accuracy,
                system=record.spec.system,
                session_id=record.id,
                summary=record.result,
            )
            indexed += 1
        return indexed

    # -- reading -----------------------------------------------------------
    def size(self) -> int:
        return self.database.recommendation_count()

    def query(
        self,
        workload: str,
        device: str,
        objective: str,
        target_accuracy: Optional[float] = None,
        system: Optional[str] = None,
        allow_nearest: bool = True,
    ) -> Advice:
        """Best stored answer for a tuning question.

        Exact key matches return immediately; otherwise every stored row
        is scored by signature distance plus key-mismatch penalties and
        the cheapest row wins (``exact=False``).  Raises
        :class:`AdvisorError` when the knowledge base is empty, the
        workload is unknown, or nearest matching is disabled and no exact
        row exists.
        """
        exact = self.database.lookup_recommendation(
            workload, device, objective, target_accuracy, system=system
        )
        if exact is not None:
            return Advice(recommendation=exact, exact=True, match_cost=0.0)
        if not allow_nearest:
            raise AdvisorError(
                f"no recommendation for workload={workload!r} "
                f"device={device!r} objective={objective!r} "
                f"target={target_accuracy!r}"
            )
        signature = signature_for(workload)
        candidates = self.database.all_recommendations()
        if system is not None:
            candidates = [c for c in candidates if c.system == system]
        if not candidates:
            raise AdvisorError(
                "the knowledge base is empty — run tuning sessions and "
                "`python -m repro advisor index` first"
            )
        scored = [
            (
                self._match_cost(
                    signature, device, objective, target_accuracy, row
                ),
                index,
                row,
            )
            for index, row in enumerate(candidates)
        ]
        cost, _, row = min(scored)
        return Advice(recommendation=row, exact=False, match_cost=cost)

    @staticmethod
    def _match_cost(
        signature: Dict[str, Any],
        device: str,
        objective: str,
        target_accuracy: Optional[float],
        row: StoredRecommendation,
    ) -> float:
        cost = signature_distance(signature, row.signature)
        if row.device != device:
            cost += DEVICE_MISMATCH_PENALTY
        if row.objective != objective:
            cost += OBJECTIVE_MISMATCH_PENALTY
        if row.target_accuracy != target_accuracy:
            cost += TARGET_MISMATCH_PENALTY
            if row.target_accuracy is not None and target_accuracy is not None:
                cost += abs(row.target_accuracy - target_accuracy)
        return cost


def _json_safe(value: Any) -> Any:
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value
