"""Multi-threaded load generator for the recommendation server.

Measures what the ROADMAP's "heavy traffic" goal actually asks of the
advisor: sustained requests/second and tail latency under concurrent
clients.  Each worker thread owns one persistent connection and fires
``ask`` requests back-to-back until the deadline; latencies are measured
client-side per request, and the server's own telemetry snapshot is
attached for cross-checking (cache hit rate, server-side percentiles).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import AdvisorError
from ..telemetry import MetricSummary
from .client import AdvisorClient

#: Requests each worker sends before timing starts (connection setup,
#: server cache warm-up — steady-state throughput is the question).
WARMUP_REQUESTS = 5


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    requests: int
    errors: int
    duration_s: float
    threads: int
    latency: Optional[MetricSummary]
    server_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.requests / self.duration_s

    def render(self) -> str:
        lines = [
            f"threads:        {self.threads}",
            f"requests:       {self.requests} ({self.errors} errors)",
            f"duration:       {self.duration_s:.2f} s",
            f"throughput:     {self.throughput_rps:.0f} req/s",
        ]
        if self.latency is not None:
            lines.append(
                "latency (ms):   "
                f"p50={self.latency.p50 * 1e3:.2f} "
                f"p90={self.latency.p90 * 1e3:.2f} "
                f"p99={self.latency.p99 * 1e3:.2f} "
                f"max={self.latency.maximum * 1e3:.2f}"
            )
        stats = self.server_stats.get("stats", {})
        hits = stats.get("advisor.cache_hits", 0)
        misses = stats.get("advisor.cache_misses", 0)
        if hits or misses:
            lines.append(
                f"server cache:   {hits} hits / {misses} misses"
            )
        server_latency = stats.get("advisor.latency_s")
        if isinstance(server_latency, dict):
            lines.append(
                "server p99:     "
                f"{server_latency.get('p99', 0.0) * 1e3:.2f} ms"
            )
        return "\n".join(lines)


def _default_asks() -> List[Dict[str, Any]]:
    return [{"workload": "IC", "device": "armv7", "objective": "runtime"}]


def run_load(
    host: str,
    port: int,
    threads: int = 4,
    duration_s: float = 2.0,
    asks: Optional[List[Dict[str, Any]]] = None,
    timeout_s: float = 5.0,
) -> LoadReport:
    """Hammer a running advisor and report sustained throughput."""
    if threads < 1:
        raise AdvisorError(f"need at least one thread, got {threads}")
    asks = asks or _default_asks()
    latencies: List[List[float]] = [[] for _ in range(threads)]
    counts = [0] * threads
    errors = [0] * threads
    start_barrier = threading.Barrier(threads + 1)

    def worker(index: int) -> None:
        with AdvisorClient(host, port, timeout_s=timeout_s) as client:
            for i in range(WARMUP_REQUESTS):
                client.request("ask", **asks[i % len(asks)])
            start_barrier.wait()
            deadline = time.monotonic() + duration_s
            mine = latencies[index]
            i = 0
            while time.monotonic() < deadline:
                began = time.perf_counter()
                try:
                    response = client.request("ask", **asks[i % len(asks)])
                except AdvisorError:
                    errors[index] += 1
                    break
                mine.append(time.perf_counter() - began)
                counts[index] += 1
                if not response.get("ok", False):
                    errors[index] += 1
                i += 1

    pool = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    start_barrier.wait()
    started = time.monotonic()
    for thread in pool:
        thread.join(timeout=duration_s + timeout_s * 2)
    elapsed = time.monotonic() - started

    merged = [sample for series in latencies for sample in series]
    with AdvisorClient(host, port, timeout_s=timeout_s) as client:
        server_stats = client.stats()
    return LoadReport(
        requests=sum(counts),
        errors=sum(errors),
        duration_s=elapsed,
        threads=threads,
        latency=MetricSummary.of(merged) if merged else None,
        server_stats=server_stats,
    )
