"""Client-side resilience primitives for the advisor TCP path.

The advisor is *advisory*: a tuning session warm-starts its search from
it when reachable and cold-starts otherwise.  That makes the correct
failure posture "fail fast and fall back", not "retry until the session
stalls" — which is exactly what a circuit breaker encodes:

* **closed** — requests flow; consecutive transport failures are counted;
* **open** — after ``failure_threshold`` consecutive failures the breaker
  rejects requests instantly (no connect timeout burned per call) for
  ``reset_timeout_s``;
* **half-open** — after the cool-down, one probe request is let through;
  success closes the breaker, failure re-opens it for another cool-down.
"""

from __future__ import annotations

import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

DEFAULT_FAILURE_THRESHOLD = 5
DEFAULT_RESET_TIMEOUT_S = 10.0


class CircuitBreaker:
    """Consecutive-failure circuit breaker (not thread-safe; one per
    client, and :class:`~repro.advisor.client.AdvisorClient` is
    single-threaded by contract)."""

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        reset_timeout_s: float = DEFAULT_RESET_TIMEOUT_S,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self._clock = clock
        self._failures = 0
        self._opened_at: float = 0.0
        self._state = CLOSED

    @property
    def state(self) -> str:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a request be attempted right now?

        In half-open state this *admits the probe*: the answer stays
        ``True`` until :meth:`record_failure` re-opens the breaker.
        """
        return self.state != OPEN

    def record_success(self) -> None:
        self._failures = 0
        self._state = CLOSED

    def record_failure(self) -> None:
        if self._state == HALF_OPEN:
            # The probe failed: straight back to open for a full cool-down.
            self._state = OPEN
            self._opened_at = self._clock()
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._state = OPEN
            self._opened_at = self._clock()
