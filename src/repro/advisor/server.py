"""The recommendation server: high-throughput answers over TCP.

A stdlib :class:`socketserver.ThreadingTCPServer` speaking one JSON
object per line, designed for sustained load from many clients:

* connections are **persistent** — a client sends any number of requests
  over one socket, so the per-request cost is one read, one dict
  dispatch, one write;
* an **LRU response cache** short-circuits repeated questions without
  touching sqlite (the hot path for "what config for IC on armv7?"
  asked by a million users is a dict lookup);
* a per-client **token-bucket rate limit** (optional) sheds abusive
  traffic with an explicit ``rate_limited`` error instead of queueing it;
* **graceful drain**: SIGTERM (wired by the CLI) stops accepting new
  requests, lets in-flight ones finish, then returns from
  :meth:`serve_until_drained`;
* every request feeds the :class:`~repro.telemetry.MeterRegistry` —
  hit/miss/error counters and a latency meter whose snapshot reports
  p50/p90/p99.

Protocol (newline-delimited JSON, UTF-8)::

    → {"op": "ask", "workload": "IC", "device": "armv7",
       "objective": "runtime", "target_accuracy": 0.8}
    ← {"ok": true, "cache_hit": false, "advice": {...}}

    → {"op": "stats"}          ← {"ok": true, "stats": {...}, ...}
    → {"op": "index"}          ← {"ok": true, "indexed": 3}
    → {"op": "ping"}           ← {"ok": true, "pong": true}
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..errors import AdvisorError
from ..storage import TrialDatabase
from ..telemetry import MeterRegistry
from .kb import KnowledgeBase

#: How long a handler blocks waiting for the next request line before
#: re-checking the drain flag, seconds.  Bounds drain latency.
READ_TIMEOUT_S = 0.2

#: Default response-cache capacity (distinct questions, not bytes).
DEFAULT_CACHE_SIZE = 1024

#: Hard cap on one request line; anything longer is a protocol violation
#: (or garbage) and gets an error response instead of unbounded buffering.
MAX_LINE_BYTES = 64 * 1024

#: Fields a cache key is built from, in canonical order.
_ASK_FIELDS = ("workload", "device", "objective", "target_accuracy",
               "system")


class LRUCache:
    """A thread-safe least-recently-used mapping of bounded size."""

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE):
        if capacity < 1:
            raise AdvisorError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._items: "OrderedDict[Any, Any]" = OrderedDict()

    def get(self, key: Any) -> Optional[Any]:
        with self._lock:
            value = self._items.get(key)
            if value is not None:
                self._items.move_to_end(key)
            return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._items[key] = value
            self._items.move_to_end(key)
            while len(self._items) > self.capacity:
                self._items.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._items.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class TokenBucket:
    """Per-key token buckets: ``rate`` requests/second, ``burst`` deep."""

    def __init__(self, rate: float, burst: Optional[int] = None):
        if rate <= 0:
            raise AdvisorError(f"rate limit must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(1.0, rate))
        self._lock = threading.Lock()
        self._buckets: Dict[str, Tuple[float, float]] = {}

    def allow(self, key: str, now: Optional[float] = None) -> bool:
        now = time.monotonic() if now is None else now
        with self._lock:
            tokens, last = self._buckets.get(key, (self.burst, now))
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            if tokens < 1.0:
                self._buckets[key] = (tokens, now)
                return False
            self._buckets[key] = (tokens - 1.0, now)
            return True


class _AdvisorHandler(socketserver.StreamRequestHandler):
    """One persistent client connection; loops until EOF or drain."""

    def setup(self) -> None:
        super().setup()
        self.connection.settimeout(READ_TIMEOUT_S)

    def handle(self) -> None:
        server: "AdvisorServer" = self.server  # type: ignore[assignment]
        client = self.client_address[0]
        server.meters.counter("advisor.connections").inc()
        while not server.draining:
            try:
                line = self.rfile.readline(MAX_LINE_BYTES + 1)
            except socket.timeout:
                continue
            except OSError:
                break
            if not line:
                break
            if len(line) > MAX_LINE_BYTES:
                # Oversized frame: the rest of the stream cannot be
                # trusted to re-align on newlines, so answer with an
                # error and drop the connection.
                server.meters.counter("advisor.errors").inc()
                try:
                    self.wfile.write(
                        (json.dumps({
                            "ok": False,
                            "error": "request line too long",
                        }) + "\n").encode()
                    )
                except OSError:
                    pass
                break
            line = line.strip()
            if not line:
                continue
            with server.track_in_flight():
                response = server.handle_line(line, client)
            try:
                self.wfile.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode()
                )
            except OSError:
                break


class AdvisorServer(socketserver.ThreadingTCPServer):
    """Threaded line-JSON recommendation server over one knowledge base."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        database: TrialDatabase,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = DEFAULT_CACHE_SIZE,
        rate_limit: Optional[float] = None,
        burst: Optional[int] = None,
        meters: Optional[MeterRegistry] = None,
    ):
        super().__init__((host, port), _AdvisorHandler)
        self.database = database
        self.kb = KnowledgeBase(database)
        self.cache = LRUCache(cache_size)
        self.limiter = (
            TokenBucket(rate_limit, burst) if rate_limit else None
        )
        self.meters = meters or MeterRegistry()
        self.draining = False
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()
        self._drained = threading.Event()

    # -- addresses ----------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        return self.server_address[1]

    # -- in-flight accounting ------------------------------------------------
    def track_in_flight(self) -> "_InFlight":
        return _InFlight(self)

    @property
    def in_flight(self) -> int:
        with self._in_flight_lock:
            return self._in_flight

    # -- request dispatch ----------------------------------------------------
    def handle_line(self, line: bytes, client: str) -> Dict[str, Any]:
        """Parse and answer one request line (also the unit-test seam)."""
        started = time.perf_counter()
        self.meters.counter("advisor.requests").inc()
        try:
            payload = json.loads(line.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except (ValueError, UnicodeDecodeError) as error:
            self.meters.counter("advisor.errors").inc()
            return {"ok": False, "error": f"bad request: {error}"}
        try:
            response = self.process(payload, client)
        except Exception as error:  # noqa: BLE001 — one bad request must
            # not take down the handler thread (and with it the
            # connection of a well-behaved client pipelining requests).
            self.meters.counter("advisor.errors").inc()
            response = {
                "ok": False,
                "error": f"internal error: {type(error).__name__}: {error}",
            }
        self.meters.meter("advisor.latency_s").record(
            time.perf_counter() - started
        )
        return response

    def process(self, payload: Dict[str, Any], client: str) -> Dict[str, Any]:
        op = payload.get("op", "ask")
        if op == "ping":
            return {"ok": True, "pong": True, "draining": self.draining}
        if op == "stats":
            return {
                "ok": True,
                "stats": self.meters.snapshot(),
                "cache_entries": len(self.cache),
                "knowledge_base_size": self.kb.size(),
            }
        if op == "index":
            indexed = self.kb.index_sessions()
            self.cache.clear()
            self.meters.counter("advisor.indexed").inc(indexed)
            return {"ok": True, "indexed": indexed}
        if op == "ask":
            return self._ask(payload, client)
        self.meters.counter("advisor.errors").inc()
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _ask(self, payload: Dict[str, Any], client: str) -> Dict[str, Any]:
        if self.limiter is not None and not self.limiter.allow(client):
            self.meters.counter("advisor.rate_limited").inc()
            return {"ok": False, "error": "rate_limited"}
        key = tuple(payload.get(field) for field in _ASK_FIELDS)
        cached = self.cache.get(key)
        if cached is not None:
            self.meters.counter("advisor.cache_hits").inc()
            return dict(cached, cache_hit=True)
        self.meters.counter("advisor.cache_misses").inc()
        try:
            advice = self.kb.query(
                workload=payload.get("workload", ""),
                device=payload.get("device", "armv7"),
                objective=payload.get("objective", "runtime"),
                target_accuracy=payload.get("target_accuracy"),
                system=payload.get("system"),
                allow_nearest=bool(payload.get("allow_nearest", True)),
            )
        except AdvisorError as error:
            self.meters.counter("advisor.errors").inc()
            return {"ok": False, "error": str(error)}
        response = {"ok": True, "advice": advice.to_dict()}
        self.cache.put(key, response)
        return dict(response, cache_hit=False)

    # -- lifecycle ----------------------------------------------------------
    def initiate_drain(self) -> None:
        """Stop accepting work and unblock :meth:`serve_until_drained`.

        Safe to call from a signal handler: the blocking ``shutdown`` is
        moved onto a helper thread.
        """
        if self.draining:
            return
        self.draining = True
        threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_until_drained(
        self, poll_interval: float = 0.1, drain_timeout_s: float = 5.0
    ) -> None:
        """``serve_forever`` plus an orderly exit.

        Returns once :meth:`initiate_drain` was called, every in-flight
        request finished (or ``drain_timeout_s`` elapsed), and the
        listening socket is closed.
        """
        try:
            self.serve_forever(poll_interval=poll_interval)
        finally:
            deadline = time.monotonic() + drain_timeout_s
            while self.in_flight > 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            self.server_close()
            self._drained.set()


class _InFlight:
    """Context manager counting requests currently being answered."""

    def __init__(self, server: AdvisorServer):
        self._server = server

    def __enter__(self) -> "_InFlight":
        with self._server._in_flight_lock:
            self._server._in_flight += 1
        return self

    def __exit__(self, *exc_info: Any) -> None:
        with self._server._in_flight_lock:
            self._server._in_flight -= 1
