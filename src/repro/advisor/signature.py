"""Workload signatures for nearest-neighbour knowledge transfer.

A signature is a small JSON-safe description of *what kind of tuning
problem* a workload is: the model family, the task, and the scale of the
dataset.  Two workloads with similar signatures tend to have similar
tuning landscapes (Amortized Auto-Tuning's transfer premise), so when the
knowledge base holds no row for the exact workload asked about, the
advisor answers from the nearest signature instead — flagged as inexact
so the caller can decide whether to trust it or submit a fresh session.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Union

from ..errors import AdvisorError
from ..workloads import WORKLOADS, Workload

#: Additive mismatch penalties, in signature-distance units.  Task
#: mismatch dominates: a speech model's tuning result says little about
#: an object detector no matter how similar the dataset sizes are.
TASK_MISMATCH_PENALTY = 4.0
FAMILY_MISMATCH_PENALTY = 1.0
DATASET_MISMATCH_PENALTY = 0.5

#: Weight on the (log10) dataset-size difference.
SCALE_WEIGHT = 0.25


def workload_signature(workload: Workload) -> Dict[str, Any]:
    """The JSON-safe signature stored alongside every recommendation."""
    row = workload.table1
    return {
        "workload": workload.workload_id,
        "family": workload.model_name,
        "task": workload.task,
        "dataset": workload.dataset_name,
        "train_files": int(row.train_files),
        "test_files": int(row.test_files),
    }


def signature_for(workload: Union[str, Workload]) -> Dict[str, Any]:
    """Signature for a workload id or object; unknown ids are an error."""
    if isinstance(workload, Workload):
        return workload_signature(workload)
    if workload not in WORKLOADS:
        raise AdvisorError(
            f"unknown workload {workload!r}; expected one of "
            f"{sorted(WORKLOADS)}"
        )
    return workload_signature(WORKLOADS[workload])


def _log_scale_gap(a: Any, b: Any) -> float:
    try:
        a, b = float(a), float(b)
    except (TypeError, ValueError):
        return 1.0
    if a <= 0 or b <= 0:
        return 1.0
    return abs(math.log10(a) - math.log10(b))


def signature_distance(a: Dict[str, Any], b: Dict[str, Any]) -> float:
    """How far apart two tuning problems are (0 = the same workload)."""
    if a.get("workload") == b.get("workload"):
        return 0.0
    distance = 0.0
    if a.get("task") != b.get("task"):
        distance += TASK_MISMATCH_PENALTY
    if a.get("family") != b.get("family"):
        distance += FAMILY_MISMATCH_PENALTY
    if a.get("dataset") != b.get("dataset"):
        distance += DATASET_MISMATCH_PENALTY
    distance += SCALE_WEIGHT * _log_scale_gap(
        a.get("train_files"), b.get("train_files")
    )
    return distance
