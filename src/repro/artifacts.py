"""Content-addressed trial artifact cache (exact memoization + warm-resume).

Every rung promotion in successive halving / HyperBand / BOHB re-trains a
configuration from scratch at a bigger budget, and baseline comparisons
re-evaluate overlapping (config, budget, seed) triples across sessions
with no reuse.  This module removes that redundancy with two tiers built
on one store:

* **exact memoization** — a trial's full outcome (its
  :class:`~repro.core.model_server.TrialEvaluation` plus the trained
  model) is indexed under a blake2b *trial key* derived from everything
  the evaluation consumes bit-wise: workload id, dataset seed, sample
  count, configuration values, budget (epochs + data fraction), trial id
  (model-init and training seeds derive from it), the warm-resume lineage
  fields, and a :func:`backend_fingerprint`.  An identical key
  short-circuits ``evaluate_trial`` and returns the stored evaluation
  bit-identically — safe by construction, so it is always on when a
  store is attached.
* **warm-resume** — alongside the evaluation, a trial executed under
  ``--reuse-checkpoints`` stores its final weights and optimizer state
  (an in-memory ``npz`` blob), so a promoted child trial restores the
  parent's state and trains only the incremental epochs of the grown
  budget.  Opt-in, because resumed training follows a different (shorter)
  SGD trajectory than the paper's retrain-from-scratch semantics.

Storage: rows live in the ``artifacts`` table (migration v6) with
size/hit accounting for ``service gc``.  File-backed databases keep the
payload bytes in a ``<db>.artifacts/`` sidecar directory — written to a
temp file and published with an atomic :func:`os.replace`, so a crash
mid-write never leaves a half-artifact visible — while ``:memory:``
databases inline the payload in the ``blob`` column.

**End-to-end integrity** (migration v8): every ``put`` records a blake2b
checksum of the payload, and every ``get`` verifies it before handing
bytes back.  A mismatch — bit rot, a truncated sidecar file, or the
``artifact.corrupt_blob`` chaos site — **quarantines** the blob (the
sidecar file moves to ``<blob_dir>/quarantine/``, the row is dropped, a
crash-safe ``artifacts.quarantined`` counter is bumped) and the read
reports a miss, so the trial falls back to a deterministic cold run
instead of silently resuming from corrupted state.  ``scrub`` sweeps the
whole store offline: verifying every blob, quarantining mismatches,
dropping rows whose sidecar file is gone, backfilling checksums on
pre-v8 rows, and removing orphaned files.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import os
import pickle
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from . import faults
from .storage import TrialDatabase

logger = logging.getLogger(__name__)

#: Bump when the payload layout changes; part of every trial key so stale
#: entries from an older release can never be returned for a new key.
PAYLOAD_VERSION = 1

#: Suffix of published payload files in the sidecar directory.
BLOB_SUFFIX = ".bin"

#: Subdirectory of the sidecar dir holding quarantined (corrupt) blobs.
QUARANTINE_DIR = "quarantine"


def artifact_checksum(payload: bytes) -> str:
    """Blake2b digest of an artifact payload (the integrity checksum
    stored with every row and carried on federation transfers)."""
    return hashlib.blake2b(payload, digest_size=20).hexdigest()


def backend_fingerprint() -> str:
    """Everything process-global that changes training bits.

    The kernel backend selects between the ``fast`` and ``reference``
    implementations (bit-identical for the scatter kernels but not for
    the conv-gradient composites), the numpy version pins BLAS-adjacent
    behaviour, and the active fault plan makes injected corruption part
    of the key — a faultless run must never be served a ``trainer.nan``
    result, and vice versa.
    """
    from . import faults
    from .nn.kernels import get_backend

    plan = faults.get_plan()
    return json.dumps(
        {
            "backend": get_backend(),
            "numpy": np.__version__,
            "faults": None if plan is None else plan.to_spec(),
            "payload": PAYLOAD_VERSION,
        },
        sort_keys=True,
    )


def trial_key(task: Any, fingerprint: Optional[str] = None) -> str:
    """Content address of one trial evaluation.

    ``task`` is a :class:`~repro.core.model_server.TrialTask` (duck-typed
    to avoid an import cycle).  ``bracket``/``rung``/``fidelity`` are
    deliberately excluded: they locate the trial inside the scheduler but
    do not alter a single trained bit — the budget they imply is already
    captured by ``epochs``/``data_fraction``.
    """
    if fingerprint is None:
        fingerprint = backend_fingerprint()
    fields = {
        "workload_id": task.workload_id,
        "seed": task.seed,
        "samples": task.samples,
        "values": task.values,
        "epochs": task.epochs,
        "data_fraction": task.data_fraction,
        "trial_id": task.trial_id,
        "reuse": bool(getattr(task, "reuse", False)),
        "parent_key": getattr(task, "parent_key", None),
        "start_epoch": int(getattr(task, "start_epoch", 0)),
        "fingerprint": fingerprint,
    }
    # Traffic-aware sessions key their trials separately; absent traffic
    # is omitted (not None-valued) so every pre-traffic key digest is
    # preserved bit-exactly.
    traffic = getattr(task, "traffic", None)
    if traffic is not None:
        fields["traffic"] = str(traffic)
    payload = json.dumps(
        fields,
        sort_keys=True,
        default=repr,
    )
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=20
    ).hexdigest()


# ---------------------------------------------------------------------------
# Resume-state packing (weights + optimizer state as one npz blob)
# ---------------------------------------------------------------------------

def pack_velocity(velocity: List[np.ndarray]) -> bytes:
    """Serialize SGD momentum buffers into one in-memory ``npz`` blob.

    Only the *optimizer* half of the resume state is packed: the final
    weights already live (bit-identically) inside the stored model
    pickle, so writing them again would double the artifact size and the
    serialization cost for nothing.  Slots are keyed ``v.<position>`` so
    order survives the round trip.
    """
    arrays = {f"v.{index}": value for index, value in enumerate(velocity)}
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def unpack_velocity(blob: bytes) -> List[np.ndarray]:
    """Inverse of :func:`pack_velocity`."""
    velocity: Dict[int, np.ndarray] = {}
    with np.load(io.BytesIO(blob)) as archive:
        for key in archive.files:
            if key.startswith("v."):
                velocity[int(key[2:])] = archive[key]
    return [velocity[index] for index in sorted(velocity)]


class ArtifactStore:
    """Keyed store of trial payloads over one :class:`TrialDatabase`.

    Payloads are opaque pickled dicts (``evaluation`` / ``model`` /
    ``resume``); the store only manages addressing, persistence, hit
    accounting and pruning.  Safe to open from any number of worker
    processes over the same file — writes are idempotent (first writer
    wins; every writer would produce identical bytes by construction)
    and the row insert is a single autocommitted statement.
    """

    def __init__(
        self, database: TrialDatabase, blob_dir: Optional[str] = None
    ):
        self.database = database
        if blob_dir is not None:
            self.blob_dir: Optional[str] = blob_dir
        elif database.path != ":memory:":
            self.blob_dir = database.path + ".artifacts"
        else:
            self.blob_dir = None
        #: Per-process counters (the table's ``hits`` column aggregates
        #: across processes; these track just this store instance).
        self.session_hits = 0
        self.session_misses = 0

    # -- raw payload access --------------------------------------------------
    def _blob_path(self, key: str) -> str:
        assert self.blob_dir is not None
        return os.path.join(self.blob_dir, key + BLOB_SUFFIX)

    def _write_blob(self, key: str, payload: bytes) -> None:
        os.makedirs(self.blob_dir, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(
            dir=self.blob_dir, prefix=key + ".tmp-"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_path, self._blob_path(key))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def put(
        self,
        key: str,
        payload: bytes,
        workload: str = "",
        trial_id: int = -1,
        epochs: int = 0,
        data_fraction: float = 0.0,
    ) -> None:
        """Publish ``payload`` under ``key`` (no-op if already present)."""
        inline: Optional[bytes] = payload
        if self.blob_dir is not None:
            self._write_blob(key, payload)
            inline = None
        self.database.execute(
            "INSERT OR IGNORE INTO artifacts (key, workload, trial_id, "
            "epochs, data_fraction, size_bytes, hits, blob, created_at, "
            "checksum) VALUES (?, ?, ?, ?, ?, ?, 0, ?, ?, ?)",
            (
                key,
                workload,
                int(trial_id),
                int(epochs),
                float(data_fraction),
                len(payload),
                inline,
                time.time(),
                artifact_checksum(payload),
            ),
        )

    def get(self, key: str, count_miss: bool = True) -> Optional[bytes]:
        """Payload bytes for ``key``, bumping hit accounting; ``None`` on
        miss (including a row whose sidecar file was pruned underneath —
        the stale row is dropped so the trial is simply recomputed).

        Every read is verified against the row's stored checksum; a
        mismatch quarantines the blob and reports a miss, so corruption
        degrades to a deterministic cold re-run, never a wrong result.
        """
        row = self.database.execute(
            "SELECT blob, checksum FROM artifacts WHERE key = ?", (key,)
        ).fetchone()
        payload: Optional[bytes] = None
        checksum: Optional[str] = None
        if row is not None:
            checksum = row[1]
            if row[0] is not None:
                payload = row[0]
            elif self.blob_dir is not None:
                try:
                    with open(self._blob_path(key), "rb") as handle:
                        payload = handle.read()
                except OSError:
                    self.database.execute(
                        "DELETE FROM artifacts WHERE key = ?", (key,)
                    )
        if payload is not None and faults.should(
            "artifact.corrupt_blob", key=key
        ):
            # Chaos: the bytes coming off the disk are not the bytes that
            # were written.  Checksum verification below must catch it.
            payload = bytes([payload[0] ^ 0xFF]) + payload[1:]
        if (
            payload is not None
            and checksum is not None
            and artifact_checksum(payload) != checksum
        ):
            self.quarantine(key, payload, reason="checksum mismatch on get")
            payload = None
        if payload is None:
            if count_miss:
                self.session_misses += 1
            return None
        self.session_hits += 1
        self.database.execute(
            "UPDATE artifacts SET hits = hits + 1, last_hit_at = ? "
            "WHERE key = ?",
            (time.time(), key),
        )
        return payload

    # -- integrity ------------------------------------------------------------
    def _bump_stat(self, stat: str, amount: int = 1) -> None:
        """Crash-safe counter in ``fleet_stats`` (same upsert discipline
        as the fleet registry — readable by ``service status`` from any
        process)."""
        self.database.execute(
            "INSERT INTO fleet_stats (key, value) VALUES (?, ?) "
            "ON CONFLICT (key) DO UPDATE SET value = value + excluded.value",
            (stat, float(amount)),
        )

    def _stat(self, stat: str) -> int:
        row = self.database.execute(
            "SELECT value FROM fleet_stats WHERE key = ?", (stat,)
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def quarantine(
        self, key: str, payload: Optional[bytes] = None, reason: str = ""
    ) -> None:
        """Pull a corrupt blob out of circulation.

        The row is dropped (so the key reads as a miss and the trial
        cold-runs), the sidecar file — when there is one — moves into
        ``<blob_dir>/quarantine/`` for forensics instead of being
        destroyed, and the crash-safe ``artifacts.quarantined`` counter
        is bumped.
        """
        logger.warning(
            "artifact %s quarantined%s", key,
            f": {reason}" if reason else "",
        )
        self.database.execute(
            "DELETE FROM artifacts WHERE key = ?", (key,)
        )
        if self.blob_dir is not None:
            hold = os.path.join(self.blob_dir, QUARANTINE_DIR)
            try:
                os.makedirs(hold, exist_ok=True)
                os.replace(
                    self._blob_path(key),
                    os.path.join(hold, key + BLOB_SUFFIX),
                )
            except OSError:
                pass  # file already gone; the dropped row is what matters
        self._bump_stat("artifacts.quarantined")

    def scrub(self, repair: bool = True) -> Dict[str, int]:
        """Sweep the whole store: verify every blob end to end.

        * payload present and checksum matches → ``verified``;
        * checksum mismatch → blob quarantined (``quarantined``);
        * row whose sidecar file is gone → row dropped (``missing``);
        * pre-v8 row with no stored checksum → checksum computed and
          backfilled (``repaired``);
        * sidecar files with no row → removed (``orphans_removed``).

        With ``repair=False`` the sweep is a dry run: damage is counted
        and reported but nothing is quarantined, dropped, backfilled, or
        pruned.  Counters are also persisted crash-safely
        (``artifacts.scrubs``, ``artifacts.quarantined``) so ``service
        status --json`` reports them across processes.
        """
        counts = {
            "scanned": 0, "verified": 0, "quarantined": 0,
            "missing": 0, "repaired": 0,
        }
        rows = self.database.execute(
            "SELECT key, blob, checksum FROM artifacts ORDER BY key"
        ).fetchall()
        for key, inline, checksum in rows:
            counts["scanned"] += 1
            payload: Optional[bytes] = inline
            if payload is None and self.blob_dir is not None:
                try:
                    with open(self._blob_path(key), "rb") as handle:
                        payload = handle.read()
                except OSError:
                    payload = None
            if payload is None:
                if repair:
                    self.database.execute(
                        "DELETE FROM artifacts WHERE key = ?", (key,)
                    )
                counts["missing"] += 1
                continue
            digest = artifact_checksum(payload)
            if checksum is None:
                if repair:
                    self.database.execute(
                        "UPDATE artifacts SET checksum = ? WHERE key = ?",
                        (digest, key),
                    )
                counts["repaired"] += 1
                counts["verified"] += 1
            elif digest != checksum:
                if repair:
                    self.quarantine(
                        key, payload, reason="checksum mismatch on scrub"
                    )
                counts["quarantined"] += 1
            else:
                counts["verified"] += 1
        counts["orphans_removed"] = (
            self._prune_orphans() if repair else 0
        )
        self._bump_stat("artifacts.scrubs")
        return counts

    # -- trial-level helpers --------------------------------------------------
    def store_trial(
        self,
        key: str,
        evaluation: Any,
        model: Any,
        resume: Optional[bytes],
        workload: str = "",
        epochs: int = 0,
        data_fraction: float = 0.0,
    ) -> None:
        """Package and publish one finished trial.

        ``evaluation`` is stored with ``model_blob`` cleared (the model
        travels as its own pickle so a hit can hand back a live object),
        ``resume`` is the optional :func:`pack_velocity` blob for
        warm-resume children (their weights come from the model pickle).
        """
        stripped = pickle.loads(
            pickle.dumps(evaluation, protocol=pickle.HIGHEST_PROTOCOL)
        )
        stripped.model_blob = None
        payload = pickle.dumps(
            {
                "evaluation": stripped,
                "model": pickle.dumps(
                    model, protocol=pickle.HIGHEST_PROTOCOL
                ),
                "resume": resume,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self.put(
            key,
            payload,
            workload=workload,
            trial_id=int(evaluation.trial_id),
            epochs=int(epochs),
            data_fraction=float(data_fraction),
        )

    def load_trial(self, key: str) -> Optional[Tuple[Any, Any, Optional[bytes]]]:
        """(evaluation, model, resume blob) for ``key``, or ``None``."""
        payload = self.get(key)
        if payload is None:
            return None
        record = pickle.loads(payload)
        return (
            record["evaluation"],
            pickle.loads(record["model"]),
            record.get("resume"),
        )

    def resume_state(
        self, key: str
    ) -> Optional[Tuple[Dict[str, np.ndarray], List[np.ndarray]]]:
        """``(weights, velocity)`` resume state for ``key`` (parent
        lookups), or ``None`` when the artifact is gone or was stored
        without resume state (a non-reuse session's memo entry).

        Weights are recovered from the stored model pickle — the model's
        post-training state *is* the resume weights, bit for bit.  Not
        counted as a cache miss when absent: the caller is probing for a
        warm start, not replaying an evaluation.
        """
        payload = self.get(key, count_miss=False)
        if payload is None:
            return None
        record = pickle.loads(payload)
        resume = record.get("resume")
        if resume is None:
            return None
        from .nn.serialize import state_dict

        model = pickle.loads(record["model"])
        return state_dict(model), unpack_velocity(resume)

    # -- accounting / pruning -------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Database-wide cache accounting (all sessions, all processes).

        ``misses`` equals ``entries``: every stored row was written by
        exactly one cache miss (hits never insert), so the pair gives the
        hit/miss split without cross-process counter plumbing.
        """
        row = self.database.execute(
            "SELECT COUNT(*), COALESCE(SUM(size_bytes), 0), "
            "COALESCE(SUM(hits), 0) FROM artifacts"
        ).fetchone()
        return {
            "entries": int(row[0]),
            "bytes": int(row[1]),
            "hits": int(row[2]),
            "misses": int(row[0]),
            "quarantined": self._stat("artifacts.quarantined"),
        }

    def gc(
        self,
        max_age_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Dict[str, int]:
        """Prune the cache: age out cold entries, cap total size, and
        remove orphaned sidecar files (blobs whose row is gone).

        Age uses the last hit when there is one (an entry being reused
        should not expire), else creation time.  The size cap evicts
        least-recently-used entries until under ``max_bytes``.
        """
        now = time.time() if now is None else now
        doomed: List[str] = []
        if max_age_s is not None:
            cutoff = now - max_age_s
            doomed.extend(
                row[0]
                for row in self.database.execute(
                    "SELECT key FROM artifacts "
                    "WHERE COALESCE(last_hit_at, created_at) < ?",
                    (cutoff,),
                ).fetchall()
            )
        if max_bytes is not None:
            rows = self.database.execute(
                "SELECT key, size_bytes FROM artifacts "
                "ORDER BY COALESCE(last_hit_at, created_at) ASC"
            ).fetchall()
            total = sum(row[1] for row in rows)
            already = set(doomed)
            for key, size in rows:
                if total <= max_bytes:
                    break
                if key in already:
                    total -= size
                    continue
                doomed.append(key)
                already.add(key)
                total -= size
        bytes_freed = 0
        for key in doomed:
            row = self.database.execute(
                "SELECT size_bytes FROM artifacts WHERE key = ?", (key,)
            ).fetchone()
            if row is not None:
                bytes_freed += int(row[0])
            self.database.execute(
                "DELETE FROM artifacts WHERE key = ?", (key,)
            )
            if self.blob_dir is not None:
                try:
                    os.unlink(self._blob_path(key))
                except OSError:
                    pass
        orphans = self._prune_orphans()
        return {
            "artifacts_deleted": len(doomed),
            "bytes_freed": bytes_freed,
            "orphans_removed": orphans,
        }

    def _prune_orphans(self) -> int:
        """Delete sidecar files with no backing row (crashed writers,
        rows removed by an older release's gc)."""
        if self.blob_dir is None or not os.path.isdir(self.blob_dir):
            return 0
        live = {
            row[0]
            for row in self.database.execute(
                "SELECT key FROM artifacts"
            ).fetchall()
        }
        removed = 0
        for name in os.listdir(self.blob_dir):
            if os.path.isdir(os.path.join(self.blob_dir, name)):
                continue  # the quarantine hold is not an orphan
            key: Optional[str] = None
            if name.endswith(BLOB_SUFFIX):
                key = name[: -len(BLOB_SUFFIX)]
            if key is not None and key in live:
                continue
            # Everything else is an orphan: a .tmp-* from a crashed
            # writer or a published blob whose row was pruned.
            try:
                os.unlink(os.path.join(self.blob_dir, name))
                removed += 1
            except OSError:
                pass
        return removed
