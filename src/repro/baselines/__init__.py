"""Baseline tuning systems the paper compares against."""

from .hierarchical import HierarchicalTuner
from .hyperpower import HYPERPOWER_GPUS, HyperPowerBaseline
from .tune import TUNE_DEFAULT_GPUS, TuneBaseline

__all__ = [
    "TuneBaseline",
    "TUNE_DEFAULT_GPUS",
    "HyperPowerBaseline",
    "HYPERPOWER_GPUS",
    "HierarchicalTuner",
]
