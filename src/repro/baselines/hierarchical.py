"""Hierarchical tuning baseline (paper §4.1, Fig 9 left).

The alternative to EdgeTune's *onefold* approach: first tune the
hyperparameters with the system parameters fixed, then tune the system
parameters only for the winning hyperparameter values.  The two phases run
back to back, so their runtimes and energies add — and phase 1's choice
cannot account for how hyper and system parameters interact, which is the
drawback the onefold design removes.
"""

from __future__ import annotations

from typing import Optional, Union

from ..budgets import BudgetStrategy, MultiBudget
from ..errors import TuningError
from ..hardware import Emulator
from ..objectives import RatioObjective
from ..rng import SeedLike, derive_seed, ensure_seed
from ..storage import TrialDatabase
from ..workloads import TRAIN_GPU_RANGE, Workload, get_workload
from ..core.inference_server import InferenceTuningServer, architecture_key_of
from ..core.model_server import TRIAL_OVERHEAD_S, ModelTuningServer
from ..core.results import TuningRunResult
from ..nn import train_model


class HierarchicalTuner:
    """Two-phase hyper-then-system tuning with the same building blocks."""

    def __init__(
        self,
        workload: Union[str, Workload] = "IC",
        device: str = "armv7",
        tuning_metric: str = "runtime",
        algorithm: str = "bohb",
        budget: Optional[BudgetStrategy] = None,
        seed: SeedLike = None,
        database: Optional[TrialDatabase] = None,
        emulator: Optional[Emulator] = None,
        max_trials: Optional[int] = None,
        samples: Optional[int] = None,
        phase1_gpus: int = 1,
    ):
        self.workload = (
            get_workload(workload) if isinstance(workload, str) else workload
        )
        self.device = device
        self.tuning_metric = tuning_metric
        self.algorithm = algorithm
        self.budget = budget or MultiBudget()
        self.seed = ensure_seed(seed)
        self.database = database or TrialDatabase()
        self.emulator = emulator or Emulator()
        self.max_trials = max_trials
        self.samples = samples
        self.phase1_gpus = phase1_gpus

    def tune(self) -> TuningRunResult:
        """Phase 1: hyperparameters (fixed system); phase 2: GPUs only."""
        inference_server = InferenceTuningServer(
            device=self.device,
            emulator=self.emulator,
            database=self.database,
            seed=derive_seed(self.seed, "hier-inference"),
        )
        phase1 = ModelTuningServer(
            workload=self.workload,
            algorithm=self.algorithm,
            budget=self.budget,
            objective=RatioObjective(self.tuning_metric),
            emulator=self.emulator,
            inference_server=inference_server,
            database=self.database,
            seed=derive_seed(self.seed, "hier-phase1"),
            include_system_parameters=False,
            fixed_gpus=self.phase1_gpus,
            max_trials=self.max_trials,
            samples=self.samples,
            system_name="hierarchical",
        )
        result1 = phase1.run()

        # Phase 2: re-train the winning hyperparameters at full budget for
        # every candidate GPU count and keep the cheapest.
        train_set, eval_set = self.workload.load(
            seed=self.seed, samples=self.samples
        )
        family = self.workload.family
        full_budget = self.budget.budget(self.budget.max_iteration)
        best_gpus = self.phase1_gpus
        best_cost = float("inf")
        phase2_runtime = 0.0
        phase2_energy = 0.0
        train_batch = int(result1.best_configuration["train_batch_size"])
        real_batch, learning_rate = self.workload.effective_training(
            train_batch
        )
        for gpus in range(TRAIN_GPU_RANGE[0], TRAIN_GPU_RANGE[1] + 1):
            model = family.instantiate(
                train_set.sample_shape,
                train_set.num_classes,
                result1.best_configuration,
                seed=derive_seed(self.seed, "hier-phase2", gpus),
            )
            outcome = train_model(
                model,
                family.make_loss(train_set.num_classes),
                train_set,
                eval_set,
                epochs=full_budget.epochs,
                batch_size=real_batch,
                lr=learning_rate,
                data_fraction=full_budget.data_fraction,
                seed=derive_seed(self.seed, "hier-phase2-train", gpus),
            )
            measurement = self.emulator.measure_training(
                train_total_flops=outcome.train_total_flops,
                forward_flops_per_sample=outcome.forward_flops_per_sample,
                parameter_count=outcome.parameter_count,
                samples_seen=outcome.samples_seen,
                batch_size=train_batch,
                device="titan-server",
                gpus=gpus,
            )
            phase2_runtime += measurement.runtime_s + TRIAL_OVERHEAD_S
            phase2_energy += measurement.energy_j
            cost = (
                measurement.runtime_s
                if self.tuning_metric == "runtime"
                else measurement.energy_j
            )
            if cost < best_cost:
                best_cost = cost
                best_gpus = gpus

        best_configuration = dict(result1.best_configuration)
        best_configuration["gpus"] = best_gpus
        return TuningRunResult(
            system="hierarchical",
            workload_id=self.workload.workload_id,
            best_configuration=best_configuration,
            best_accuracy=result1.best_accuracy,
            best_score=result1.best_score,
            tuning_runtime_s=result1.tuning_runtime_s + phase2_runtime,
            tuning_energy_j=result1.tuning_energy_j + phase2_energy,
            trials=result1.trials,
            inference=result1.inference,
            stall_s=result1.stall_s,
            best_model=result1.best_model,
        )
