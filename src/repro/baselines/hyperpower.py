"""The HyperPower baseline (Stamoulis et al. 2017; paper §5.5, Fig 17).

HyperPower is power- and memory-constrained hyperparameter optimisation:
Bayesian optimisation (TPE) over the hyperparameters with early
termination of unpromising trials, optimising a power-aware objective
(training energy / accuracy).  Per the paper's Table 2 it supports hyper
parameters and a tuning/training objective, but **no system parameters and
no inference objective** — the gap EdgeTune's evaluation exposes.
"""

from __future__ import annotations

from typing import Optional, Union

from ..budgets import BudgetStrategy, MultiBudget
from ..hardware import Emulator
from ..objectives import PowerAwareObjective
from ..rng import SeedLike
from ..storage import TrialDatabase
from ..workloads import Workload, get_workload
from ..core.model_server import ModelTuningServer
from ..core.results import TuningRunResult

#: HyperPower targets single-GPU training nodes.
HYPERPOWER_GPUS = 1


class HyperPowerBaseline:
    """Power-aware BO with early termination, inference-unaware."""

    def __init__(
        self,
        workload: Union[str, Workload] = "IC",
        budget: Optional[BudgetStrategy] = None,
        seed: SeedLike = None,
        database: Optional[TrialDatabase] = None,
        emulator: Optional[Emulator] = None,
        max_trials: Optional[int] = None,
        target_accuracy: Optional[float] = None,
        samples: Optional[int] = None,
    ):
        resolved = (
            get_workload(workload) if isinstance(workload, str) else workload
        )
        # BOHB = TPE sampling + halving-based early termination, the
        # closest structured match to HyperPower's "BO with early
        # termination" in this codebase.
        self.server = ModelTuningServer(
            workload=resolved,
            algorithm="bohb",
            budget=budget or MultiBudget(),
            objective=PowerAwareObjective(),
            emulator=emulator or Emulator(),
            inference_server=None,
            database=database or TrialDatabase(),
            seed=seed,
            include_system_parameters=False,
            fixed_gpus=HYPERPOWER_GPUS,
            max_trials=max_trials,
            target_accuracy=target_accuracy,
            samples=samples,
            system_name="hyperpower",
            # HyperPower's hallmark is aggressive early termination of
            # unpromising trials; a steeper reduction factor models it.
            eta=3,
        )

    def tune(self) -> TuningRunResult:
        return self.server.run()
