"""The Tune baseline (paper §5.1 "Baseline").

Ray Tune configured with the same search algorithm as EdgeTune (BOHB) but
*without* EdgeTune's additions: it tunes hyperparameters only (no system
parameters — every trial runs on a fixed default GPU allocation), uses the
conventional epoch-based budget, optimises model accuracy alone, and has
no Inference Tuning Server.
"""

from __future__ import annotations

from typing import Optional, Union

from ..budgets import BudgetStrategy, MultiBudget
from ..hardware import Emulator
from ..objectives import AccuracyObjective
from ..rng import SeedLike
from ..storage import TrialDatabase
from ..workloads import Workload, get_workload
from ..core.model_server import ModelTuningServer
from ..core.results import TuningRunResult

#: Default static GPU allocation used for every Tune trial (Ray Tune's
#: common one-GPU-per-trial setting); never revisited during tuning —
#: exactly the blind spot system-parameter tuning removes.
TUNE_DEFAULT_GPUS = 1


class TuneBaseline:
    """Hyperparameter-only, inference-unaware tuning."""

    def __init__(
        self,
        workload: Union[str, Workload] = "IC",
        algorithm: str = "bohb",
        budget: Optional[BudgetStrategy] = None,
        seed: SeedLike = None,
        database: Optional[TrialDatabase] = None,
        emulator: Optional[Emulator] = None,
        max_trials: Optional[int] = None,
        target_accuracy: Optional[float] = None,
        samples: Optional[int] = None,
        fixed_gpus: int = TUNE_DEFAULT_GPUS,
    ):
        resolved = (
            get_workload(workload) if isinstance(workload, str) else workload
        )
        self.server = ModelTuningServer(
            workload=resolved,
            algorithm=algorithm,
            budget=budget or MultiBudget(),
            objective=AccuracyObjective(),
            emulator=emulator or Emulator(),
            inference_server=None,
            database=database or TrialDatabase(),
            seed=seed,
            include_system_parameters=False,
            fixed_gpus=fixed_gpus,
            max_trials=max_trials,
            target_accuracy=target_accuracy,
            samples=samples,
            system_name="tune",
        )

    def tune(self) -> TuningRunResult:
        return self.server.run()
