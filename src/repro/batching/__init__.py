"""Multi-sample inference batching: scenarios, queueing, optimizer (§3.4)."""

from .queueing import (
    DIVERGENCE_WAIT_FACTOR,
    BatchingResult,
    simulate_multistream_scenario,
    simulate_multistream_timeout,
    simulate_server_scenario,
)
from .scenarios import (
    DEFAULT_BATCH_CANDIDATES,
    BatchingSweep,
    MultiStreamScenario,
    ServerScenario,
    optimize_batch_size,
)

__all__ = [
    "BatchingResult",
    "simulate_server_scenario",
    "simulate_multistream_scenario",
    "simulate_multistream_timeout",
    "ServerScenario",
    "MultiStreamScenario",
    "BatchingSweep",
    "optimize_batch_size",
    "DEFAULT_BATCH_CANDIDATES",
    "DIVERGENCE_WAIT_FACTOR",
]
