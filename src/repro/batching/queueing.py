"""Queueing simulations for the two multi-sample inference scenarios.

Paper §3.4 / Fig 8: the *Batching* subcomponent of the Inference Tuning
Server must pick an inference batch size for

* a **server** scenario — queries of N samples arrive at a fixed
  frequency, and the batch size decides how the N samples are split into
  device-sized inference calls;
* a **multi-stream** scenario — single-sample queries arrive randomly
  (Poisson), and aggregating them into batches can reduce the overall
  mean response time.

Both are simulated in virtual time with a caller-supplied latency model
``latency_fn(batch_size) -> seconds`` (usually a closure over the hardware
emulator for one device configuration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

LatencyFn = Callable[[int], float]

#: A server-scenario queue is declared divergent once a query has waited
#: longer than this many service times: by then the backlog has grown
#: monotonically for many periods and can only keep growing (arrivals are
#: strictly periodic), so simulating the remaining queries adds cost but
#: no information.  Matches the replay engine's divergence guard
#: (:data:`repro.traffic.replay.DIVERGENCE_WAIT_FACTOR`).
DIVERGENCE_WAIT_FACTOR = 50.0


@dataclass(frozen=True)
class BatchingResult:
    """Steady-state statistics of one (scenario, batch size) simulation."""

    batch_size: int
    mean_response_s: float
    p95_response_s: float
    throughput_sps: float
    #: Fraction of simulated time the inference engine was busy.
    utilisation: float
    samples_processed: int
    #: The simulation short-circuited because the queue diverged; the
    #: statistics cover only the queries served before the cut-off (which
    #: is deterministic — a pure function of the scenario parameters).
    truncated: bool = False

    @property
    def stable(self) -> bool:
        """Heuristic stability flag: the engine keeps up with arrivals."""
        return self.utilisation < 0.999 and not self.truncated


def _percentile(values: List[float], q: float) -> float:
    ordered = sorted(values)
    index = min(int(q * (len(ordered) - 1)), len(ordered) - 1)
    return ordered[index]


def simulate_server_scenario(
    latency_fn: LatencyFn,
    samples_per_query: int,
    period_s: float,
    batch_size: int,
    num_queries: int = 200,
) -> BatchingResult:
    """Fixed-frequency N-sample queries, FIFO service.

    Each query is served as ``ceil(N/b)`` back-to-back inference calls of
    at most ``b`` samples; a query's response time is measured from its
    arrival to the completion of its last call.

    When the service time exceeds the period the backlog grows without
    bound; the simulation short-circuits deterministically once a query's
    wait passes :data:`DIVERGENCE_WAIT_FACTOR` service times and returns a
    ``truncated`` result over the queries served so far, instead of
    grinding through all ``num_queries`` of a queue whose statistics are
    already decided.
    """
    if samples_per_query < 1 or batch_size < 1:
        raise ConfigurationError("samples_per_query and batch_size must be >= 1")
    if period_s <= 0:
        raise ConfigurationError(f"period must be positive, got {period_s}")
    full_calls, remainder = divmod(samples_per_query, batch_size)
    service = full_calls * latency_fn(batch_size)
    if remainder:
        service += latency_fn(remainder)
    divergence_wait_s = DIVERGENCE_WAIT_FACTOR * service
    engine_free = 0.0
    busy = 0.0
    truncated = False
    responses: List[float] = []
    for index in range(num_queries):
        arrival = index * period_s
        start = max(arrival, engine_free)
        if start - arrival > divergence_wait_s:
            truncated = True
            break
        engine_free = start + service
        busy += service
        responses.append(engine_free - arrival)
    completed = len(responses)
    horizon = max(engine_free, (completed - 1) * period_s + service)
    return BatchingResult(
        batch_size=batch_size,
        mean_response_s=sum(responses) / completed,
        p95_response_s=_percentile(responses, 0.95),
        throughput_sps=completed * samples_per_query / horizon,
        utilisation=min(busy / horizon, 1.0),
        samples_processed=completed * samples_per_query,
        truncated=truncated,
    )


def simulate_multistream_scenario(
    latency_fn: LatencyFn,
    arrival_rate_sps: float,
    batch_size: int,
    num_samples: int = 2000,
    seed: SeedLike = None,
) -> BatchingResult:
    """Poisson single-sample arrivals with greedy batch aggregation.

    Whenever the engine is free it immediately takes up to ``batch_size``
    queued samples (at least one); samples arriving while it is busy wait
    in FIFO order.  Larger batches amortise per-call cost but make early
    arrivals wait for the batch to fill only implicitly (greedy policy
    never waits idle — the standard dynamic batching used by serving
    systems).
    """
    if arrival_rate_sps <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if batch_size < 1:
        raise ConfigurationError("batch_size must be >= 1")
    rng = make_rng(seed)
    gaps = rng.exponential(1.0 / arrival_rate_sps, size=num_samples)
    arrivals = gaps.cumsum()
    engine_free = 0.0
    busy = 0.0
    responses: List[float] = []
    index = 0
    while index < len(arrivals):
        # The engine wakes at max(first waiting arrival, engine free time)
        start = max(arrivals[index], engine_free)
        # Take every sample that has arrived by `start`, up to batch_size.
        take = 1
        while (
            take < batch_size
            and index + take < len(arrivals)
            and arrivals[index + take] <= start
        ):
            take += 1
        service = latency_fn(take)
        finish = start + service
        busy += service
        for offset in range(take):
            responses.append(finish - arrivals[index + offset])
        engine_free = finish
        index += take
    horizon = max(engine_free, arrivals[-1])
    return BatchingResult(
        batch_size=batch_size,
        mean_response_s=sum(responses) / len(responses),
        p95_response_s=_percentile(responses, 0.95),
        throughput_sps=num_samples / horizon,
        utilisation=min(busy / horizon, 1.0),
        samples_processed=num_samples,
    )


def simulate_multistream_timeout(
    latency_fn: LatencyFn,
    arrival_rate_sps: float,
    batch_size: int,
    max_wait_s: float,
    num_samples: int = 2000,
    seed: SeedLike = None,
) -> BatchingResult:
    """Poisson arrivals with *timeout-based* batch aggregation.

    Unlike the greedy policy, the engine deliberately waits for the batch
    to fill — but at most ``max_wait_s`` after the batch's first sample
    arrived.  This is the classic serving-system knob trading per-sample
    latency for better amortisation under bursty load.
    """
    if arrival_rate_sps <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if batch_size < 1:
        raise ConfigurationError("batch_size must be >= 1")
    if max_wait_s < 0:
        raise ConfigurationError("max_wait_s must be non-negative")
    rng = make_rng(seed)
    arrivals = rng.exponential(1.0 / arrival_rate_sps, size=num_samples).cumsum()
    engine_free = 0.0
    busy = 0.0
    responses: List[float] = []
    index = 0
    while index < len(arrivals):
        first_arrival = arrivals[index]
        deadline = first_arrival + max_wait_s
        # Collect until either the batch fills or the deadline passes;
        # dispatch cannot happen before the engine frees up anyway.
        dispatch = max(first_arrival, engine_free)
        take = 1
        while take < batch_size and index + take < len(arrivals):
            next_arrival = arrivals[index + take]
            if next_arrival <= max(dispatch, deadline):
                take += 1
                dispatch = max(dispatch, next_arrival)
            else:
                break
        start = max(dispatch, engine_free)
        if take < batch_size:
            start = max(start, min(deadline, start))
        service = latency_fn(take)
        finish = start + service
        busy += service
        for offset in range(take):
            responses.append(finish - arrivals[index + offset])
        engine_free = finish
        index += take
    horizon = max(engine_free, arrivals[-1])
    return BatchingResult(
        batch_size=batch_size,
        mean_response_s=sum(responses) / len(responses),
        p95_response_s=_percentile(responses, 0.95),
        throughput_sps=num_samples / horizon,
        utilisation=min(busy / horizon, 1.0),
        samples_processed=num_samples,
    )
