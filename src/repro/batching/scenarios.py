"""Scenario descriptions and the batch-size optimizer.

The Batching subcomponent (§3.4) sweeps candidate inference batch sizes
under the user's deployment scenario and returns the best one by mean
response time — the quantity both Fig 8 scenarios care about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from ..rng import SeedLike
from .queueing import (
    BatchingResult,
    LatencyFn,
    simulate_multistream_scenario,
    simulate_server_scenario,
)

#: Default batch sizes swept by the optimizer (paper range: 1..100).
DEFAULT_BATCH_CANDIDATES = (1, 2, 4, 8, 16, 32, 64, 100)


@dataclass(frozen=True)
class ServerScenario:
    """Queries of ``samples_per_query`` samples every ``period_s`` seconds."""

    samples_per_query: int
    period_s: float
    num_queries: int = 200

    def simulate(self, latency_fn: LatencyFn, batch_size: int) -> BatchingResult:
        return simulate_server_scenario(
            latency_fn,
            samples_per_query=self.samples_per_query,
            period_s=self.period_s,
            batch_size=batch_size,
            num_queries=self.num_queries,
        )


@dataclass(frozen=True)
class MultiStreamScenario:
    """Poisson single-sample arrivals at ``arrival_rate_sps`` per second."""

    arrival_rate_sps: float
    num_samples: int = 2000
    seed: int = 0

    def simulate(self, latency_fn: LatencyFn, batch_size: int) -> BatchingResult:
        return simulate_multistream_scenario(
            latency_fn,
            arrival_rate_sps=self.arrival_rate_sps,
            batch_size=batch_size,
            num_samples=self.num_samples,
            seed=self.seed,
        )


@dataclass
class BatchingSweep:
    """Outcome of a batch-size sweep: all results plus the chosen one."""

    results: List[BatchingResult]
    best: BatchingResult

    @property
    def best_batch_size(self) -> int:
        return self.best.batch_size


def optimize_batch_size(
    latency_fn: LatencyFn,
    scenario,
    candidates: Sequence[int] = DEFAULT_BATCH_CANDIDATES,
) -> BatchingSweep:
    """Sweep ``candidates`` and pick the stable batch size minimising mean
    response time (unstable configurations are considered only if nothing
    is stable)."""
    if not candidates:
        raise ConfigurationError("candidates must be non-empty")
    results = [scenario.simulate(latency_fn, b) for b in candidates]
    stable = [r for r in results if r.stable]
    pool = stable or results
    best = min(pool, key=lambda r: r.mean_response_s)
    return BatchingSweep(results=results, best=best)
