"""Budget strategies: epoch-based, dataset-based, and the paper's
multi-budget (Algorithm 2)."""

from .base import (
    BudgetStrategy,
    DatasetBudget,
    EpochBudget,
    MultiBudget,
    TrialBudget,
)
from .registry import BUDGET_NAMES, build_budget

__all__ = [
    "TrialBudget",
    "BudgetStrategy",
    "EpochBudget",
    "DatasetBudget",
    "MultiBudget",
    "build_budget",
    "BUDGET_NAMES",
]
