"""Trial-budget strategies (paper §4.3, Fig 11).

A budget strategy converts the scheduler's abstract *fidelity* (the
iteration level ``it`` of Algorithm 2) into a concrete
:class:`TrialBudget` — how many epochs to run and on what fraction of the
training data.  Three strategies are compared in the paper:

* **epoch-based**: epochs grow with the iteration, full dataset each time;
* **dataset-based**: one epoch, dataset fraction grows with the iteration;
* **multi-budget** (the paper's contribution): both dimensions grow
  simultaneously and saturate independently at their own maxima.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BudgetError


@dataclass(frozen=True)
class TrialBudget:
    """Concrete fidelity of one training trial."""

    epochs: int
    data_fraction: float

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise BudgetError(f"epochs must be >= 1, got {self.epochs}")
        if not 0.0 < self.data_fraction <= 1.0:
            raise BudgetError(
                f"data_fraction must be in (0, 1], got {self.data_fraction}"
            )

    @property
    def relative_cost(self) -> float:
        """Training cost relative to one full-dataset epoch."""
        return self.epochs * self.data_fraction


class BudgetStrategy:
    """Maps an iteration level to a :class:`TrialBudget`."""

    name: str = "base"

    def budget(self, iteration: int) -> TrialBudget:
        raise NotImplementedError

    def _check_iteration(self, iteration: int) -> int:
        if iteration < 1:
            raise BudgetError(f"iteration must be >= 1, got {iteration}")
        return int(iteration)

    @property
    def max_iteration(self) -> int:
        """Iteration at which the budget saturates (both axes at max)."""
        raise NotImplementedError


class EpochBudget(BudgetStrategy):
    """Epoch-based budget: ``epochs = min(min_epochs * it, max_epochs)``,
    always on the full dataset."""

    name = "epochs"

    def __init__(self, min_epochs: int = 1, max_epochs: int = 16):
        if min_epochs < 1 or max_epochs < min_epochs:
            raise BudgetError(
                f"invalid epoch range [{min_epochs}, {max_epochs}]"
            )
        self.min_epochs = min_epochs
        self.max_epochs = max_epochs

    def budget(self, iteration: int) -> TrialBudget:
        iteration = self._check_iteration(iteration)
        return TrialBudget(
            epochs=min(self.min_epochs * iteration, self.max_epochs),
            data_fraction=1.0,
        )

    @property
    def max_iteration(self) -> int:
        return -(-self.max_epochs // self.min_epochs)  # ceil division


class DatasetBudget(BudgetStrategy):
    """Dataset-based budget: one epoch on
    ``min(min_fraction * it, 1)`` of the data."""

    name = "dataset"

    def __init__(self, min_fraction: float = 0.1):
        if not 0.0 < min_fraction <= 1.0:
            raise BudgetError(
                f"min_fraction must be in (0, 1], got {min_fraction}"
            )
        self.min_fraction = min_fraction

    def budget(self, iteration: int) -> TrialBudget:
        iteration = self._check_iteration(iteration)
        return TrialBudget(
            epochs=1,
            data_fraction=min(self.min_fraction * iteration, 1.0),
        )

    @property
    def max_iteration(self) -> int:
        import math

        return int(math.ceil(1.0 / self.min_fraction))


class MultiBudget(BudgetStrategy):
    """The paper's multi-budget (Algorithm 2): epochs *and* dataset
    fraction grow together with the iteration, saturating independently.

    Example from §4.3: min_epochs=2, min_fraction=0.1, max_epochs=10 —
    iteration 5 onward runs 10 epochs while the dataset keeps growing
    until iteration 10.
    """

    name = "multi-budget"

    def __init__(
        self,
        min_epochs: int = 1,
        max_epochs: int = 16,
        min_fraction: float = 0.1,
    ):
        if min_epochs < 1 or max_epochs < min_epochs:
            raise BudgetError(
                f"invalid epoch range [{min_epochs}, {max_epochs}]"
            )
        if not 0.0 < min_fraction <= 1.0:
            raise BudgetError(
                f"min_fraction must be in (0, 1], got {min_fraction}"
            )
        self.min_epochs = min_epochs
        self.max_epochs = max_epochs
        self.min_fraction = min_fraction

    def budget(self, iteration: int) -> TrialBudget:
        iteration = self._check_iteration(iteration)
        return TrialBudget(
            epochs=min(self.min_epochs * iteration, self.max_epochs),
            data_fraction=min(self.min_fraction * iteration, 1.0),
        )

    @property
    def max_iteration(self) -> int:
        import math

        epochs_at = -(-self.max_epochs // self.min_epochs)
        data_at = int(math.ceil(1.0 / self.min_fraction))
        return max(epochs_at, data_at)
