"""Budget-strategy registry."""

from __future__ import annotations

from ..errors import BudgetError
from .base import BudgetStrategy, DatasetBudget, EpochBudget, MultiBudget

BUDGET_NAMES = ("epochs", "dataset", "multi-budget")


def build_budget(name: str, **kwargs) -> BudgetStrategy:
    """Build a budget strategy by name (see :data:`BUDGET_NAMES`)."""
    key = name.lower().replace("_", "-")
    if key == "epochs":
        return EpochBudget(**kwargs)
    if key == "dataset":
        return DatasetBudget(**kwargs)
    if key in ("multi-budget", "multibudget", "multi"):
        return MultiBudget(**kwargs)
    raise BudgetError(
        f"unknown budget strategy {name!r}; expected one of {BUDGET_NAMES}"
    )
