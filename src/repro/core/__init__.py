"""EdgeTune core: the Model and Inference tuning servers and the facade."""

from .edgetune import EdgeTune
from .inference_server import (
    InferenceTrialRecord,
    InferenceTuningServer,
    architecture_key_of,
)
from .model_server import TRIAL_OVERHEAD_S, ModelTuningServer
from .results import (
    InferenceRecommendation,
    TrialRecord,
    TuningRunResult,
)

__all__ = [
    "EdgeTune",
    "ModelTuningServer",
    "InferenceTuningServer",
    "InferenceTrialRecord",
    "architecture_key_of",
    "InferenceRecommendation",
    "TrialRecord",
    "TuningRunResult",
    "TRIAL_OVERHEAD_S",
]
