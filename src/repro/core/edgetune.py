"""The EdgeTune facade: one call wires both servers together (Algorithm 1).

Typical use::

    from repro import EdgeTune

    result = EdgeTune(workload="IC", device="armv7", seed=7).tune()
    print(result.best_configuration)
    print(result.inference.configuration)   # deploy-ready edge settings

Inputs mirror the paper's §3.1 list: the workload, the parameter sets
(derived from the workload's search spaces), the tuning objective, the
inference objective, and the per-server search algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..budgets import BudgetStrategy, MultiBudget, build_budget
from ..hardware import Emulator
from ..objectives import (
    InferenceObjective,
    RatioObjective,
    TrafficSLOObjective,
)
from ..rng import SeedLike
from ..storage import TrialDatabase
from ..traffic import SLOSpec, parse_scenario
from ..workloads import Workload, get_workload
from .inference_server import InferenceTuningServer
from .model_server import ModelTuningServer
from .results import TuningRunResult


class EdgeTune:
    """Inference-aware multi-parameter tuning, end to end."""

    def __init__(
        self,
        workload: Union[str, Workload] = "IC",
        device: str = "armv7",
        tuning_metric: str = "runtime",
        inference_metric: str = "energy",
        algorithm: str = "bohb",
        inference_algorithm: str = "grid",
        budget: Union[str, BudgetStrategy] = "multi-budget",
        seed: SeedLike = None,
        database: Optional[TrialDatabase] = None,
        emulator: Optional[Emulator] = None,
        max_trials: Optional[int] = None,
        num_configs: Optional[int] = None,
        target_accuracy: Optional[float] = None,
        samples: Optional[int] = None,
        stop_on_target: bool = True,
        warm_start: bool = False,
        reuse_checkpoints: bool = False,
        traffic: Optional[str] = None,
        traffic_metric: str = "p99",
        slo: Optional[SLOSpec] = None,
        trial_batch: Optional[int] = None,
    ):
        self.workload = (
            get_workload(workload) if isinstance(workload, str) else workload
        )
        self.device = device
        self.database = database or TrialDatabase()
        self.emulator = emulator or Emulator()
        budget_strategy = (
            build_budget(budget) if isinstance(budget, str) else budget
        )
        #: When a serving-load scenario is given, the inference server
        #: replays it through every candidate and scores deployments with
        #: the SLO-aware objective instead of one steady-state call.
        self.traffic_spec = (
            parse_scenario(traffic) if traffic is not None else None
        )
        if self.traffic_spec is not None:
            inference_objective: InferenceObjective = TrafficSLOObjective(
                traffic_metric,
                scenario=self.traffic_spec.canonical(),
                slo=slo,
            )
        else:
            inference_objective = InferenceObjective(inference_metric)
        self.inference_server = InferenceTuningServer(
            device=device,
            objective=inference_objective,
            algorithm=inference_algorithm,
            emulator=self.emulator,
            database=self.database,
            seed=seed,
            traffic=self.traffic_spec,
            slo=slo,
        )
        self.model_server = ModelTuningServer(
            workload=self.workload,
            algorithm=algorithm,
            budget=budget_strategy,
            objective=RatioObjective(
                tuning_metric, accuracy_target=target_accuracy
            ),
            emulator=self.emulator,
            inference_server=self.inference_server,
            database=self.database,
            seed=seed,
            include_system_parameters=True,
            max_trials=max_trials,
            num_configs=num_configs,
            target_accuracy=target_accuracy,
            samples=samples,
            system_name="edgetune",
            stop_on_target=stop_on_target,
            warm_start=warm_start,
            reuse_checkpoints=reuse_checkpoints,
            traffic=(
                self.traffic_spec.canonical()
                if self.traffic_spec is not None else None
            ),
            trial_batch=trial_batch,
        )

    def tune(self) -> TuningRunResult:
        """Run the full onefold tuning process and return the result:
        the optimal trained model plus the inference recommendation."""
        return self.model_server.run()
