"""The Inference Tuning Server (paper §3.4, Algorithm 1 lines 11-18).

Given an architecture (identified by its FLOP/parameter footprint), the
server searches the inference parameter space — inference batch size, CPU
cores, CPU frequency — on an *emulated* edge device, and returns the
configuration optimising the user's inference objective.

Two properties from the paper are reproduced faithfully:

* **historical look-up** — results are cached in the persistent database
  keyed by architecture/device/objective, so an architecture is never
  re-tuned (§3.4);
* **simulation cost accounting** — the server runs on the tuning host's
  CPUs; each candidate costs simulation time there (not edge-device
  time), which is what lets the whole job hide inside one training trial
  (§3.3).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import TuningError
from ..hardware import Emulator, get_device
from ..objectives import WORST_SCORE, InferenceObjective
from ..rng import SeedLike, derive_seed, ensure_seed
from ..search import build_searcher
from ..space import Configuration, ParameterSpace
from ..storage import StoredInferenceResult, TrialDatabase
from ..telemetry import InferenceMeasurement
from ..traffic import (
    ReplayStats,
    SLOSpec,
    Trace,
    TraceSpec,
    parse_scenario,
    record_replay,
    replay_trace,
)
from .results import InferenceRecommendation

#: Fixed simulation setup cost per candidate configuration, seconds of
#: tuning-server CPU time (model (re)shaping, device model setup).
SIM_SETUP_S = 0.3

#: Simulation cost per evaluated sample, seconds (forward passes replayed
#: on one server core).
SIM_PER_SAMPLE_S = 0.005

#: Number of batched inference calls evaluated per candidate.
EVAL_CALLS = 3

#: Power drawn by the inference server's share of the tuning host, W
#: (a few active server cores; the server is CPU-only, §3.2).
INFERENCE_SERVER_POWER_W = 35.0

#: Simulation cost per replayed request when scoring a candidate under
#: traffic load, seconds of tuning-server CPU time.  Replay is a tight
#: numpy loop (>= 50k requests/s per the perf floor), so a trace costs
#: far less than the per-sample forward passes of the steady-state path.
SIM_PER_REQUEST_S = 2e-5


@dataclass
class InferenceTrialRecord:
    """One evaluated inference configuration."""

    configuration: Dict[str, Any]
    measurement: InferenceMeasurement
    score: float
    sim_cost_s: float
    #: Populated only when the candidate was scored under traffic load.
    replay: Optional[ReplayStats] = None


class InferenceTuningServer:
    """Tunes inference hyper/system parameters for given architectures."""

    def __init__(
        self,
        device: str = "armv7",
        objective: Optional[InferenceObjective] = None,
        algorithm: str = "grid",
        num_trials: int = 32,
        grid_resolution: int = 4,
        emulator: Optional[Emulator] = None,
        database: Optional[TrialDatabase] = None,
        seed: SeedLike = None,
        use_cache: bool = True,
        traffic: Optional[Union[str, TraceSpec]] = None,
        slo: Optional[SLOSpec] = None,
    ):
        self.device = get_device(device).name
        self.objective = objective or InferenceObjective("energy")
        self.algorithm = algorithm
        self.num_trials = num_trials
        self.grid_resolution = grid_resolution
        self.emulator = emulator or Emulator()
        self.database = database or TrialDatabase()
        self.seed = ensure_seed(seed)
        #: §3.4's historical look-up; disabled only by ablation studies.
        self.use_cache = use_cache
        #: Serving-load scenario: when set, every candidate is scored by
        #: replaying this trace instead of a single steady-state call.
        self.traffic_spec: Optional[TraceSpec] = (
            parse_scenario(traffic) if isinstance(traffic, str) else traffic
        )
        self.slo = slo or SLOSpec()
        self._trace: Optional[Trace] = None

    @property
    def under_load(self) -> bool:
        """Candidates are scored against a replayed trace."""
        return self.traffic_spec is not None

    def _traffic_trace(self) -> Trace:
        """The replay trace, built once per server (deterministic)."""
        if self._trace is None:
            assert self.traffic_spec is not None
            self._trace = self.traffic_spec.build()
        return self._trace

    # -- cache ------------------------------------------------------------
    def cached(self, architecture_key: str) -> Optional[InferenceRecommendation]:
        if not self.use_cache:
            return None
        stored = self.database.lookup_inference(
            architecture_key, self.device, self.objective.name
        )
        if stored is None:
            return None
        measurement = InferenceMeasurement(
            batch_latency_s=stored.batch_latency_s,
            throughput_sps=stored.throughput_sps,
            energy_per_sample_j=stored.energy_per_sample_j,
            power_w=stored.power_w,
            working_set_bytes=0,
            device=self.device,
            # Load-derived measurements are per-request (p99 latency,
            # energy per request), stored with batch_size=1 so a cache
            # hit reproduces the fresh path's scores bit-for-bit.
            batch_size=1 if self.under_load else int(
                stored.configuration.get("inference_batch_size", 1)
            ),
            cores=int(stored.configuration.get("cores", 1)),
        )
        return InferenceRecommendation(
            configuration=stored.configuration,
            measurement=measurement,
            device=self.device,
            objective=self.objective.name,
            tuning_runtime_s=0.0,  # cache hits cost (effectively) nothing
            tuning_energy_j=0.0,
            cache_hit=True,
        )

    # -- tuning ---------------------------------------------------------------
    def _candidates(self, space: ParameterSpace) -> List[Configuration]:
        if self.algorithm == "grid":
            return space.grid(self.grid_resolution)
        searcher = build_searcher(
            self.algorithm, space, seed=derive_seed(self.seed, "inf-search")
        )
        configurations: List[Configuration] = []
        for _ in range(self.num_trials):
            configuration = searcher.suggest()
            if configuration is None:
                break
            configurations.append(configuration)
        return configurations

    def _replay_candidate(
        self,
        forward_flops_per_sample: float,
        parameter_count: int,
        batch: int,
        cores: int,
        frequency: Optional[float],
        steady: InferenceMeasurement,
    ) -> Tuple[InferenceMeasurement, ReplayStats, float, float]:
        """Score one candidate by replaying the traffic trace through it.

        Returns ``(derived_measurement, stats, score, sim_cost_s)``.  The
        derived measurement expresses the deployment per *request* —
        ``batch_latency_s`` is the replayed p99, ``energy_per_sample_j``
        the energy per served request (idle draw included), with
        ``batch_size=1`` so ``latency_per_sample_s`` equals the p99 — the
        form the combined tuning objective and the historical cache both
        consume.
        """
        trace = self._traffic_trace()
        spec = get_device(self.device)

        def latency_fn(size: int) -> float:
            return self.emulator.measure_inference(
                forward_flops_per_sample=forward_flops_per_sample,
                parameter_count=parameter_count,
                batch_size=size,
                device=spec,
                cores=cores,
                frequency_ghz=frequency,
            ).batch_latency_s

        stats = replay_trace(
            trace,
            latency_fn,
            max_batch=batch,
            slo=self.slo,
            power_w=steady.power_w,
            idle_power_w=spec.idle_power_w,
        )
        record_replay(self.database, stats, self.slo)

        def finite(value: float, fallback: float) -> float:
            return value if math.isfinite(value) else fallback

        derived = InferenceMeasurement(
            batch_latency_s=finite(stats.p99_latency_s, WORST_SCORE),
            throughput_sps=finite(stats.throughput_rps, 0.0),
            energy_per_sample_j=finite(
                stats.energy_per_request_j, WORST_SCORE
            ),
            power_w=steady.power_w,
            working_set_bytes=0,
            device=self.device,
            batch_size=1,
            cores=cores,
        )
        if hasattr(self.objective, "score_stats"):
            score = self.objective.score_stats(stats)
        else:
            score = self.objective.score(derived)
        sim_cost = SIM_SETUP_S + SIM_PER_REQUEST_S * stats.requests
        return derived, stats, score, sim_cost

    def tune(
        self,
        architecture_key: str,
        forward_flops_per_sample: float,
        parameter_count: int,
        space: ParameterSpace,
    ) -> Tuple[InferenceRecommendation, List[InferenceTrialRecord]]:
        """Tune inference parameters for one architecture.

        Returns the recommendation plus the per-candidate records (the
        latter feed benchmark analyses; most callers ignore them).
        Checks the historical cache first.
        """
        cached = self.cached(architecture_key)
        if cached is not None:
            return cached, []
        records: List[InferenceTrialRecord] = []
        best: Optional[InferenceTrialRecord] = None
        total_sim_s = 0.0
        for configuration in self._candidates(space):
            batch = int(configuration["inference_batch_size"])
            cores = int(configuration.get("cores", 1))
            frequency = configuration.get("frequency_ghz")
            measurement = self.emulator.measure_inference(
                forward_flops_per_sample=forward_flops_per_sample,
                parameter_count=parameter_count,
                batch_size=batch,
                device=self.device,
                cores=cores,
                frequency_ghz=frequency,
            )
            replay: Optional[ReplayStats] = None
            if self.under_load:
                measurement, replay, score, sim_cost = self._replay_candidate(
                    forward_flops_per_sample,
                    parameter_count,
                    batch,
                    cores,
                    frequency,
                    measurement,
                )
            else:
                score = self.objective.score(measurement)
                sim_cost = SIM_SETUP_S + SIM_PER_SAMPLE_S * batch * EVAL_CALLS
            total_sim_s += sim_cost
            record = InferenceTrialRecord(
                configuration=configuration.to_dict(),
                measurement=measurement,
                score=score,
                sim_cost_s=sim_cost,
                replay=replay,
            )
            records.append(record)
            if best is None or score < best.score:
                best = record
        if best is None:
            raise TuningError(
                "inference search produced no candidate configurations"
            )
        tuning_energy = total_sim_s * INFERENCE_SERVER_POWER_W
        recommendation = InferenceRecommendation(
            configuration=best.configuration,
            measurement=best.measurement,
            device=self.device,
            objective=self.objective.name,
            tuning_runtime_s=total_sim_s,
            tuning_energy_j=tuning_energy,
            cache_hit=False,
        )
        self.database.store_inference(
            StoredInferenceResult(
                architecture_key=architecture_key,
                device=self.device,
                objective=self.objective.name,
                configuration=best.configuration,
                batch_latency_s=best.measurement.batch_latency_s,
                throughput_sps=best.measurement.throughput_sps,
                energy_per_sample_j=best.measurement.energy_per_sample_j,
                power_w=best.measurement.power_w,
                tuning_runtime_s=total_sim_s,
                tuning_energy_j=tuning_energy,
            )
        )
        return recommendation, records


def architecture_key_of(
    model_name: str, forward_flops_per_sample: float, parameter_count: int
) -> str:
    """Canonical cache key for the historical look-up (§3.4).

    Inference performance depends only on the *structure* the device
    executes — captured exactly by the per-sample FLOPs and the parameter
    count.  Keying on those (rather than raw hyperparameter values) makes
    reuse automatic for parameters that do not change the structure, e.g.
    YOLO's dropout rate: the paper's "results can be reused for different
    parameters as long as they do not affect the architecture".
    """
    return json.dumps(
        {
            "family": model_name,
            "flops": int(forward_flops_per_sample),
            "params": int(parameter_count),
        },
        sort_keys=True,
    )
