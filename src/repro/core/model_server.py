"""The Model Tuning Server (paper §3.3, Algorithm 1 lines 1-10).

Runs budgeted training trials proposed by a multi-fidelity scheduler,
asynchronously requesting inference tuning for every new architecture, and
scores each trial with the combined objective.  All training is *real*
(numpy SGD on the synthetic workload); all runtime/energy is *virtual*:

* trials are placed on a shared **GPU pool** (greedy list scheduling with
  synchronous rung barriers), so tuning runtime is the schedule makespan —
  a trial asking for 8 GPUs runs alone while eight 1-GPU trials overlap;
* inference-tuning jobs run pipelined on the CPU-only inference lane,
  hidden inside trial durations unless they finish late, in which case the
  rung barrier *stalls* (§3.3's containment argument, made measurable);
* tuning energy sums every trial's consumption — parallelism hides
  latency, never joules.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..budgets import BudgetStrategy, MultiBudget
from ..errors import TuningError
from ..hardware import Emulator, get_device
from ..nn import train_model
from ..objectives import RatioObjective, TuningObjective
from ..rng import SeedLike, derive_seed, ensure_seed
from ..search import TrialReport, build_scheduler
from ..sim.pool import GpuPool
from ..storage import TrialDatabase
from ..workloads import Workload
from .inference_server import InferenceTuningServer, architecture_key_of
from .results import InferenceRecommendation, TrialRecord, TuningRunResult

#: Per-trial fixed orchestration overhead on the tuning server, seconds
#: (checkpointing, worker startup — present in any real tuning system).
TRIAL_OVERHEAD_S = 10.0


class ModelTuningServer:
    """Drives the tuning loop for one workload."""

    def __init__(
        self,
        workload: Workload,
        algorithm: str = "bohb",
        budget: Optional[BudgetStrategy] = None,
        objective: Optional[TuningObjective] = None,
        emulator: Optional[Emulator] = None,
        inference_server: Optional[InferenceTuningServer] = None,
        database: Optional[TrialDatabase] = None,
        seed: SeedLike = None,
        include_system_parameters: bool = True,
        fixed_gpus: int = 1,
        max_trials: Optional[int] = None,
        target_accuracy: Optional[float] = None,
        samples: Optional[int] = None,
        system_name: str = "edgetune",
        eta: int = 2,
        server_device: str = "titan-server",
        stop_on_target: bool = True,
    ):
        self.workload = workload
        self.algorithm = algorithm
        self.budget = budget or MultiBudget()
        self.objective = objective or RatioObjective("runtime")
        self.emulator = emulator or Emulator()
        self.inference_server = inference_server
        self.database = database or TrialDatabase()
        self.seed = ensure_seed(seed)
        self.include_system_parameters = include_system_parameters
        self.fixed_gpus = fixed_gpus
        self.max_trials = max_trials
        self.target_accuracy = target_accuracy
        self.samples = samples
        self.system_name = system_name
        self.eta = eta
        self.server_device = server_device
        self.stop_on_target = stop_on_target
        self._sizing_cache: Dict[tuple, Tuple[int, int]] = {}

    # -- architecture sizing ---------------------------------------------------
    def _architecture_key(self, configuration, train_set):
        """(cache key, flops/sample, params) for a configuration.

        Builds a randomly-initialised probe model per distinct set of
        model-kind hyperparameters (Algorithm 1's ``model.random_init()``)
        and memoises the sizing so repeated structures cost nothing.
        """
        model_values = tuple(
            sorted(configuration.subset(["model"]).items())
        )
        cached = self._sizing_cache.get(model_values)
        if cached is None:
            probe = self.workload.family.instantiate(
                train_set.sample_shape,
                train_set.num_classes,
                configuration.to_dict(),
                seed=derive_seed(self.seed, "probe", repr(model_values)),
            )
            flops, _ = probe.flops(train_set.sample_shape)
            cached = (int(flops), probe.parameter_count())
            self._sizing_cache[model_values] = cached
        flops, params = cached
        key = architecture_key_of(self.workload.family.name, flops, params)
        return key, flops, params

    # -- single trial -------------------------------------------------------
    def _execute_trial(self, trial, train_set, eval_set):
        """Train + measure one trial.

        Returns ``(partial_record_fields, model, inference_rec,
        inference_is_new)`` — scheduling onto the pool happens in
        :meth:`run`, which owns the virtual timeline.
        """
        configuration = trial.configuration
        budget = self.budget.budget(trial.fidelity)
        family = self.workload.family

        inference_rec: Optional[InferenceRecommendation] = None
        inference_is_new = False
        if self.inference_server is not None:
            inference_key, flops, params = self._architecture_key(
                configuration, train_set
            )
            inference_rec = self.inference_server.cached(inference_key)
            if inference_rec is None:
                inference_rec, _ = self.inference_server.tune(
                    inference_key,
                    forward_flops_per_sample=flops,
                    parameter_count=params,
                    space=self.workload.inference_space(
                        self.inference_server.device
                    ),
                )
                inference_is_new = True

        model = family.instantiate(
            train_set.sample_shape,
            train_set.num_classes,
            configuration.to_dict(),
            seed=self.workload.model_seed(self.seed, trial.trial_id),
        )
        loss = family.make_loss(train_set.num_classes)
        configured_batch = int(configuration["train_batch_size"])
        real_batch, learning_rate = self.workload.effective_training(
            configured_batch
        )
        result = train_model(
            model,
            loss,
            train_set,
            eval_set,
            epochs=budget.epochs,
            batch_size=real_batch,
            lr=learning_rate,
            data_fraction=budget.data_fraction,
            seed=derive_seed(self.seed, "train", trial.trial_id),
        )
        gpus = (
            int(configuration["gpus"])
            if self.include_system_parameters and "gpus" in configuration
            else self.fixed_gpus
        )
        training_measurement = self.emulator.measure_training(
            train_total_flops=result.train_total_flops,
            forward_flops_per_sample=result.forward_flops_per_sample,
            parameter_count=result.parameter_count,
            samples_seen=result.samples_seen,
            batch_size=configured_batch,
            device=self.server_device,
            gpus=gpus,
        )
        score = self.objective.score(
            result.accuracy,
            training_measurement,
            inference_rec.measurement if inference_rec else None,
        )
        return (
            budget,
            result,
            training_measurement,
            gpus,
            score,
            model,
            inference_rec,
            inference_is_new,
        )

    # -- full run ----------------------------------------------------------------
    def run(self) -> TuningRunResult:
        """Execute the tuning loop to completion and return the result."""
        train_set, eval_set = self.workload.load(
            seed=self.seed, samples=self.samples
        )
        space = self.workload.training_space(
            include_system=self.include_system_parameters
        )
        scheduler = build_scheduler(
            self.algorithm,
            space,
            seed=derive_seed(self.seed, "scheduler"),
            max_fidelity=self.budget.max_iteration,
            eta=self.eta,
            num_trials=self.max_trials,
        )
        pool = GpuPool(get_device(self.server_device).gpus or 1)
        inference_lane_free = 0.0
        rung_key: Optional[Tuple[int, int]] = None
        rung_end = 0.0  # completion time of the current rung (incl. stalls)
        barrier = 0.0  # earliest start for trials of the current rung
        stall_total = 0.0
        records: List[TrialRecord] = []
        best: Optional[TrialRecord] = None
        best_model = None
        inference_energy_total = 0.0

        while True:
            if self.max_trials is not None and len(records) >= self.max_trials:
                break
            trial = scheduler.next_trial()
            if trial is None:
                if scheduler.finished:
                    break
                raise TuningError("scheduler stalled awaiting reports")
            if (trial.bracket, trial.rung) != rung_key:
                # Synchronous halving: a new rung starts only after every
                # trial (and pending inference job) of the previous one.
                rung_key = (trial.bracket, trial.rung)
                barrier = max(barrier, rung_end)
            (
                budget,
                result,
                training_measurement,
                gpus,
                score,
                model,
                inference_rec,
                inference_is_new,
            ) = self._execute_trial(trial, train_set, eval_set)

            placement = pool.schedule(
                width=gpus,
                duration=training_measurement.runtime_s + TRIAL_OVERHEAD_S,
                earliest=barrier,
            )
            trial_end = placement.end
            stall = 0.0
            if inference_is_new and inference_rec is not None:
                # Pipelined CPU lane: job starts when the trial starts and
                # the lane is free; its result is needed by the trial's
                # promotion decision (the rung barrier).
                job_start = max(inference_lane_free, placement.start)
                job_end = job_start + inference_rec.tuning_runtime_s
                inference_lane_free = job_end
                inference_energy_total += inference_rec.tuning_energy_j
                if job_end > trial_end:
                    stall = job_end - trial_end
                    trial_end = job_end
            stall_total += stall
            rung_end = max(rung_end, trial_end)

            record = TrialRecord(
                trial_id=trial.trial_id,
                configuration=trial.configuration.to_dict(),
                fidelity=trial.fidelity,
                epochs=budget.epochs,
                data_fraction=budget.data_fraction,
                accuracy=result.accuracy,
                score=score,
                training=training_measurement,
                inference=inference_rec.measurement if inference_rec else None,
                bracket=trial.bracket,
                rung=trial.rung,
                stall_s=stall,
            )
            records.append(record)
            self.database.record_trial(
                experiment=f"{self.system_name}:{self.workload.workload_id}",
                trial_id=trial.trial_id,
                configuration=record.configuration,
                fidelity=trial.fidelity,
                epochs=budget.epochs,
                data_fraction=budget.data_fraction,
                accuracy=result.accuracy,
                score=score,
                train_runtime_s=training_measurement.runtime_s,
                train_energy_j=training_measurement.energy_j,
            )
            scheduler.report(
                TrialReport(trial=trial, score=score, accuracy=result.accuracy)
            )
            if best is None or self._better(record, best):
                best = record
                best_model = model
            if (
                self.stop_on_target
                and self.target_accuracy is not None
                and record.fidelity >= self.budget.max_iteration
                and record.accuracy >= self.target_accuracy
            ):
                break

        if best is None:
            raise TuningError("tuning produced no trials")
        inference_rec_final: Optional[InferenceRecommendation] = None
        if self.inference_server is not None:
            key, _, _ = self._architecture_key(
                space.configuration(**best.configuration), train_set
            )
            inference_rec_final = self.inference_server.cached(key)
        return TuningRunResult(
            system=self.system_name,
            workload_id=self.workload.workload_id,
            best_configuration=best.configuration,
            best_accuracy=best.accuracy,
            best_score=best.score,
            tuning_runtime_s=max(pool.makespan, rung_end),
            tuning_energy_j=sum(r.training.energy_j for r in records)
            + inference_energy_total,
            trials=records,
            inference=inference_rec_final,
            stall_s=stall_total,
            best_model=best_model,
        )

    @staticmethod
    def _better(candidate: TrialRecord, incumbent: TrialRecord) -> bool:
        """Prefer higher fidelity; within a fidelity, lower score."""
        if candidate.fidelity != incumbent.fidelity:
            return candidate.fidelity > incumbent.fidelity
        return candidate.score < incumbent.score
