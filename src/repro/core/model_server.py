"""The Model Tuning Server (paper §3.3, Algorithm 1 lines 1-10).

Runs budgeted training trials proposed by a multi-fidelity scheduler,
asynchronously requesting inference tuning for every new architecture, and
scores each trial with the combined objective.  All training is *real*
(numpy SGD on the synthetic workload); all runtime/energy is *virtual*:

* trials are placed on a shared **GPU pool** (greedy list scheduling with
  synchronous rung barriers), so tuning runtime is the schedule makespan —
  a trial asking for 8 GPUs runs alone while eight 1-GPU trials overlap;
* inference-tuning jobs run pipelined on the CPU-only inference lane,
  hidden inside trial durations unless they finish late, in which case the
  rung barrier *stalls* (§3.3's containment argument, made measurable);
* tuning energy sums every trial's consumption — parallelism hides
  latency, never joules.

The server is a *stepwise engine* so that :mod:`repro.service` can drive
it across process boundaries:

* :meth:`ModelTuningServer.prepare` builds a :class:`RunState`;
* :meth:`ModelTuningServer.next_wave` drains every trial the scheduler can
  issue right now (a rung's worth for halving schedulers);
* :meth:`ModelTuningServer.make_task` turns a trial into a serializable
  :class:`TrialTask` that any worker process can execute via
  :func:`evaluate_trial` — the pure, heavy part (real numpy training);
* :meth:`ModelTuningServer.integrate` merges one evaluation back —
  scoring, inference tuning, virtual-time accounting, scheduler report —
  and must be called in wave order, which is what makes an N-worker run
  identical to a 1-worker run;
* :meth:`snapshot_run` / :meth:`restore_run` checkpoint everything but the
  datasets (rebuilt deterministically from the seed) for crash-safe
  resume.

:meth:`run` is the classic in-process driver: one trial at a time, exactly
the historical serial semantics.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..artifacts import ArtifactStore, pack_velocity, trial_key
from ..budgets import BudgetStrategy, MultiBudget
from ..datasets.base import Dataset
from ..errors import TuningError
from ..hardware import Emulator, get_device
from ..nn import train_model
from ..objectives import WORST_SCORE, RatioObjective, TuningObjective
from ..rng import SeedLike, derive_seed, ensure_seed
from ..search import ScheduledTrial, TrialReport, build_scheduler
from ..sim.pool import GpuPool
from ..space import ParameterSpace
from ..storage import TrialDatabase
from ..telemetry import TrainingMeasurement
from ..workloads import Workload, get_workload
from .inference_server import InferenceTuningServer, architecture_key_of
from .results import InferenceRecommendation, TrialRecord, TuningRunResult

#: Per-trial fixed orchestration overhead on the tuning server, seconds
#: (checkpointing, worker startup — present in any real tuning system).
TRIAL_OVERHEAD_S = 10.0


def _plain(value: Any) -> Any:
    """Coerce a configuration value to a JSON-round-trippable builtin."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


@dataclass(frozen=True)
class TrialTask:
    """Self-contained, serializable description of one trial evaluation.

    Carries everything a worker process needs to reproduce the training
    bit-for-bit: the configuration values, the resolved budget, and the
    seeds/workload identifiers the serial path would have used.

    The warm-resume fields are populated only under
    ``--reuse-checkpoints``: ``reuse`` switches the trainer to the nested
    budget subset (and asks it to capture resume state), ``parent_key``
    names the parent rung's artifact, and ``start_epoch`` is how many
    epochs the restored state already trained.
    """

    trial_id: int
    values: Dict[str, Any]
    fidelity: int
    bracket: int
    rung: int
    epochs: int
    data_fraction: float
    workload_id: str
    seed: int
    samples: Optional[int]
    reuse: bool = False
    parent_key: Optional[str] = None
    start_epoch: int = 0
    #: Canonical traffic scenario the session tunes under (``None`` for
    #: steady-state sessions).  Part of the artifact trial key so cached
    #: evaluations never leak between load and steady-state semantics.
    traffic: Optional[str] = None

    def to_json(self) -> str:
        return json.dumps(
            {
                "trial_id": self.trial_id,
                "values": self.values,
                "fidelity": self.fidelity,
                "bracket": self.bracket,
                "rung": self.rung,
                "epochs": self.epochs,
                "data_fraction": self.data_fraction,
                "workload_id": self.workload_id,
                "seed": self.seed,
                "samples": self.samples,
                "reuse": self.reuse,
                "parent_key": self.parent_key,
                "start_epoch": self.start_epoch,
                "traffic": self.traffic,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "TrialTask":
        raw = json.loads(payload)
        return cls(**raw)


@dataclass
class TrialEvaluation:
    """Serializable outcome of the heavy (worker-side) part of a trial."""

    trial_id: int
    accuracy: float
    final_loss: Optional[float]
    samples_seen: int
    forward_flops_per_sample: int
    train_total_flops: int
    parameter_count: int
    #: Pickled trained :class:`~repro.nn.module.Module` (optional — the
    #: serial path keeps the live object instead).
    model_blob: Optional[bytes] = None
    #: Training diverged (NaN/Inf loss) and was aborted early; the trial
    #: scores :data:`~repro.objectives.WORST_SCORE` so the scheduler
    #: prunes the configuration instead of the run crashing.
    diverged: bool = False
    #: The trial never produced a real evaluation (job exhausted its
    #: retries and was dead-lettered); a substitute record keeps the
    #: wave merge — and N-worker determinism — intact.
    failed: bool = False
    #: Human-readable cause for ``failed``/``diverged`` records.
    failure: Optional[str] = None

    @property
    def degraded(self) -> bool:
        return self.failed or self.diverged


def failure_evaluation(trial_id: int, error: Optional[str]) -> TrialEvaluation:
    """The substitute evaluation integrated for a dead-lettered job.

    Deterministic by construction (all-zero compute, worst-case
    accuracy), so a session containing quarantined jobs still merges
    identically for any worker count.
    """
    return TrialEvaluation(
        trial_id=int(trial_id),
        accuracy=0.0,
        final_loss=None,
        samples_seen=0,
        forward_flops_per_sample=0,
        train_total_flops=0,
        parameter_count=0,
        failed=True,
        failure=error,
    )


#: Dataset memo: (workload_id, seed, samples) -> (train, eval).  Worker
#: processes evaluate many tasks of the same session back to back, and
#: rebuilding the synthetic dataset dominated small-trial latency.  FIFO
#: capped — a worker serving interleaved sessions holds at most this many
#: materialised datasets.
_DATASET_CACHE: Dict[Tuple[str, int, Optional[int]], Tuple[Dataset, Dataset]] = {}


def _dataset_cache_max() -> int:
    """Size cap, overridable per deployment via ``$REPRO_DATASET_CACHE_MAX``
    (batched groups reuse one split K times — a worker serving interleaved
    sessions may want more than the default four)."""
    raw = os.environ.get("REPRO_DATASET_CACHE_MAX", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return _DATASET_CACHE_MAX


_DATASET_CACHE_MAX = 4

#: Lifetime telemetry for the dataset memo (process-local, monotonic).
#: Surfaced by the worker meters and ``service status --json`` so the
#: cache-reuse that batched groups rely on is observable.
_DATASET_CACHE_COUNTERS = {"hits": 0, "misses": 0, "evictions": 0}


def dataset_cache_stats() -> Dict[str, int]:
    """Snapshot of the dataset-memo meters (hits/misses/evictions/size)."""
    stats = dict(_DATASET_CACHE_COUNTERS)
    stats["size"] = len(_DATASET_CACHE)
    return stats


def load_task_datasets(task: TrialTask) -> Tuple[Dataset, Dataset]:
    """(train, eval) splits for a task — identical to the serial path.

    Memoized per process: datasets are immutable after construction and
    fully determined by ``(workload_id, seed, samples)``, so sharing one
    instance across a worker's jobs cannot change results.
    """
    cache_key = (task.workload_id, task.seed, task.samples)
    cached = _DATASET_CACHE.get(cache_key)
    if cached is None:
        _DATASET_CACHE_COUNTERS["misses"] += 1
        workload = get_workload(task.workload_id)
        cached = workload.load(seed=task.seed, samples=task.samples)
        while len(_DATASET_CACHE) >= _dataset_cache_max():
            _DATASET_CACHE.pop(next(iter(_DATASET_CACHE)))
            _DATASET_CACHE_COUNTERS["evictions"] += 1
        _DATASET_CACHE[cache_key] = cached
    else:
        _DATASET_CACHE_COUNTERS["hits"] += 1
    return cached


def evaluate_trial(
    task: TrialTask,
    train_set: Optional[Dataset] = None,
    eval_set: Optional[Dataset] = None,
    workload: Optional[Workload] = None,
    artifacts: Optional[ArtifactStore] = None,
) -> Tuple[TrialEvaluation, Any]:
    """Run the real numpy training for one :class:`TrialTask`.

    Pure with respect to process state: depends only on the task (seeds
    included), so re-running a crashed job reproduces the same result.
    Returns ``(evaluation, trained_model)``; callers shipping the result
    across a process boundary pickle the model into ``model_blob``.
    ``workload`` short-circuits the registry lookup for in-process callers
    holding a custom workload object.

    ``artifacts`` plugs in the trial artifact cache.  Tier 1 (exact
    memoization): a task whose :func:`~repro.artifacts.trial_key` is
    already stored returns the stored evaluation and model bit-for-bit
    without training.  Tier 2 (warm-resume, only when ``task.reuse``):
    the parent rung's weights/momentum are restored and training starts
    at ``task.start_epoch``.  A missing parent artifact degrades to a
    cold run — the task is re-keyed with the lineage stripped so the
    stored artifact always describes what actually ran.
    """
    workload = workload or get_workload(task.workload_id)
    key: Optional[str] = None
    if artifacts is not None:
        key = trial_key(task)
        cached = artifacts.load_trial(key)
        if cached is not None:
            return cached[0], cached[1]
    resume: Optional[Tuple[Dict[str, Any], List[Any]]] = None
    if artifacts is not None and task.reuse and task.parent_key is not None:
        resume = artifacts.resume_state(task.parent_key)
        if resume is None:
            # Parent evicted (gc) or never stored: fall back to a cold
            # run under the cold key, which may itself already be cached.
            task = replace(task, parent_key=None, start_epoch=0)
            key = trial_key(task)
            cached = artifacts.load_trial(key)
            if cached is not None:
                return cached[0], cached[1]
    if train_set is None or eval_set is None:
        train_set, eval_set = workload.load(
            seed=task.seed, samples=task.samples
        )
    family = workload.family
    model = family.instantiate(
        train_set.sample_shape,
        train_set.num_classes,
        dict(task.values),
        seed=workload.model_seed(task.seed, task.trial_id),
    )
    loss = family.make_loss(train_set.num_classes)
    configured_batch = int(task.values["train_batch_size"])
    real_batch, learning_rate = workload.effective_training(configured_batch)
    init_state: Optional[Dict[str, Any]] = None
    if resume is not None:
        init_state = {"weights": resume[0], "velocity": resume[1]}
    result = train_model(
        model,
        loss,
        train_set,
        eval_set,
        epochs=task.epochs,
        batch_size=real_batch,
        lr=learning_rate,
        data_fraction=task.data_fraction,
        seed=derive_seed(task.seed, "train", task.trial_id),
        start_epoch=task.start_epoch if init_state is not None else 0,
        init_state=init_state,
        nested_subset=task.reuse,
        capture_state=task.reuse and artifacts is not None,
    )
    evaluation = TrialEvaluation(
        trial_id=task.trial_id,
        accuracy=result.accuracy,
        final_loss=result.final_loss,
        samples_seen=result.samples_seen,
        forward_flops_per_sample=result.forward_flops_per_sample,
        train_total_flops=result.train_total_flops,
        parameter_count=result.parameter_count,
        diverged=result.diverged,
        failure="training diverged (non-finite loss)"
        if result.diverged else None,
    )
    if artifacts is not None and key is not None:
        resume_blob = None
        if result.resume_state is not None:
            # Only the optimizer half travels in the resume blob; the
            # post-training weights are already the stored model pickle.
            resume_blob = pack_velocity(result.resume_state["velocity"])
        artifacts.store_trial(
            key,
            evaluation,
            model,
            resume_blob,
            workload=task.workload_id,
            epochs=task.epochs,
            data_fraction=task.data_fraction,
        )
    return evaluation, model


@dataclass
class RunState:
    """Mutable state of one tuning run (everything :meth:`integrate` touches).

    All fields except the datasets are picklable; :meth:`snapshot_run`
    excludes ``train_set``/``eval_set`` because they are rebuilt
    bit-identically from the workload seed on resume.
    """

    train_set: Dataset
    eval_set: Dataset
    space: ParameterSpace
    scheduler: Any
    pool: GpuPool
    inference_lane_free: float = 0.0
    rung_key: Optional[Tuple[int, int]] = None
    rung_end: float = 0.0
    barrier: float = 0.0
    stall_total: float = 0.0
    inference_energy_total: float = 0.0
    records: List[TrialRecord] = field(default_factory=list)
    best: Optional[TrialRecord] = None
    best_model: Optional[Any] = None
    stopped: bool = False
    #: trial_id -> artifact key, the rung-lineage chain the warm-resume
    #: tier walks when a promoted child looks up its parent's checkpoint.
    #: Part of every snapshot so resume after a crash keeps the chain.
    artifact_keys: Dict[int, str] = field(default_factory=dict)


class ModelTuningServer:
    """Drives the tuning loop for one workload."""

    def __init__(
        self,
        workload: Workload,
        algorithm: str = "bohb",
        budget: Optional[BudgetStrategy] = None,
        objective: Optional[TuningObjective] = None,
        emulator: Optional[Emulator] = None,
        inference_server: Optional[InferenceTuningServer] = None,
        database: Optional[TrialDatabase] = None,
        seed: SeedLike = None,
        include_system_parameters: bool = True,
        fixed_gpus: int = 1,
        max_trials: Optional[int] = None,
        target_accuracy: Optional[float] = None,
        samples: Optional[int] = None,
        system_name: str = "edgetune",
        eta: int = 2,
        num_configs: Optional[int] = None,
        server_device: str = "titan-server",
        stop_on_target: bool = True,
        warm_start: bool = False,
        warm_start_records: Optional[List[Dict[str, Any]]] = None,
        reuse_checkpoints: bool = False,
        artifacts: Optional[ArtifactStore] = None,
        traffic: Optional[str] = None,
        trial_batch: Optional[int] = None,
    ):
        self.workload = workload
        self.algorithm = algorithm
        self.budget = budget or MultiBudget()
        self.objective = objective or RatioObjective("runtime")
        self.emulator = emulator or Emulator()
        self.inference_server = inference_server
        self.database = database or TrialDatabase()
        self.seed = ensure_seed(seed)
        self.include_system_parameters = include_system_parameters
        self.fixed_gpus = fixed_gpus
        self.max_trials = max_trials
        self.target_accuracy = target_accuracy
        self.samples = samples
        self.system_name = system_name
        self.eta = eta
        #: Bracket width override for the halving schedulers.  ``None``
        #: keeps the scheduler's own default (``eta ** num_rungs``); only
        #: ``sha``/``asha`` accept the knob, so reject it early for any
        #: other algorithm instead of failing later inside ``prepare``.
        if num_configs is not None and algorithm not in ("sha", "asha"):
            raise TuningError(
                "num_configs only applies to the 'sha'/'asha' schedulers, "
                f"not {algorithm!r}"
            )
        self.num_configs = num_configs
        self.server_device = server_device
        self.stop_on_target = stop_on_target
        #: Transfer tuning knowledge from prior sessions (§3.4's reuse
        #: principle applied to *training* search): when enabled,
        #: :meth:`prepare` seeds the scheduler's model from historical
        #: trials of the same experiment before the first suggestion.
        self.warm_start = warm_start
        self.warm_start_records = warm_start_records
        #: Records actually absorbed by the last :meth:`prepare` (telemetry).
        self.warm_started_trials = 0
        #: Cross-rung checkpoint reuse (the artifact cache's warm-resume
        #: tier).  Off by default: warm-resumed trials train fewer epochs
        #: from a parent's weights, which changes scores vs. the paper's
        #: retrain-from-scratch semantics.
        self.reuse_checkpoints = bool(reuse_checkpoints)
        #: Canonical scenario string of the serving load this session
        #: tunes under (stamped onto every :class:`TrialTask`); ``None``
        #: preserves the historical steady-state trial keys bit-exactly.
        self.traffic_spec = traffic
        #: Stacking width K for batched-trial execution (``None`` = auto
        #: via ``$REPRO_TRIAL_BATCH``/default; 1 disables).  Resolved at
        #: :meth:`run` time so the environment is read when it matters.
        self.trial_batch = trial_batch
        if artifacts is not None:
            self.artifacts: Optional[ArtifactStore] = artifacts
        elif self.reuse_checkpoints or self.database.path != ":memory:":
            # Exact memoization is bit-safe, so any persistent database
            # gets a store by default; pure in-memory runs skip the
            # bookkeeping unless warm-resume asks for it.
            self.artifacts = ArtifactStore(self.database)
        else:
            self.artifacts = None
        self._sizing_cache: Dict[tuple, Tuple[int, int]] = {}

    def enable_checkpoint_reuse(self) -> None:
        """Turn on warm-resume after construction (CLI flag plumbing)."""
        self.reuse_checkpoints = True
        if self.artifacts is None:
            self.artifacts = ArtifactStore(self.database)

    @property
    def experiment_name(self) -> str:
        """The ``trials`` table experiment this server reads and writes."""
        return f"{self.system_name}:{self.workload.workload_id}"

    # -- architecture sizing ---------------------------------------------------
    def _architecture_key(self, configuration, train_set):
        """(cache key, flops/sample, params) for a configuration.

        Builds a randomly-initialised probe model per distinct set of
        model-kind hyperparameters (Algorithm 1's ``model.random_init()``)
        and memoises the sizing so repeated structures cost nothing.
        """
        model_values = tuple(
            sorted(configuration.subset(["model"]).items())
        )
        cached = self._sizing_cache.get(model_values)
        if cached is None:
            probe = self.workload.family.instantiate(
                train_set.sample_shape,
                train_set.num_classes,
                configuration.to_dict(),
                seed=derive_seed(self.seed, "probe", repr(model_values)),
            )
            flops, _ = probe.flops(train_set.sample_shape)
            cached = (int(flops), probe.parameter_count())
            self._sizing_cache[model_values] = cached
        flops, params = cached
        key = architecture_key_of(self.workload.family.name, flops, params)
        return key, flops, params

    # -- stepwise engine ----------------------------------------------------
    def prepare(self) -> RunState:
        """Load data, build the scheduler, and return a fresh run state."""
        train_set, eval_set = self.workload.load(
            seed=self.seed, samples=self.samples
        )
        space = self.workload.training_space(
            include_system=self.include_system_parameters
        )
        scheduler_kwargs: Dict[str, Any] = {}
        if self.num_configs is not None:
            scheduler_kwargs["num_configs"] = self.num_configs
        scheduler = build_scheduler(
            self.algorithm,
            space,
            seed=derive_seed(self.seed, "scheduler"),
            max_fidelity=self.budget.max_iteration,
            eta=self.eta,
            num_trials=self.max_trials,
            **scheduler_kwargs,
        )
        if self.warm_start:
            records = self.warm_start_records
            if records is None:
                records = self.database.trials_for(self.experiment_name)
            self.warm_started_trials = scheduler.warm_start(records)
        pool = GpuPool(get_device(self.server_device).gpus or 1)
        return RunState(
            train_set=train_set,
            eval_set=eval_set,
            space=space,
            scheduler=scheduler,
            pool=pool,
        )

    def _next_trial(self, state: RunState) -> Optional[ScheduledTrial]:
        """One trial from the scheduler, honouring the trial cap."""
        if state.stopped:
            return None
        if (
            self.max_trials is not None
            and len(state.records) >= self.max_trials
        ):
            return None
        trial = state.scheduler.next_trial()
        if trial is None and not state.scheduler.finished:
            raise TuningError("scheduler stalled awaiting reports")
        return trial

    def next_wave(self, state: RunState) -> List[ScheduledTrial]:
        """Drain every trial the scheduler can issue before needing reports.

        For synchronous-halving schedulers this is (the remainder of) one
        rung — exactly the set of trials that may execute concurrently.
        Returns an empty list when the run is complete.  Counts trials
        already issued so the cap holds across ``wave + records``.
        """
        wave: List[ScheduledTrial] = []
        while True:
            if (
                self.max_trials is not None
                and len(state.records) + len(wave) >= self.max_trials
            ):
                break
            if state.stopped:
                break
            trial = state.scheduler.next_trial()
            if trial is None:
                if not wave and not state.scheduler.finished:
                    raise TuningError("scheduler stalled awaiting reports")
                break
            wave.append(trial)
        return wave

    def next_trials(
        self,
        state: RunState,
        in_flight: int = 0,
        limit: Optional[int] = None,
    ) -> List[ScheduledTrial]:
        """Drain runnable trials without demanding progress (async path).

        The asynchronous coordinator calls this every loop turn; unlike
        :meth:`next_wave` an empty answer while reports are outstanding
        is normal (the scheduler is waiting on them), not a stall.
        ``in_flight`` counts issued-but-unintegrated trials so the
        ``max_trials`` cap holds across ``records + in flight + issued``.
        """
        trials: List[ScheduledTrial] = []
        while limit is None or len(trials) < limit:
            if state.stopped:
                break
            if (
                self.max_trials is not None
                and len(state.records) + in_flight + len(trials)
                >= self.max_trials
            ):
                break
            trial = state.scheduler.next_trial()
            if trial is None:
                break
            trials.append(trial)
        return trials

    def make_task(
        self, trial: ScheduledTrial, state: Optional[RunState] = None
    ) -> TrialTask:
        """The serializable job payload for one scheduled trial.

        Under ``reuse_checkpoints`` (and given ``state`` to consult), the
        task carries the warm-resume lineage: the parent rung's artifact
        key and how many epochs its checkpoint already trained.  The
        child's own key is recorded in ``state.artifact_keys`` so *its*
        promotions can chain from it.
        """
        budget = self.budget.budget(trial.fidelity)
        values = {
            name: _plain(value)
            for name, value in trial.configuration.to_dict().items()
        }
        task = TrialTask(
            trial_id=trial.trial_id,
            values=values,
            fidelity=trial.fidelity,
            bracket=trial.bracket,
            rung=trial.rung,
            epochs=budget.epochs,
            data_fraction=budget.data_fraction,
            workload_id=self.workload.workload_id,
            seed=self.seed,
            samples=self.samples,
            traffic=self.traffic_spec,
        )
        if self.reuse_checkpoints and self.artifacts is not None:
            parent_key: Optional[str] = None
            start_epoch = 0
            parent_id = getattr(trial, "parent_id", None)
            parent_fidelity = getattr(trial, "parent_fidelity", None)
            if (
                state is not None
                and parent_id is not None
                and parent_fidelity is not None
            ):
                parent_key = state.artifact_keys.get(parent_id)
                if parent_key is not None:
                    parent_budget = self.budget.budget(parent_fidelity)
                    start_epoch = min(parent_budget.epochs, budget.epochs)
            task = replace(
                task,
                reuse=True,
                parent_key=parent_key,
                start_epoch=start_epoch,
            )
            if state is not None:
                state.artifact_keys[trial.trial_id] = trial_key(task)
        return task

    def integrate(
        self,
        state: RunState,
        trial: ScheduledTrial,
        evaluation: TrialEvaluation,
        model: Any = None,
    ) -> TrialRecord:
        """Merge one finished evaluation back into the run.

        Must be called in wave order: this is where inference tuning, the
        virtual timeline, the scheduler report and the database write
        happen, all of which are order-sensitive.  Calling it in a fixed
        order makes the run independent of *when* evaluations finished —
        the determinism contract of the parallel worker pool.
        """
        configuration = trial.configuration
        budget = self.budget.budget(trial.fidelity)
        asynchronous = bool(getattr(state.scheduler, "asynchronous", False))
        if not asynchronous and (trial.bracket, trial.rung) != state.rung_key:
            # Synchronous halving: a new rung starts only after every
            # trial (and pending inference job) of the previous one.
            # Asynchronous schedulers (ASHA) have no rung barriers —
            # interleaved rungs must not thrash the barrier, so a
            # promoted trial starts as soon as the GPU pool can place it.
            state.rung_key = (trial.bracket, trial.rung)
            state.barrier = max(state.barrier, state.rung_end)

        # Degraded evaluations (diverged training, dead-lettered jobs)
        # are contained here: no inference tuning for a configuration
        # that produced no usable model, and a finite worst-case score
        # so the scheduler prunes it without poisoning its model fit.
        degraded = getattr(evaluation, "degraded", False)

        inference_rec: Optional[InferenceRecommendation] = None
        inference_is_new = False
        if self.inference_server is not None and not degraded:
            inference_key, flops, params = self._architecture_key(
                configuration, state.train_set
            )
            inference_rec = self.inference_server.cached(inference_key)
            if inference_rec is None:
                inference_rec, _ = self.inference_server.tune(
                    inference_key,
                    forward_flops_per_sample=flops,
                    parameter_count=params,
                    space=self.workload.inference_space(
                        self.inference_server.device
                    ),
                )
                inference_is_new = True

        gpus = (
            int(configuration["gpus"])
            if self.include_system_parameters and "gpus" in configuration
            else self.fixed_gpus
        )
        if evaluation.train_total_flops > 0:
            training_measurement = self.emulator.measure_training(
                train_total_flops=evaluation.train_total_flops,
                forward_flops_per_sample=evaluation.forward_flops_per_sample,
                parameter_count=evaluation.parameter_count,
                samples_seen=evaluation.samples_seen,
                batch_size=int(configuration["train_batch_size"]),
                device=self.server_device,
                gpus=gpus,
            )
        else:
            # No completed step (instant divergence, substituted failure):
            # nothing to emulate, and the hardware model rejects
            # zero-FLOP runs anyway.  A zero-cost measurement keeps the
            # virtual timeline identical for every worker count.
            spec = get_device(self.server_device)
            training_measurement = TrainingMeasurement(
                runtime_s=0.0, energy_j=0.0, power_w=0.0,
                working_set_bytes=0, device=spec.name, gpus=gpus,
                cores=spec.cores,
            )
        if degraded:
            score = WORST_SCORE
        else:
            score = self.objective.score(
                evaluation.accuracy,
                training_measurement,
                inference_rec.measurement if inference_rec else None,
            )

        placement = state.pool.schedule(
            width=gpus,
            duration=training_measurement.runtime_s + TRIAL_OVERHEAD_S,
            earliest=state.barrier,
        )
        trial_end = placement.end
        stall = 0.0
        if inference_is_new and inference_rec is not None:
            # Pipelined CPU lane: job starts when the trial starts and
            # the lane is free; its result is needed by the trial's
            # promotion decision (the rung barrier).
            job_start = max(state.inference_lane_free, placement.start)
            job_end = job_start + inference_rec.tuning_runtime_s
            state.inference_lane_free = job_end
            state.inference_energy_total += inference_rec.tuning_energy_j
            if job_end > trial_end:
                stall = job_end - trial_end
                trial_end = job_end
        state.stall_total += stall
        state.rung_end = max(state.rung_end, trial_end)

        record = TrialRecord(
            trial_id=trial.trial_id,
            configuration=configuration.to_dict(),
            fidelity=trial.fidelity,
            epochs=budget.epochs,
            data_fraction=budget.data_fraction,
            accuracy=evaluation.accuracy,
            score=score,
            training=training_measurement,
            inference=inference_rec.measurement if inference_rec else None,
            bracket=trial.bracket,
            rung=trial.rung,
            stall_s=stall,
            failure=getattr(evaluation, "failure", None),
        )
        state.records.append(record)
        self.database.record_trial(
            experiment=self.experiment_name,
            trial_id=trial.trial_id,
            configuration=record.configuration,
            fidelity=trial.fidelity,
            epochs=budget.epochs,
            data_fraction=budget.data_fraction,
            accuracy=evaluation.accuracy,
            score=score,
            train_runtime_s=training_measurement.runtime_s,
            train_energy_j=training_measurement.energy_j,
        )
        state.scheduler.report(
            TrialReport(
                trial=trial, score=score, accuracy=evaluation.accuracy
            )
        )
        incumbent_ok = (
            state.best is not None and state.best.failure is None
        )
        if state.best is None or (
            not degraded
            and (not incumbent_ok or self._better(record, state.best))
        ):
            # A healthy trial always displaces a degraded incumbent;
            # degraded records only ever seed an empty best slot (so a
            # fully-poisoned session still finalizes).
            state.best = record
            state.best_model = (
                model if model is not None else evaluation.model_blob
            )
        if (
            self.stop_on_target
            and self.target_accuracy is not None
            and record.fidelity >= self.budget.max_iteration
            and record.accuracy >= self.target_accuracy
        ):
            state.stopped = True
        return record

    def finalize(self, state: RunState) -> TuningRunResult:
        """Close the run and assemble the :class:`TuningRunResult`."""
        best = state.best
        if best is None:
            raise TuningError("tuning produced no trials")
        inference_rec_final: Optional[InferenceRecommendation] = None
        if self.inference_server is not None:
            key, _, _ = self._architecture_key(
                state.space.configuration(**best.configuration),
                state.train_set,
            )
            inference_rec_final = self.inference_server.cached(key)
        best_model = state.best_model
        if isinstance(best_model, bytes):
            best_model = pickle.loads(best_model)
        return TuningRunResult(
            system=self.system_name,
            workload_id=self.workload.workload_id,
            best_configuration=best.configuration,
            best_accuracy=best.accuracy,
            best_score=best.score,
            tuning_runtime_s=max(state.pool.makespan, state.rung_end),
            tuning_energy_j=sum(
                r.training.energy_j for r in state.records
            )
            + state.inference_energy_total,
            trials=state.records,
            inference=inference_rec_final,
            stall_s=state.stall_total,
            best_model=best_model,
        )

    # -- crash-safe checkpointing -------------------------------------------
    #: RunState fields excluded from checkpoints: datasets are rebuilt
    #: deterministically from the workload seed on resume.
    _EPHEMERAL_FIELDS = ("train_set", "eval_set")

    def snapshot_run(
        self, state: RunState, wave: Optional[List[ScheduledTrial]] = None
    ) -> bytes:
        """Serialize the full run state (plus un-integrated wave trials).

        Taken after every integrated trial by the service coordinator; a
        process killed at any point resumes from the latest snapshot
        without re-running finished trials.
        """
        payload = {
            name: value
            for name, value in state.__dict__.items()
            if name not in self._EPHEMERAL_FIELDS and name != "scheduler"
        }
        return pickle.dumps(
            {
                "scheduler": state.scheduler.state_dict(),
                "state": payload,
                "wave": list(wave or []),
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def restore_run(
        self, state: RunState, blob: bytes
    ) -> List[ScheduledTrial]:
        """Restore a :meth:`snapshot_run` checkpoint into ``state``.

        Returns the wave of trials that were issued but not yet integrated
        when the snapshot was taken; the caller re-collects their results
        (from the job queue) and integrates them in order.
        """
        checkpoint = pickle.loads(blob)
        state.scheduler.load_state_dict(checkpoint["scheduler"])
        for name, value in checkpoint["state"].items():
            setattr(state, name, value)
        return list(checkpoint["wave"])

    # -- full run ----------------------------------------------------------------
    def run(self) -> TuningRunResult:
        """Execute the tuning loop in-process to completion.

        With an effective ``trial_batch`` > 1 and a synchronous
        scheduler, each wave's tasks are partitioned by
        :func:`~repro.core.trial_batch.batch_signature` and
        signature-sharers train as one stacked run — integration stays
        in wave order, so results are bit-identical to the serial loop.
        Asynchronous schedulers and adaptive searchers that must observe
        each report before their next suggestion (``wave_safe`` False,
        e.g. plain TPE) keep the one-at-a-time path here; their batched
        execution happens worker-side in the service, where waves are
        the contract anyway.
        """
        from .trial_batch import resolve_trial_batch

        state = self.prepare()
        limit = resolve_trial_batch(self.trial_batch)
        if (
            limit > 1
            and not getattr(state.scheduler, "asynchronous", False)
            and getattr(state.scheduler, "wave_safe", True)
        ):
            return self._run_batched(state, limit)
        while True:
            trial = self._next_trial(state)
            if trial is None:
                break
            evaluation, model = evaluate_trial(
                self.make_task(trial, state),
                state.train_set,
                state.eval_set,
                workload=self.workload,
                artifacts=self.artifacts,
            )
            self.integrate(state, trial, evaluation, model=model)
        return self.finalize(state)

    def _run_batched(self, state: RunState, limit: int) -> TuningRunResult:
        """Wave-at-a-time driver with stacked trial execution.

        Evaluating a whole wave before integrating matches the service
        coordinator's contract (evaluations are order-independent; only
        :meth:`integrate` order matters), which PR 1 pinned bit-identical
        to the serial loop.
        """
        from .trial_batch import evaluate_task_groups

        while True:
            wave = self.next_wave(state)
            if not wave:
                break
            tasks = [self.make_task(trial, state) for trial in wave]
            outputs = evaluate_task_groups(
                tasks,
                state.train_set,
                state.eval_set,
                limit,
                workload=self.workload,
                artifacts=self.artifacts,
            )
            for trial, (evaluation, model) in zip(wave, outputs):
                if state.stopped:
                    break
                self.integrate(state, trial, evaluation, model=model)
        return self.finalize(state)

    @staticmethod
    def _better(candidate: TrialRecord, incumbent: TrialRecord) -> bool:
        """Prefer higher fidelity; within a fidelity, lower score."""
        if candidate.fidelity != incumbent.fidelity:
            return candidate.fidelity > incumbent.fidelity
        return candidate.score < incumbent.score
