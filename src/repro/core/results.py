"""Result records produced by tuning runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..telemetry import InferenceMeasurement, TrainingMeasurement


@dataclass(frozen=True)
class InferenceRecommendation:
    """What EdgeTune hands the user for deployment (§3.1 output):
    the optimal inference configuration for the tuned architecture,
    with its estimated metrics and the cost of finding it."""

    configuration: Dict[str, Any]
    measurement: InferenceMeasurement
    device: str
    objective: str
    tuning_runtime_s: float
    tuning_energy_j: float
    cache_hit: bool = False


@dataclass(frozen=True)
class TrialRecord:
    """One completed training trial."""

    trial_id: int
    configuration: Dict[str, Any]
    fidelity: int
    epochs: int
    data_fraction: float
    accuracy: float
    score: float
    training: TrainingMeasurement
    inference: Optional[InferenceMeasurement] = None
    bracket: int = 0
    rung: int = 0
    stall_s: float = 0.0
    #: Why this trial produced no usable model (diverged training or a
    #: dead-lettered job); ``None`` for healthy trials.
    failure: Optional[str] = None

    @property
    def trial_runtime_s(self) -> float:
        """Virtual duration of the trial on the model lane (incl. stall)."""
        return self.training.runtime_s + self.stall_s

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class TuningRunResult:
    """Outcome of a whole tuning run (EdgeTune or a baseline)."""

    system: str
    workload_id: str
    best_configuration: Dict[str, Any]
    best_accuracy: float
    best_score: float
    tuning_runtime_s: float
    tuning_energy_j: float
    trials: List[TrialRecord] = field(default_factory=list)
    inference: Optional[InferenceRecommendation] = None
    stall_s: float = 0.0
    #: the trained winning model (a live Module), when retained
    best_model: Optional[object] = None

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    @property
    def tuning_runtime_minutes(self) -> float:
        return self.tuning_runtime_s / 60.0

    @property
    def tuning_energy_kj(self) -> float:
        return self.tuning_energy_j / 1e3

    def accuracy_trajectory(self) -> List[float]:
        """Best accuracy reached after each trial (convergence curves)."""
        best = 0.0
        trajectory = []
        for record in self.trials:
            best = max(best, record.accuracy)
            trajectory.append(best)
        return trajectory
