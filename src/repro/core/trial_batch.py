"""The ``TrialBatch`` execution unit: group and stack trial evaluations.

Sits between the scheduler/queue layer (which thinks in single
:class:`~repro.core.model_server.TrialTask`\\ s) and the batched training
path (:func:`repro.nn.batched.train_model_batch`).  Three pieces:

* :func:`batch_signature` — the grouping key.  Two tasks may share a
  stacked run only when every *shape-determining* input matches: model
  family and its shape hyperparameters, real batch size, epochs,
  data fraction, dataset seed/samples.  Scalar hyperparameters (lr via
  ``train_batch_size`` is shape-relevant and therefore *in* the
  signature; dropout is per-lane) ride along the lane axis.  ``None``
  means "not stackable — use the serial path".
* :func:`group_tasks` — partition a task list into execution groups of
  at most K signature-sharers plus serial singletons.
* :func:`evaluate_trial_batch` — the K-wide twin of
  :func:`~repro.core.model_server.evaluate_trial`: per-member artifact
  memo check first, one stacked training run for the misses, K per-trial
  evaluations out.  Artifact keys stay per-trial (the cache must hit
  identically whether a trial ran stacked or serial), so each member is
  stored under exactly the key the serial path would have used.

Bit-identity per member with the serial path is the invariant; the
signature gates (fast backend, no warm-resume lineage) exclude every
path the batched trainer does not mirror.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..artifacts import ArtifactStore, trial_key
from ..nn import kernels
from ..nn.batched import UnstackableModelError, train_model_batch
from ..rng import derive_seed
from ..workloads import Workload, get_workload
from .model_server import (
    TrialEvaluation,
    TrialTask,
    _plain,
    evaluate_trial,
)

#: Stacking width when the CLI/spec leaves ``--trial-batch`` on auto.
DEFAULT_TRIAL_BATCH = 8


def resolve_trial_batch(
    value: Optional[int] = None, default: int = DEFAULT_TRIAL_BATCH
) -> int:
    """Effective stacking width K: explicit value, else ``$REPRO_TRIAL_BATCH``,
    else ``default``.  Any K <= 1 disables batching (returns 1).

    The in-process driver passes the auto default (batching is
    bit-identical, so it is safe to turn on); queue workers pass
    ``default=1`` so service-side grouping is opt-in per session
    (``--trial-batch`` on submit/workers, or the environment override).
    """
    if value is None:
        raw = os.environ.get("REPRO_TRIAL_BATCH", "").strip()
        if raw:
            try:
                value = int(raw)
            except ValueError:
                value = default
        else:
            value = default
    value = int(value)
    return value if value > 1 else 1


def batch_signature(
    task: TrialTask, workload: Optional[Workload] = None
) -> Optional[Tuple]:
    """Grouping key for ``task``, or ``None`` when it must run serially.

    Serial-only cases: warm-resume lineage (``reuse``/``parent_key``/
    ``start_epoch`` change the training loop in ways the batched path
    does not mirror), non-stackable model families (recurrent), and the
    reference kernel backend (the batched twins mirror the fast paths).
    """
    if task.reuse or task.parent_key is not None or task.start_epoch:
        return None
    if kernels.get_backend() != "fast":
        return None
    workload = workload or get_workload(task.workload_id)
    family = workload.family
    if not family.stackable:
        return None
    merged = dict(family.default_hyperparameters)
    merged.update(
        (k, v) for k, v in task.values.items() if k in merged
    )
    shape_values = tuple(
        _plain(merged[name]) for name in family.shape_hyperparameters
    )
    configured_batch = int(task.values["train_batch_size"])
    real_batch, _ = workload.effective_training(configured_batch)
    return (
        task.workload_id,
        family.name,
        shape_values,
        real_batch,
        int(task.epochs),
        float(task.data_fraction),
        int(task.seed),
        task.samples,
        task.traffic,
    )


def group_tasks(
    tasks: Sequence[TrialTask],
    limit: int,
    workload: Optional[Workload] = None,
) -> List[List[int]]:
    """Partition ``tasks`` into execution groups (lists of indices).

    Signature-sharers are grouped up to ``limit`` wide, in first-seen
    order; unstackable tasks become singletons at their own position.
    Every index appears exactly once.
    """
    buckets: Dict[Any, List[int]] = {}
    order: List[Any] = []
    for index, task in enumerate(tasks):
        signature = None
        if limit > 1:
            signature = batch_signature(task, workload=workload)
        key = ("solo", index) if signature is None else ("sig", signature)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = bucket = []
            order.append(key)
        bucket.append(index)
    groups: List[List[int]] = []
    for key in order:
        bucket = buckets[key]
        for start in range(0, len(bucket), max(limit, 1)):
            groups.append(bucket[start:start + max(limit, 1)])
    return groups


def evaluate_trial_batch(
    tasks: Sequence[TrialTask],
    train_set=None,
    eval_set=None,
    workload: Optional[Workload] = None,
    artifacts: Optional[ArtifactStore] = None,
) -> List[Tuple[TrialEvaluation, Any]]:
    """Evaluate K signature-matched tasks as one stacked training run.

    Returns ``[(evaluation, model), ...]`` aligned with ``tasks``; each
    element is bit-identical to ``evaluate_trial(task, ...)`` run alone.
    Members already memoized in the artifact store are served from it
    (and excluded from the stack); a single remaining miss falls through
    to the serial path.  Stacking failures (defensive — the signature
    should prevent them) also fall back to per-task serial evaluation.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    workload = workload or get_workload(tasks[0].workload_id)
    if train_set is None or eval_set is None:
        head = tasks[0]
        train_set, eval_set = workload.load(
            seed=head.seed, samples=head.samples
        )
    results: List[Optional[Tuple[TrialEvaluation, Any]]] = [None] * len(tasks)
    pending: List[Tuple[int, TrialTask, Optional[str]]] = []
    for index, task in enumerate(tasks):
        key: Optional[str] = None
        if artifacts is not None:
            key = trial_key(task)
            cached = artifacts.load_trial(key)
            if cached is not None:
                results[index] = (cached[0], cached[1])
                continue
        pending.append((index, task, key))
    if len(pending) == 1:
        index, task, _ = pending[0]
        results[index] = evaluate_trial(
            task, train_set, eval_set,
            workload=workload, artifacts=artifacts,
        )
        return results
    if pending:
        try:
            evaluated = _train_stacked(
                pending, train_set, eval_set, workload
            )
        except UnstackableModelError:
            for index, task, _ in pending:
                results[index] = evaluate_trial(
                    task, train_set, eval_set,
                    workload=workload, artifacts=artifacts,
                )
            return results
        for (index, task, key), (evaluation, model) in zip(
            pending, evaluated
        ):
            if artifacts is not None and key is not None:
                artifacts.store_trial(
                    key,
                    evaluation,
                    model,
                    None,
                    workload=task.workload_id,
                    epochs=task.epochs,
                    data_fraction=task.data_fraction,
                )
            results[index] = (evaluation, model)
    return results


def _train_stacked(
    pending: Sequence[Tuple[int, TrialTask, Optional[str]]],
    train_set,
    eval_set,
    workload: Workload,
) -> List[Tuple[TrialEvaluation, Any]]:
    """One stacked training run over the pending members.

    Mirrors the serial ``evaluate_trial`` body: same model/loss
    construction, same ``effective_training`` resolution (the signature
    guarantees every member resolves to the same real batch/lr), same
    per-trial training seeds.
    """
    family = workload.family
    models = [
        family.instantiate(
            train_set.sample_shape,
            train_set.num_classes,
            dict(task.values),
            seed=workload.model_seed(task.seed, task.trial_id),
        )
        for _, task, _ in pending
    ]
    loss = family.make_loss(train_set.num_classes)
    head = pending[0][1]
    configured_batch = int(head.values["train_batch_size"])
    real_batch, learning_rate = workload.effective_training(configured_batch)
    seeds = [
        derive_seed(task.seed, "train", task.trial_id)
        for _, task, _ in pending
    ]
    train_results = train_model_batch(
        models,
        loss,
        train_set,
        eval_set,
        epochs=head.epochs,
        batch_size=real_batch,
        lr=learning_rate,
        data_fraction=head.data_fraction,
        seeds=seeds,
    )
    out: List[Tuple[TrialEvaluation, Any]] = []
    for (_, task, _), model, result in zip(pending, models, train_results):
        out.append((
            TrialEvaluation(
                trial_id=task.trial_id,
                accuracy=result.accuracy,
                final_loss=result.final_loss,
                samples_seen=result.samples_seen,
                forward_flops_per_sample=result.forward_flops_per_sample,
                train_total_flops=result.train_total_flops,
                parameter_count=result.parameter_count,
                diverged=result.diverged,
                failure="training diverged (non-finite loss)"
                if result.diverged else None,
            ),
            model,
        ))
    return out


def evaluate_task_groups(
    tasks: Sequence[TrialTask],
    train_set,
    eval_set,
    limit: int,
    workload: Optional[Workload] = None,
    artifacts: Optional[ArtifactStore] = None,
) -> List[Tuple[TrialEvaluation, Any]]:
    """Evaluate a task list with stacking, preserving task order.

    The driver for the in-process ``run()`` path: partitions the list
    with :func:`group_tasks`, evaluates each group (stacked or serial),
    and returns results aligned with ``tasks``.
    """
    tasks = list(tasks)
    results: List[Optional[Tuple[TrialEvaluation, Any]]] = [None] * len(tasks)
    for indices in group_tasks(tasks, limit, workload=workload):
        group = [tasks[i] for i in indices]
        if len(group) == 1:
            outputs = [evaluate_trial(
                group[0], train_set, eval_set,
                workload=workload, artifacts=artifacts,
            )]
        else:
            outputs = evaluate_trial_batch(
                group, train_set, eval_set,
                workload=workload, artifacts=artifacts,
            )
        for index, value in zip(indices, outputs):
            results[index] = value
    return results
