"""Synthetic datasets mirroring the paper's Table 1 workloads."""

from .base import TASKS, Dataset
from .registry import build_dataset, dataset_names
from .synthetic import make_agnews, make_cifar10, make_coco, make_speech_commands

__all__ = [
    "TASKS",
    "Dataset",
    "build_dataset",
    "dataset_names",
    "make_cifar10",
    "make_speech_commands",
    "make_agnews",
    "make_coco",
]
