"""Dataset container with the operations tuning budgets need.

A :class:`Dataset` is an in-memory (features, targets) pair plus metadata.
Budgets slice it two ways: :meth:`subset` implements the *dataset-fraction*
budget axis (Algorithm 2's ``data.subset(data_frac)``), and :meth:`batches`
yields mini-batches for the SGD loop.  Both are deterministic given a seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from ..errors import BudgetError, ShapeError
from ..rng import SeedLike, derive_seed, make_rng

#: Supported learning tasks.
TASKS = ("classification", "detection")


@dataclass
class Dataset:
    """An in-memory supervised dataset.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"synthetic-cifar10"``.
    features:
        Array of shape ``(N, ...)``.
    targets:
        ``(N,)`` integer class ids for classification, ``(N, 5)``
        (4 box coordinates + class id) for detection.
    num_classes:
        Number of target classes.
    task:
        One of :data:`TASKS`.
    order_seed:
        Optional per-dataset seed fixing *one* canonical sample
        permutation.  When set, :meth:`subset` called without an explicit
        ``rng`` slices a prefix of that permutation, making budget
        subsets *nested*: a smaller fraction is always contained in a
        larger one — the property warm-resumed trials rely on to see a
        superset of their parent's data, and what makes budget-axis
        scores comparable between rungs.
    """

    name: str
    features: np.ndarray
    targets: np.ndarray
    num_classes: int
    task: str = "classification"
    order_seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.targets = np.asarray(self.targets)
        if self.task not in TASKS:
            raise ShapeError(f"unknown task {self.task!r}")
        if len(self.features) != len(self.targets):
            raise ShapeError(
                f"features ({len(self.features)}) and targets "
                f"({len(self.targets)}) disagree in length"
            )
        if self.num_classes < 2:
            raise ShapeError("datasets need at least 2 classes")
        if self.task == "detection" and (
            self.targets.ndim != 2 or self.targets.shape[1] != 5
        ):
            raise ShapeError("detection targets must have shape (N, 5)")

    # -- basic container -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.features)

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        """Shape of a single sample (no batch axis)."""
        return tuple(self.features.shape[1:])

    # -- budget operations ------------------------------------------------------
    def subset(self, fraction: float, rng: SeedLike = None) -> "Dataset":
        """A random subset containing ``fraction`` of the samples.

        The paper's dataset-based budget (§4.3) trains each trial on a
        fraction of the data proportional to its iteration.  ``fraction`` is
        clipped to (0, 1]; at least one sample is always kept.

        With ``rng=None`` on a dataset carrying an :attr:`order_seed`,
        the subset is a prefix of the dataset's canonical permutation, so
        subsets of growing fractions are nested.  An explicit ``rng``
        keeps the historical independent-shuffle behaviour bit-for-bit.
        """
        if not 0.0 < fraction <= 1.0 + 1e-12:
            raise BudgetError(f"fraction must be in (0, 1], got {fraction}")
        fraction = min(fraction, 1.0)
        if fraction == 1.0:
            return self
        count = max(1, int(math.floor(len(self) * fraction)))
        if rng is None and self.order_seed is not None:
            generator = make_rng(self.order_seed)
        else:
            generator = make_rng(rng)
        indices = generator.permutation(len(self))[:count]
        return Dataset(
            name=self.name,
            features=self.features[indices],
            targets=self.targets[indices],
            num_classes=self.num_classes,
            task=self.task,
            order_seed=None if self.order_seed is None
            else derive_seed(self.order_seed, "subset", count),
        )

    def split(
        self, test_fraction: float = 0.2, rng: SeedLike = None
    ) -> Tuple["Dataset", "Dataset"]:
        """Deterministic train/validation split (paper §2.1 uses 20 %)."""
        if not 0.0 < test_fraction < 1.0:
            raise BudgetError(
                f"test_fraction must be in (0, 1), got {test_fraction}"
            )
        generator = make_rng(rng)
        indices = generator.permutation(len(self))
        test_count = max(1, int(len(self) * test_fraction))
        test_idx, train_idx = indices[:test_count], indices[test_count:]
        if len(train_idx) == 0:
            raise BudgetError("split leaves no training samples")
        make = lambda idx, part: Dataset(  # noqa: E731 - tiny local factory
            name=self.name,
            features=self.features[idx],
            targets=self.targets[idx],
            num_classes=self.num_classes,
            task=self.task,
            order_seed=None if self.order_seed is None
            else derive_seed(self.order_seed, "split", part),
        )
        return make(train_idx, "train"), make(test_idx, "test")

    def batches(
        self, batch_size: int, rng: SeedLike = None, shuffle: bool = True
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield mini-batches; the last partial batch is kept."""
        if batch_size <= 0:
            raise BudgetError(f"batch size must be positive, got {batch_size}")
        order = np.arange(len(self))
        if shuffle:
            make_rng(rng).shuffle(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.features[idx], self.targets[idx]

    def take(self, count: int) -> "Dataset":
        """The first ``count`` samples (no shuffling)."""
        count = max(1, min(count, len(self)))
        return Dataset(
            name=self.name,
            features=self.features[:count],
            targets=self.targets[:count],
            num_classes=self.num_classes,
            task=self.task,
            order_seed=None if self.order_seed is None
            else derive_seed(self.order_seed, "take", count),
        )
