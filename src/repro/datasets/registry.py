"""Dataset registry keyed by the paper's workload IDs (Table 1)."""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import WorkloadError
from ..rng import SeedLike, derive_seed, ensure_seed
from .base import Dataset
from .synthetic import make_agnews, make_cifar10, make_coco, make_speech_commands

_BUILDERS: Dict[str, Callable[..., Dataset]] = {
    "cifar10": make_cifar10,
    "speechcommands": make_speech_commands,
    "agnews": make_agnews,
    "coco": make_coco,
}


def dataset_names() -> list:
    """Names accepted by :func:`build_dataset`."""
    return sorted(_BUILDERS)


def build_dataset(name: str, seed: SeedLike = None, **overrides) -> Dataset:
    """Build a synthetic dataset by canonical name.

    ``overrides`` are forwarded to the generator (``samples``, ``noise``,
    size parameters, ...), so tests and benchmarks can scale workloads.
    """
    key = name.lower().replace("-", "").replace("_", "")
    key = key.replace("synthetic", "")
    if key not in _BUILDERS:
        raise WorkloadError(
            f"unknown dataset {name!r}; expected one of {dataset_names()}"
        )
    dataset = _BUILDERS[key](seed=seed, **overrides)
    # One canonical permutation per dataset, derived from the build seed:
    # rng-less ``subset`` calls become prefix-nested (see Dataset.subset).
    dataset.order_seed = derive_seed(ensure_seed(seed), "order", key)
    return dataset
