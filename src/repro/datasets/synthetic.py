"""Synthetic stand-ins for the paper's four datasets (Table 1).

The real datasets (CIFAR10, Speech Commands, AG News, COCO) are not
available offline, so each generator below builds a *structurally
equivalent* synthetic dataset: same modality, same label structure, scaled
down so the numpy NN engine trains in milliseconds.  Each class is generated
from a random prototype plus noise, so the classes are genuinely separable
and models exhibit real accuracy-vs-budget learning curves — the property
the tuning system actually exercises.

See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from ..rng import SeedLike, derive_seed, make_rng
from .base import Dataset


def _prototype_classification(
    rng: np.random.Generator,
    samples: int,
    shape: tuple,
    num_classes: int,
    noise: float,
    name: str,
) -> Dataset:
    """Shared recipe: per-class prototype + gaussian noise."""
    prototypes = rng.normal(0.0, 1.0, size=(num_classes, *shape))
    targets = rng.integers(num_classes, size=samples)
    features = prototypes[targets] + rng.normal(0.0, noise, size=(samples, *shape))
    return Dataset(
        name=name,
        features=features,
        targets=targets,
        num_classes=num_classes,
    )


def make_cifar10(
    samples: int = 2000,
    image_size: int = 8,
    channels: int = 3,
    num_classes: int = 10,
    noise: float = 3.0,
    seed: SeedLike = None,
) -> Dataset:
    """Synthetic CIFAR10: ``channels``×``image_size``² images, 10 classes.

    The real CIFAR10 is 3×32×32 with 50 000 train files; we keep the
    3-channel image structure and 10 classes but shrink resolution and count
    so real training stays fast.
    """
    rng = make_rng(seed)
    return _prototype_classification(
        rng,
        samples,
        (channels, image_size, image_size),
        num_classes,
        noise,
        "synthetic-cifar10",
    )


def make_speech_commands(
    samples: int = 2000,
    length: int = 128,
    num_classes: int = 10,
    noise: float = 0.8,
    seed: SeedLike = None,
) -> Dataset:
    """Synthetic Speech Commands: 1-channel waveforms of spoken keywords.

    Each class is a band-limited signal with a class-specific fundamental
    frequency and harmonics (the structure keyword-spotting models key on),
    plus white noise.
    """
    rng = make_rng(seed)
    time = np.linspace(0.0, 1.0, length)
    targets = rng.integers(num_classes, size=samples)
    # Class k has fundamental (k+2) Hz with two harmonics and a random phase.
    phases = rng.uniform(0, 2 * np.pi, size=(samples, 3))
    amplitudes = rng.uniform(0.6, 1.4, size=(samples, 3))
    fundamentals = targets + 2
    signal = np.zeros((samples, length))
    for harmonic in range(3):
        freq = fundamentals[:, None] * (harmonic + 1)
        signal += amplitudes[:, harmonic : harmonic + 1] * np.sin(
            2 * np.pi * freq * time[None, :] + phases[:, harmonic : harmonic + 1]
        )
    signal += rng.normal(0.0, noise, size=signal.shape)
    return Dataset(
        name="synthetic-speechcommands",
        features=signal[:, None, :],  # (N, 1, L) channel-first
        targets=targets,
        num_classes=num_classes,
    )


def make_agnews(
    samples: int = 2000,
    sequence_length: int = 24,
    embedding_dim: int = 12,
    num_classes: int = 4,
    noise: float = 0.8,
    seed: SeedLike = None,
) -> Dataset:
    """Synthetic AG News: embedded token sequences in 4 topic classes.

    Real AG News is bag-of-words text in 4 classes.  We generate sequences of
    already-embedded tokens where each class draws tokens from a
    class-specific distribution over a small topic vocabulary — the same
    signal (topical word statistics) an RNN classifier exploits.
    """
    rng = make_rng(seed)
    vocabulary_size = 4 * num_classes
    vocabulary = rng.normal(0.0, 1.0, size=(vocabulary_size, embedding_dim))
    targets = rng.integers(num_classes, size=samples)
    # Class-conditional token distribution: peaked on the class's own slice
    # of the vocabulary, with mass on shared tokens.
    features = np.zeros((samples, sequence_length, embedding_dim))
    for cls in range(num_classes):
        mask = targets == cls
        count = int(mask.sum())
        if count == 0:
            continue
        weights = np.full(vocabulary_size, 1.0)
        weights[cls * 4 : (cls + 1) * 4] = 6.0
        weights /= weights.sum()
        tokens = rng.choice(
            vocabulary_size, size=(count, sequence_length), p=weights
        )
        features[mask] = vocabulary[tokens]
    features += rng.normal(0.0, noise, size=features.shape)
    return Dataset(
        name="synthetic-agnews",
        features=features,
        targets=targets,
        num_classes=num_classes,
    )


def make_coco(
    samples: int = 2000,
    image_size: int = 8,
    channels: int = 3,
    num_classes: int = 8,
    noise: float = 0.4,
    seed: SeedLike = None,
) -> Dataset:
    """Synthetic COCO: images containing one bright object patch + box labels.

    Real COCO has 80 classes and multiple objects; we keep the detection
    *task structure* — predict a bounding box and a class — with a single
    object per image, which is what the YOLO-lite reproduction model and
    :class:`~repro.nn.losses.DetectionLoss` consume.
    """
    rng = make_rng(seed)
    # Objects cover most of the frame so the compact YOLO-lite trunk can
    # both localise and classify them from the 8x8 synthetic images.
    object_size = max(3, (image_size * 5) // 8)
    class_textures = rng.normal(0.0, 1.0, size=(num_classes, channels, object_size, object_size))
    features = rng.normal(0.0, noise, size=(samples, channels, image_size, image_size))
    targets = np.zeros((samples, 5))
    classes = rng.integers(num_classes, size=samples)
    max_origin = image_size - object_size
    origins = rng.integers(0, max_origin + 1, size=(samples, 2))
    for i in range(samples):
        y, x = origins[i]
        cls = classes[i]
        features[i, :, y : y + object_size, x : x + object_size] += (
            class_textures[cls] + 2.0
        )
        # Normalised (cx, cy, w, h) box, YOLO-style.
        targets[i, 0] = (x + object_size / 2) / image_size
        targets[i, 1] = (y + object_size / 2) / image_size
        targets[i, 2] = object_size / image_size
        targets[i, 3] = object_size / image_size
        targets[i, 4] = cls
    return Dataset(
        name="synthetic-coco",
        features=features,
        targets=targets,
        num_classes=num_classes,
        task="detection",
    )
