"""Exception hierarchy for the EdgeTune reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while the
library itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A parameter value or configuration is invalid for its space."""


class SearchSpaceError(ReproError):
    """A parameter space is malformed (empty, inconsistent bounds, ...)."""


class BudgetError(ReproError):
    """A trial budget is invalid (non-positive, min above max, ...)."""


class ShapeError(ReproError):
    """A tensor shape does not match what a layer or loss expects."""


class NotFittedError(ReproError):
    """An estimator or surrogate was used before being fitted."""


class DeviceError(ReproError):
    """An emulated device specification is invalid or unknown."""


class WorkloadError(ReproError):
    """A workload (model + dataset pair) is unknown or inconsistent."""


class StorageError(ReproError):
    """The persistent trial database rejected an operation."""


class SchedulingError(ReproError):
    """The discrete-event executor detected an inconsistent schedule."""


class TuningError(ReproError):
    """A tuning run could not complete (no trials, exhausted budget, ...)."""


class ServiceError(ReproError):
    """The tuning service hit an unrecoverable condition (bad session
    spec, exhausted job retries, lost session)."""


class AdvisorError(ReproError):
    """The recommendation advisor could not answer (empty knowledge base,
    malformed request, unreachable server)."""


class FleetError(ServiceError):
    """The multi-host tuning fleet hit an unrecoverable condition
    (unreachable coordinator, protocol violation, unknown machine)."""


class TrialTimeoutError(ServiceError):
    """A trial exceeded its wall-clock deadline and was abandoned; the
    job is failed (and retried) instead of hanging its worker."""


class InjectedFault(ReproError):
    """A fault deliberately raised by :mod:`repro.faults` — only ever
    seen with fault injection enabled (chaos tests, resilience drills)."""
