"""Experiment harness: one function per paper table/figure.

Index (see DESIGN.md §4 for the full mapping):

=============  =====================================================
target         function
=============  =====================================================
Table 1        :func:`table_01_workloads`
Table 2        :func:`table_02_features`
Figure 1       :func:`figure_01_counters`
Figure 2       :func:`figure_02_model_hparams`
Figure 3       :func:`figure_03_batch_sizes`
Figure 4       :func:`figure_04_gpus`
Figure 5       :func:`figure_05_cpu_cores`
Figure 6       :func:`figure_06_pipeline`
Figure 10      :func:`figure_10_search_flow`
Figure 12      :func:`figure_12_budget_convergence`
Figure 13      :func:`figure_13_budget_comparison`
Figure 14      :func:`figure_14_vs_tune`
Figure 15      :func:`figure_15_emulation_error`
Figure 16      :func:`figure_16_objectives`
Figure 17      :func:`figure_17_vs_hyperpower`
=============  =====================================================
"""

from .ablations import (
    ablation_inference_cache,
    ablation_onefold_vs_hierarchical,
    ablation_reduction_factor,
    ablation_warm_start,
)
from .budgets_exp import figure_12_budget_convergence, figure_13_budget_comparison
from .comparisons import (
    figure_14_vs_tune,
    figure_16_objectives,
    figure_17_vs_hyperpower,
)
from .error import figure_15_emulation_error
from .motivation import (
    figure_01_counters,
    figure_02_model_hparams,
    figure_03_batch_sizes,
    figure_04_gpus,
    figure_05_cpu_cores,
)
from .pipeline import figure_06_pipeline, figure_10_search_flow
from .reporting import render_table, save_table
from .runner import ACCURACY_TARGETS, ExperimentContext, ExperimentResult
from .tables import edgetune_capabilities, table_01_workloads, table_02_features
from .traffic_exp import traffic_slo_comparison

ALL_EXPERIMENTS = {
    "table1": table_01_workloads,
    "table2": table_02_features,
    "fig01": figure_01_counters,
    "fig02": figure_02_model_hparams,
    "fig03": figure_03_batch_sizes,
    "fig04": figure_04_gpus,
    "fig05": figure_05_cpu_cores,
    "fig06": figure_06_pipeline,
    "fig10": figure_10_search_flow,
    "fig12": figure_12_budget_convergence,
    "fig13": figure_13_budget_comparison,
    "fig14": figure_14_vs_tune,
    "fig15": figure_15_emulation_error,
    "fig16": figure_16_objectives,
    "fig17": figure_17_vs_hyperpower,
    # Ablations of prose claims (not numbered figures in the paper).
    "ablation_onefold": ablation_onefold_vs_hierarchical,
    "ablation_cache": ablation_inference_cache,
    "ablation_eta": ablation_reduction_factor,
    "ablation_warmstart": ablation_warm_start,
    # Serving-load extension (repro.traffic, DESIGN.md §7).
    "traffic_slo": traffic_slo_comparison,
}

__all__ = [
    "ExperimentContext",
    "ExperimentResult",
    "ACCURACY_TARGETS",
    "ALL_EXPERIMENTS",
    "render_table",
    "save_table",
    "edgetune_capabilities",
] + [name for name in dir() if name.startswith(("figure_", "table_"))]
