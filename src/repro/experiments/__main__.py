"""Command-line experiment runner.

Regenerate any table/figure of the paper from the shell::

    python -m repro.experiments fig14           # one experiment
    python -m repro.experiments table1 fig05    # several
    python -m repro.experiments --all           # everything
    python -m repro.experiments --list          # what exists
    python -m repro.experiments --fast fig13    # shrunk datasets

Tables are printed and, with ``--out DIR``, also written to disk.
"""

from __future__ import annotations

import argparse
import sys
import warnings

from . import ALL_EXPERIMENTS, ExperimentContext, render_table, save_table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig14, table1)")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment ids")
    parser.add_argument("--fast", action="store_true",
                        help="shrink datasets/trial counts")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--samples", type=int, default=600)
    parser.add_argument("--device", default="armv7")
    parser.add_argument("--out", default=None,
                        help="directory to also save rendered tables into")
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    names = list(ALL_EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.error("no experiments given (try --list or --all)")
    unknown = [name for name in names if name not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    warnings.filterwarnings("ignore", category=RuntimeWarning)
    ctx = ExperimentContext(
        seed=args.seed, samples=args.samples, device=args.device,
        fast=args.fast,
    )
    for name in names:
        result = ALL_EXPERIMENTS[name](ctx)
        print(render_table(result))
        print()
        if args.out:
            path = save_table(result, args.out)
            print(f"[saved {path}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
