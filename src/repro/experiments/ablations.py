"""Ablation experiments for the design choices DESIGN.md calls out.

Not figures of the paper, but claims it makes in prose:

* §4.1 — *onefold vs hierarchical*: "We implement a prototype for each
  strategy, and compared the results" — reproduced as an explicit
  comparison;
* §3.4 — the *historical-results cache*: "allows us to improve
  performance since it avoids retuning architectures ... with the cost of
  a small storage overhead" — reproduced by toggling the cache off;
* §4.3 — the reduction factor η: halving aggressiveness trades trial
  count against per-trial budget.
"""

from __future__ import annotations

from ..baselines import HierarchicalTuner
from ..core import EdgeTune, InferenceTuningServer, ModelTuningServer
from ..hardware import Emulator
from ..objectives import RatioObjective
from ..rng import derive_seed
from ..storage import TrialDatabase
from ..workloads import get_workload
from .runner import ExperimentContext, ExperimentResult


def ablation_onefold_vs_hierarchical(
    ctx: ExperimentContext,
) -> ExperimentResult:
    """§4.1: joint (onefold) tuning vs hyper-then-system (hierarchical).

    Both tune the same workloads with the same budget and search
    algorithm; the hierarchical tuner pays a second phase to sweep the
    system parameter for its phase-1 winner, and its phase-1 choice could
    not account for hyper/system interactions.
    """
    result = ExperimentResult(
        experiment_id="ablation_onefold",
        title="Onefold vs hierarchical tuning (paper §4.1)",
        columns=["workload", "approach", "tuning_runtime_m",
                 "tuning_energy_kj", "accuracy", "gpus_chosen"],
    )
    for workload_id in ("IC", "SR"):
        onefold = EdgeTune(
            workload=workload_id,
            device=ctx.device,
            seed=derive_seed(ctx.seed, "ab-onefold", workload_id),
            samples=ctx.run_samples,
            target_accuracy=ctx.target_for(workload_id),
        ).tune()
        hierarchical = HierarchicalTuner(
            workload=workload_id,
            device=ctx.device,
            seed=derive_seed(ctx.seed, "ab-onefold", workload_id),
            samples=ctx.run_samples,
        ).tune()
        for approach, run in (("onefold", onefold),
                              ("hierarchical", hierarchical)):
            result.add_row(
                workload=workload_id,
                approach=approach,
                tuning_runtime_m=run.tuning_runtime_minutes,
                tuning_energy_kj=run.tuning_energy_kj,
                accuracy=run.best_accuracy,
                gpus_chosen=run.best_configuration.get("gpus", ""),
            )
    result.note("hierarchical pays an extra full-budget system-parameter "
                "sweep after hyperparameter tuning")
    return result


def ablation_inference_cache(ctx: ExperimentContext) -> ExperimentResult:
    """§3.4: the historical-results cache on vs off.

    Without the cache every trial re-tunes its architecture's inference
    parameters, loading the inference lane and stalling the model lane.
    """
    result = ExperimentResult(
        experiment_id="ablation_cache",
        title="Inference historical cache: enabled vs disabled (§3.4)",
        columns=["cache", "tuning_runtime_m", "tuning_energy_kj",
                 "stall_s", "inference_tunes"],
    )
    workload = get_workload("IC")
    for enabled in (True, False):
        database = TrialDatabase()
        emulator = Emulator()
        inference_server = InferenceTuningServer(
            device=ctx.device,
            emulator=emulator,
            database=database,
            seed=derive_seed(ctx.seed, "ab-cache"),
            use_cache=enabled,
        )
        server = ModelTuningServer(
            workload=workload,
            objective=RatioObjective(
                "runtime", accuracy_target=ctx.target_for("IC")
            ),
            emulator=emulator,
            inference_server=inference_server,
            database=database,
            seed=derive_seed(ctx.seed, "ab-cache"),
            samples=ctx.run_samples,
            target_accuracy=ctx.target_for("IC"),
            max_trials=24,
        )
        run = server.run()
        result.add_row(
            cache="on" if enabled else "off",
            tuning_runtime_m=run.tuning_runtime_minutes,
            tuning_energy_kj=run.tuning_energy_kj,
            stall_s=run.stall_s,
            # With the cache on, only distinct architectures are tuned
            # (the cache size); off, every trial launches a fresh tune.
            inference_tunes=(
                database.inference_cache_size() if enabled
                else run.num_trials
            ),
        )
    result.note("cache off: every trial re-tunes inference -> more lane "
                "load, more energy, potential stalls")
    return result


def ablation_reduction_factor(ctx: ExperimentContext) -> ExperimentResult:
    """§4.3: the halving reduction factor η under the multi-budget."""
    result = ExperimentResult(
        experiment_id="ablation_eta",
        title="Reduction factor (eta) sensitivity under multi-budget",
        columns=["eta", "trials", "tuning_runtime_m", "tuning_energy_kj",
                 "accuracy"],
    )
    for eta in (2, 3, 4):
        run = EdgeTune(
            workload="IC",
            device=ctx.device,
            seed=derive_seed(ctx.seed, "ab-eta", eta),
            samples=ctx.run_samples,
            target_accuracy=ctx.target_for("IC"),
        )
        run.model_server.eta = eta
        outcome = run.tune()
        result.add_row(
            eta=eta,
            trials=outcome.num_trials,
            tuning_runtime_m=outcome.tuning_runtime_minutes,
            tuning_energy_kj=outcome.tuning_energy_kj,
            accuracy=outcome.best_accuracy,
        )
    result.note("larger eta prunes harder: fewer promotions, cheaper "
                "tuning, riskier convergence")
    return result


def ablation_warm_start(ctx: ExperimentContext) -> ExperimentResult:
    """Search warm-starting: trials-to-target, cold vs warm.

    A first session populates the trial database; a second session over
    the same workload then runs twice from one seed — once cold, once
    with its TPE model warm-started from the first session's trials.
    Seeds and sample count are pinned (not ``ctx``-scaled) because the
    claim under test is a deterministic trial-count comparison.
    """
    from ..baselines import TuneBaseline

    result = ExperimentResult(
        experiment_id="ablation_warmstart",
        title="Search warm-start: trials to target, cold vs warm",
        columns=["phase", "seed", "trials", "accuracy", "warm_started",
                 "tuning_runtime_m"],
    )
    target, samples = 0.75, 200
    seed_first, seed_second = 7, 21

    def session(database, seed, warm):
        baseline = TuneBaseline(
            workload="IC",
            algorithm="tpe",
            seed=seed,
            samples=samples,
            target_accuracy=target,
            max_trials=40,
            database=database,
        )
        baseline.server.warm_start = warm
        run = baseline.tune()
        return run, baseline.server.warm_started_trials

    shared = TrialDatabase()
    first, _ = session(shared, seed_first, warm=False)
    cold, _ = session(TrialDatabase(), seed_second, warm=False)
    warm, absorbed = session(shared, seed_second, warm=True)
    for phase, seed, run, started in (
        ("first", seed_first, first, 0),
        ("cold", seed_second, cold, 0),
        ("warm", seed_second, warm, absorbed),
    ):
        result.add_row(
            phase=phase,
            seed=seed,
            trials=run.num_trials,
            accuracy=run.best_accuracy,
            warm_started=started,
            tuning_runtime_m=run.tuning_runtime_minutes,
        )
    result.note("warm and cold share a seed; the only difference is the "
                "prior-session trials seeding the TPE model")
    return result
