"""Budget-strategy experiments: Figures 12 and 13 (paper §5.2)."""

from __future__ import annotations

from typing import Dict

from ..budgets import BudgetStrategy, DatasetBudget, EpochBudget, MultiBudget
from ..core import EdgeTune, ModelTuningServer
from ..objectives import AccuracyObjective
from ..rng import derive_seed
from ..storage import TrialDatabase
from ..workloads import get_workload
from .runner import ExperimentContext, ExperimentResult

BUDGETS = {
    "epochs": EpochBudget,
    "dataset": DatasetBudget,
    "multi-budget": MultiBudget,
}


def figure_12_budget_convergence(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 12: per-trial duration (a) and accuracy (b) for the three
    budget strategies on ResNet18/CIFAR10.

    Expected shapes: epoch-budget reaches the target accuracy in few
    trials but with very long trials; dataset-budget keeps trials short
    but accuracy plateaus low; multi-budget balances both.
    """
    result = ExperimentResult(
        experiment_id="fig12",
        title="Trial duration and accuracy convergence per budget strategy",
        columns=["budget", "trial", "fidelity", "duration_m", "accuracy"],
    )
    workload = get_workload("IC")
    target = ctx.target_for("IC")
    for name, budget_cls in BUDGETS.items():
        server = ModelTuningServer(
            workload=workload,
            algorithm="bohb",
            budget=budget_cls(),
            objective=AccuracyObjective(),
            database=TrialDatabase(),
            seed=derive_seed(ctx.seed, "fig12", name),
            include_system_parameters=False,
            fixed_gpus=1,
            samples=ctx.run_samples,
            system_name=f"fig12-{name}",
            max_trials=50,
            target_accuracy=target,
        )
        run = server.run()
        for record in run.trials:
            result.add_row(
                budget=name,
                trial=record.trial_id,
                fidelity=record.fidelity,
                duration_m=record.training.runtime_minutes,
                accuracy=record.accuracy,
            )
    result.note(f"target accuracy: {target}")
    result.note("epoch: fast accuracy / slow trials; dataset: fast trials "
                "/ low accuracy ceiling; multi-budget: balanced (Fig 12)")
    return result


def figure_13_budget_comparison(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 13: tuning duration/energy + inference throughput/energy for
    the three budgets across the four workloads."""
    result = ExperimentResult(
        experiment_id="fig13",
        title="Budget strategies across workloads: tuning + inference",
        columns=["workload", "budget", "tuning_runtime_m",
                 "tuning_energy_kj", "inference_throughput_sps",
                 "inference_energy_j", "accuracy"],
    )
    for workload_id in ("IC", "SR", "NLP", "OD"):
        for name, budget_cls in BUDGETS.items():
            # Fixed tuning session (the paper's setting): the accuracy
            # target constrains the objective but does not stop the run,
            # so every budget pays for its full trial schedule.
            run = EdgeTune(
                workload=workload_id,
                device=ctx.device,
                budget=budget_cls(),
                seed=derive_seed(ctx.seed, "fig13", workload_id, name),
                samples=ctx.run_samples,
                target_accuracy=ctx.target_for(workload_id),
                stop_on_target=False,
            ).tune()
            inference = run.inference
            result.add_row(
                workload=workload_id,
                budget=name,
                tuning_runtime_m=run.tuning_runtime_minutes,
                tuning_energy_kj=run.tuning_energy_kj,
                inference_throughput_sps=(
                    inference.measurement.throughput_sps if inference else ""
                ),
                inference_energy_j=(
                    inference.measurement.energy_per_sample_j
                    if inference else ""
                ),
                accuracy=run.best_accuracy,
            )
    result.note("multi-budget consistently cheapest in runtime and energy "
                "with comparable inference results (paper §5.2)")
    return result
