"""System-comparison experiments: Figures 14, 16 and 17 (paper §5.3-5.5)."""

from __future__ import annotations

from ..baselines import HyperPowerBaseline, TuneBaseline
from ..budgets import EpochBudget
from ..core import EdgeTune
from ..hardware import Emulator
from ..rng import derive_seed
from ..workloads import get_workload
from .runner import ExperimentContext, ExperimentResult

WORKLOAD_IDS = ("IC", "SR", "NLP", "OD")


def figure_14_vs_tune(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 14: EdgeTune vs the Tune baseline (no inference server, fixed
    system parameters, epoch budgets): tuning duration and energy with
    the percentage difference the paper plots."""
    result = ExperimentResult(
        experiment_id="fig14",
        title="EdgeTune vs Tune: tuning duration and energy",
        columns=["workload", "system", "tuning_runtime_m",
                 "tuning_energy_kj", "runtime_diff_pct", "energy_diff_pct",
                 "accuracy"],
    )
    for workload_id in WORKLOAD_IDS:
        target = ctx.comparison_target_for(workload_id)
        edgetune = EdgeTune(
            workload=workload_id,
            device=ctx.device,
            seed=derive_seed(ctx.seed, "fig14", workload_id),
            samples=ctx.comparison_samples,
            target_accuracy=target,
        ).tune()
        tune = TuneBaseline(
            workload=workload_id,
            budget=EpochBudget(),
            seed=derive_seed(ctx.seed, "fig14", workload_id),
            samples=ctx.comparison_samples,
            target_accuracy=target,
        ).tune()
        runtime_diff = (
            edgetune.tuning_runtime_s / tune.tuning_runtime_s - 1
        ) * 100
        energy_diff = (
            edgetune.tuning_energy_j / tune.tuning_energy_j - 1
        ) * 100
        result.add_row(
            workload=workload_id, system="tune",
            tuning_runtime_m=tune.tuning_runtime_minutes,
            tuning_energy_kj=tune.tuning_energy_kj,
            runtime_diff_pct=0.0, energy_diff_pct=0.0,
            accuracy=tune.best_accuracy,
        )
        result.add_row(
            workload=workload_id, system="edgetune",
            tuning_runtime_m=edgetune.tuning_runtime_minutes,
            tuning_energy_kj=edgetune.tuning_energy_kj,
            runtime_diff_pct=runtime_diff, energy_diff_pct=energy_diff,
            accuracy=edgetune.best_accuracy,
        )
    result.note("paper reports EdgeTune reducing tuning duration by ~18 % "
                "and energy by ~53 % (IC, OD); negative diffs = wins")
    return result


def figure_16_objectives(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 16: runtime-based vs energy-based objective functions."""
    result = ExperimentResult(
        experiment_id="fig16",
        title="Objective functions: runtime-optimised vs energy-optimised",
        columns=["workload", "objective", "tuning_runtime_m",
                 "tuning_energy_kj", "inference_throughput_sps",
                 "inference_energy_j"],
    )
    for workload_id in WORKLOAD_IDS:
        for metric in ("runtime", "energy"):
            run = EdgeTune(
                workload=workload_id,
                device=ctx.device,
                tuning_metric=metric,
                inference_metric=metric
                if metric in ("runtime", "energy") else "energy",
                seed=derive_seed(ctx.seed, "fig16", workload_id),
                samples=ctx.run_samples,
                target_accuracy=ctx.target_for(workload_id),
            ).tune()
            inference = run.inference
            result.add_row(
                workload=workload_id,
                objective=f"obj:{metric}",
                tuning_runtime_m=run.tuning_runtime_minutes,
                tuning_energy_kj=run.tuning_energy_kj,
                inference_throughput_sps=(
                    inference.measurement.throughput_sps if inference else ""
                ),
                inference_energy_j=(
                    inference.measurement.energy_per_sample_j
                    if inference else ""
                ),
            )
    result.note("runtime objective: slightly lower tuning time, higher "
                "energy; energy objective mirrors (paper §5.4, diffs "
                "bounded ~20-29 %)")
    return result


def figure_17_vs_hyperpower(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 17: EdgeTune vs HyperPower.

    Tuning: HyperPower explores a smaller (hyper-only) space, so its
    duration/energy are lower.  Inference: following the paper's
    methodology, both final models are evaluated under EdgeTune's
    recommended inference configuration — EdgeTune's inference-aware
    choice of architecture yields higher throughput and lower energy.
    """
    result = ExperimentResult(
        experiment_id="fig17",
        title="EdgeTune vs HyperPower: tuning + inference",
        columns=["workload", "system", "tuning_runtime_m",
                 "tuning_energy_kj", "inference_throughput_sps",
                 "inference_energy_j"],
    )
    emulator = Emulator()
    for workload_id in WORKLOAD_IDS:
        target = ctx.comparison_target_for(workload_id)
        edgetune = EdgeTune(
            workload=workload_id,
            device=ctx.device,
            seed=derive_seed(ctx.seed, "fig17", workload_id),
            samples=ctx.comparison_samples,
            target_accuracy=target,
        ).tune()
        hyperpower = HyperPowerBaseline(
            workload=workload_id,
            seed=derive_seed(ctx.seed, "fig17", workload_id),
            samples=ctx.comparison_samples,
            target_accuracy=target,
        ).tune()
        recommendation = edgetune.inference
        rows = []
        for system, run in (("edgetune", edgetune),
                            ("hyperpower", hyperpower)):
            # Evaluate the system's winning architecture under EdgeTune's
            # recommended inference parameters (paper §5.5).
            workload = get_workload(workload_id)
            train_set, _ = workload.load(
                seed=derive_seed(ctx.seed, "fig17", workload_id),
                samples=ctx.comparison_samples,
            )
            family = workload.family
            probe = family.instantiate(
                train_set.sample_shape, train_set.num_classes,
                run.best_configuration,
                seed=derive_seed(ctx.seed, "fig17-probe", system),
            )
            flops, _ = probe.flops(train_set.sample_shape)
            config = recommendation.configuration if recommendation else {}
            inference = emulator.measure_inference(
                forward_flops_per_sample=flops,
                parameter_count=probe.parameter_count(),
                batch_size=int(config.get("inference_batch_size", 1)),
                device=ctx.device,
                cores=int(config.get("cores", 1)),
                frequency_ghz=config.get("frequency_ghz"),
            )
            rows.append((system, run, inference))
        for system, run, inference in rows:
            result.add_row(
                workload=workload_id,
                system=system,
                tuning_runtime_m=run.tuning_runtime_minutes,
                tuning_energy_kj=run.tuning_energy_kj,
                inference_throughput_sps=inference.throughput_sps,
                inference_energy_j=inference.energy_per_sample_j,
            )
    result.note("paper: HyperPower tunes up to 39 %/33 % cheaper, but "
                "EdgeTune's model serves >=12 % faster at >=29 % less "
                "energy")
    return result
