"""Emulation-precision experiment: Figure 15 (paper §5.3)."""

from __future__ import annotations

from typing import List

from ..hardware import Emulator, RealEdgeDevice, edge_device_names, get_device
from ..nn.models import get_model_family
from ..rng import derive_seed
from ..telemetry import MetricSummary, percent_error
from ..workloads import get_workload
from .runner import ExperimentContext, ExperimentResult


def figure_15_emulation_error(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 15: percent error of emulator throughput/energy estimates
    against the (modelled) physical edge devices, swept across the
    inference configuration space — the box-and-whisker data."""
    result = ExperimentResult(
        experiment_id="fig15",
        title="Inference emulation percent error vs physical edge devices",
        columns=["metric", "count", "mean", "p50", "p90", "max"],
    )
    emulator = Emulator()
    workload = get_workload("IC")
    train_set, _ = workload.load(seed=ctx.seed, samples=ctx.run_samples)
    family = workload.family
    throughput_errors: List[float] = []
    energy_errors: List[float] = []
    for device_name in edge_device_names():
        real = RealEdgeDevice.of(
            device_name, emulator, seed=derive_seed(ctx.seed, "fig15")
        )
        spec = get_device(device_name)
        for layers in (18, 34, 50):
            model = family.instantiate(
                train_set.sample_shape, train_set.num_classes,
                {"num_layers": layers},
                seed=derive_seed(ctx.seed, "fig15", layers),
            )
            flops, _ = model.flops(train_set.sample_shape)
            params = model.parameter_count()
            for batch in (1, 5, 20, 100):
                for cores in (1, 2, spec.cores):
                    estimated = emulator.measure_inference(
                        flops, params, batch, spec, cores=cores
                    )
                    actual = real.measure_inference(
                        flops, params, batch, cores=cores
                    )
                    throughput_errors.append(percent_error(
                        actual.throughput_sps, estimated.throughput_sps
                    ))
                    energy_errors.append(percent_error(
                        actual.energy_per_sample_j,
                        estimated.energy_per_sample_j,
                    ))
    for metric, errors in (("throughput", throughput_errors),
                           ("energy", energy_errors)):
        summary = MetricSummary.of(errors)
        result.add_row(
            metric=metric,
            count=summary.count,
            mean=summary.mean,
            p50=summary.p50,
            p90=summary.p90,
            max=summary.maximum,
        )
    result.note("paper reports small errors (<= ~20 % in most "
                "configurations) validating simulation-based inference "
                "tuning")
    return result
