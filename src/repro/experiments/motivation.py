"""Motivation experiments: Figures 1-5 (paper §2).

These figures establish why inference-aware, multi-parameter tuning is
needed: perf-counter divergence between training-forward and inference
(Fig 1), and the non-obvious cost landscapes of model hyperparameters
(Fig 2), batch sizes (Fig 3), training GPUs (Fig 4) and inference CPU
cores (Fig 5).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..datasets import build_dataset
from ..hardware import Emulator, collect_counters, get_device, magnitude_bucket
from ..nn import BACKWARD_FLOPS_FACTOR, train_model
from ..nn.models import get_model_family
from ..rng import derive_seed
from ..workloads import get_workload
from .runner import ExperimentContext, ExperimentResult


def _ic_architecture(ctx: ExperimentContext, num_layers: int = 18):
    """Probe the IC (ResNet/CIFAR10) architecture: flops & params."""
    workload = get_workload("IC")
    train_set, eval_set = workload.load(seed=ctx.seed, samples=ctx.run_samples)
    family = workload.family
    model = family.instantiate(
        train_set.sample_shape,
        train_set.num_classes,
        {"num_layers": num_layers},
        seed=derive_seed(ctx.seed, "probe", num_layers),
    )
    flops, _ = model.flops(train_set.sample_shape)
    return workload, train_set, eval_set, model, int(flops)


def figure_01_counters(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 1: perf-counter events, training-forward vs inference.

    Expectation: cpu-category events fall in the same magnitude bucket in
    both phases; memory-category events diverge.
    """
    result = ExperimentResult(
        experiment_id="fig01",
        title="Performance counter events: forward-of-training vs inference",
        columns=["event", "category", "train_forward", "inference",
                 "bucket_train", "bucket_inference", "ratio"],
    )
    device = get_device(ctx.device)
    emulator = Emulator()
    _, _, _, _, flops = _ic_architecture(ctx)
    # Steady-state virtual FLOP rate of the workload on this device.
    inference = emulator.measure_inference(flops, 12842, 8, device, cores=2)
    flop_rate = emulator.virtual_flops(flops) * 8 / inference.batch_latency_s
    train_rates = collect_counters(flop_rate, "train_forward", device,
                                   seed=ctx.seed)
    inference_rates = collect_counters(flop_rate, "inference", device,
                                       seed=ctx.seed)
    from ..hardware import EVENTS

    for event in EVENTS:
        t, i = train_rates[event.name], inference_rates[event.name]
        result.add_row(
            event=event.name,
            category=event.category,
            train_forward=t,
            inference=i,
            bucket_train=magnitude_bucket(t),
            bucket_inference=magnitude_bucket(i),
            ratio=t / i,
        )
    result.note(
        "cpu-bound events consistent across phases; memory-bound diverge"
    )
    return result


def figure_02_model_hparams(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 2: ResNet depth vs training runtime/energy (a) and inference
    throughput/energy (b)."""
    result = ExperimentResult(
        experiment_id="fig02",
        title="Model hyperparameters (ResNet layers): training + inference",
        columns=["layers", "train_runtime_m", "train_energy_kj",
                 "inference_throughput_sps", "inference_energy_j"],
    )
    emulator = Emulator()
    for layers in (18, 34, 50):
        workload, train_set, eval_set, model, flops = _ic_architecture(
            ctx, layers
        )
        params = model.parameter_count()
        epochs = 4 if ctx.fast else 16
        samples = len(train_set) * epochs
        total_flops = flops * samples * (1 + BACKWARD_FLOPS_FACTOR)
        training = emulator.measure_training(
            train_total_flops=total_flops,
            forward_flops_per_sample=flops,
            parameter_count=params,
            samples_seen=samples,
            batch_size=256,
            gpus=1,
        )
        inference = emulator.measure_inference(
            flops, params, batch_size=1, device=ctx.device, cores=2
        )
        result.add_row(
            layers=layers,
            train_runtime_m=training.runtime_minutes,
            train_energy_kj=training.energy_kj,
            inference_throughput_sps=inference.throughput_sps,
            inference_energy_j=inference.energy_per_sample_j,
        )
    result.note("throughput inversely proportional to depth, energy "
                "proportional (paper §2.3.1)")
    return result


def figure_03_batch_sizes(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 3: training batch size (a: runtime/energy to target accuracy)
    and inference batch size (b: throughput/energy with saturation)."""
    result = ExperimentResult(
        experiment_id="fig03",
        title="Training batch (to target accuracy) and inference batch",
        columns=["phase", "batch", "runtime_m", "energy_kj",
                 "throughput_sps", "energy_per_img_j", "epochs"],
    )
    emulator = Emulator()
    workload, train_set, eval_set, _, flops = _ic_architecture(ctx)
    family = workload.family
    target = 0.8
    max_epochs = 12 if ctx.fast else 48
    for batch in (256, 512, 1024):
        real_batch, lr = workload.effective_training(batch)
        model = family.instantiate(
            train_set.sample_shape, train_set.num_classes,
            seed=derive_seed(ctx.seed, "fig3", batch),
        )
        loss = family.make_loss(train_set.num_classes)
        epochs_used = 0
        accuracy = 0.0
        total_samples = 0
        # Train in 4-epoch slices until the target accuracy (paper trains
        # each configuration until >= 80 %).
        while epochs_used < max_epochs and accuracy < target:
            outcome = train_model(
                model, loss, train_set, eval_set,
                epochs=4, batch_size=real_batch, lr=lr,
                seed=derive_seed(ctx.seed, "fig3", batch, epochs_used),
            )
            accuracy = outcome.accuracy
            epochs_used += 4
            total_samples += outcome.samples_seen
        per_sample = flops
        training = emulator.measure_training(
            train_total_flops=per_sample * total_samples
            * (1 + BACKWARD_FLOPS_FACTOR),
            forward_flops_per_sample=per_sample,
            parameter_count=model.parameter_count(),
            samples_seen=total_samples,
            batch_size=batch,
            gpus=1,
        )
        result.add_row(
            phase="train",
            batch=batch,
            runtime_m=training.runtime_minutes,
            energy_kj=training.energy_kj,
            throughput_sps="",
            energy_per_img_j="",
            epochs=epochs_used,
        )
    params = 12842
    for batch in (1, 10, 100):
        inference = emulator.measure_inference(
            flops, params, batch_size=batch, device=ctx.device, cores=4
        )
        result.add_row(
            phase="inference",
            batch=batch,
            runtime_m="",
            energy_kj="",
            throughput_sps=inference.throughput_sps,
            energy_per_img_j=inference.energy_per_sample_j,
            epochs="",
        )
    result.note("inference throughput rises with batch then saturates; "
                "too-large batches decay (paper §2.3.3)")
    return result


def figure_04_gpus(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 4: number of training GPUs x batch {32, 1024}."""
    result = ExperimentResult(
        experiment_id="fig04",
        title="Training system parameters: GPUs x batch size",
        columns=["batch", "gpus", "runtime_m", "energy_kj",
                 "vs_1gpu_runtime_pct"],
    )
    emulator = Emulator()
    _, train_set, _, model, flops = _ic_architecture(ctx)
    epochs = 4 if ctx.fast else 16
    samples = len(train_set) * epochs
    total = flops * samples * (1 + BACKWARD_FLOPS_FACTOR)
    for batch in (32, 1024):
        base = None
        for gpus in (1, 4, 8):
            training = emulator.measure_training(
                train_total_flops=total,
                forward_flops_per_sample=flops,
                parameter_count=model.parameter_count(),
                samples_seen=samples,
                batch_size=batch,
                gpus=gpus,
            )
            base = base or training.runtime_s
            result.add_row(
                batch=batch,
                gpus=gpus,
                runtime_m=training.runtime_minutes,
                energy_kj=training.energy_kj,
                vs_1gpu_runtime_pct=(training.runtime_s / base - 1) * 100,
            )
    result.note("small batches degrade with more GPUs (up to ~120 %); "
                "large batches speed up sub-linearly while energy grows")
    return result


def figure_05_cpu_cores(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 5: inference CPU cores x batch {1, 10} on the edge device."""
    result = ExperimentResult(
        experiment_id="fig05",
        title="Inference system parameters: CPU cores x batch size",
        columns=["batch", "cores", "throughput_sps", "energy_per_img_j"],
    )
    emulator = Emulator()
    _, _, _, model, flops = _ic_architecture(ctx)
    params = model.parameter_count()
    for batch in (1, 10):
        for cores in (1, 2, 4):
            inference = emulator.measure_inference(
                flops, params, batch_size=batch, device=ctx.device,
                cores=cores,
            )
            result.add_row(
                batch=batch,
                cores=cores,
                throughput_sps=inference.throughput_sps,
                energy_per_img_j=inference.energy_per_sample_j,
            )
    result.note("single-image: cores do not raise throughput but raise "
                "energy; multi-image: throughput saturates beyond 2 cores")
    return result
