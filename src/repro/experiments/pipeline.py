"""Pipelining and search-flow experiments: Figures 6 and 10."""

from __future__ import annotations

from ..rng import derive_seed
from ..search import build_scheduler, build_searcher, TrialReport
from ..sim import INFERENCE_LANE, MODEL_LANE, PipelinedExecutor
from ..space import Float, ParameterSpace
from .runner import ExperimentContext, ExperimentResult


def figure_06_pipeline(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 6: model/inference server overlap for 3x3 parameter values.

    Three model-parameter trials, each triggering an inference-tuning job
    (three inference parameter values each); the inference lane pipelines
    the jobs while the model lane keeps training.
    """
    result = ExperimentResult(
        experiment_id="fig06",
        title="Pipelined model/inference tuning servers (3 values each)",
        columns=["lane", "label", "start_s", "end_s", "duration_s"],
    )
    executor = PipelinedExecutor()
    trial_duration = 100.0
    inference_duration = 3 * 12.0  # three inference values, 12 s each
    for index in range(3):
        executor.start_inference_job(f"arch-{index}", inference_duration)
        executor.run_training_trial(f"model-{index}", trial_duration)
        executor.await_inference(f"arch-{index}")
    for lane in (MODEL_LANE, INFERENCE_LANE):
        for segment in executor.lane_segments(lane):
            result.add_row(
                lane=segment.lane,
                label=segment.label,
                start_s=segment.start,
                end_s=segment.end,
                duration_s=segment.duration,
            )
    result.note(
        f"model lane ends at {executor.model_time:.0f}s; total stall "
        f"{executor.stall_time():.0f}s (inference hidden inside trials)"
    )
    return result


def figure_10_search_flow(ctx: ExperimentContext) -> ExperimentResult:
    """Fig 10: trial placement of grid vs random vs BOHB on a 2-D space.

    The quality signal is a quadratic bowl; BOHB's trials should
    concentrate near the optimum while grid/random spread uniformly.
    """
    result = ExperimentResult(
        experiment_id="fig10",
        title="Trial flow: grid vs random vs BOHB on a 2-D landscape",
        columns=["algorithm", "trial", "x", "y", "score"],
    )
    space = ParameterSpace([Float("x", 0.0, 1.0), Float("y", 0.0, 1.0)])
    optimum = (0.7, 0.3)

    def score_of(configuration) -> float:
        return (
            (configuration["x"] - optimum[0]) ** 2
            + (configuration["y"] - optimum[1]) ** 2
        )

    for name in ("grid", "random", "bohb"):
        kwargs = {"resolution": 3} if name == "grid" else {}
        scheduler = build_scheduler(
            name,
            space,
            seed=derive_seed(ctx.seed, "fig10", name),
            max_fidelity=4,
            num_trials=9,
            **kwargs,
        )
        issued = 0
        while issued < 9:
            trial = scheduler.next_trial()
            if trial is None:
                break
            value = score_of(trial.configuration)
            result.add_row(
                algorithm=name,
                trial=issued + 1,
                x=trial.configuration["x"],
                y=trial.configuration["y"],
                score=value,
            )
            scheduler.report(TrialReport(trial=trial, score=value))
            issued += 1
    result.note("BOHB concentrates later trials near the optimum (0.7, 0.3)")
    return result
