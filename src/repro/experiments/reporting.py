"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import List

from .runner import ExperimentResult


def _format(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Aligned text table in the style of the paper's reported rows."""
    header = list(result.columns)
    body: List[List[str]] = [
        [_format(row.get(col, "")) for col in header] for row in result.rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in body)) if body else len(col)
        for i, col in enumerate(header)
    ]
    lines = [f"== {result.experiment_id}: {result.title} =="]
    lines.append(
        "  ".join(col.ljust(width) for col, width in zip(header, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for line in body:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_bars(
    result: ExperimentResult,
    label_column: str,
    value_column: str,
    width: int = 40,
) -> str:
    """Horizontal ASCII bar chart of one numeric column.

    The terminal-friendly equivalent of the paper's bar figures, e.g.::

        render_bars(fig14_result, "system", "tuning_runtime_m")
    """
    rows = [
        (str(row.get(label_column, "")), row.get(value_column))
        for row in result.rows
        if isinstance(row.get(value_column), (int, float))
    ]
    if not rows:
        raise ValueError(
            f"no numeric values in column {value_column!r}"
        )
    peak = max(abs(value) for _, value in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = [f"== {result.experiment_id}: {value_column} =="]
    for label, value in rows:
        bar = "#" * max(1, int(round(abs(value) / peak * width)))
        lines.append(
            f"{label.ljust(label_width)}  {bar} {_format(value)}"
        )
    return "\n".join(lines)


def save_table(result: ExperimentResult, directory) -> str:
    """Write the rendered table under ``directory``; returns the path."""
    import os

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.experiment_id}.txt")
    with open(path, "w") as handle:
        handle.write(render_table(result) + "\n")
    return path
