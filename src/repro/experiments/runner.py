"""Shared experiment context and result containers.

Every figure/table of the paper's evaluation has a function in this
package returning an :class:`ExperimentResult`; the ``benchmarks/`` tree
wraps them in pytest-benchmark targets and writes the rendered tables to
``benchmarks/results/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: Accuracy targets per workload used by the tuning-run experiments
#: (the paper tunes "to reach at least 80 %"; the harder synthetic
#: detection/NLP tasks get proportionally scaled targets).
ACCURACY_TARGETS = {"IC": 0.8, "SR": 0.7, "NLP": 0.6, "OD": 0.5}

#: Fast mode shrinks the datasets, which lowers the reachable accuracy;
#: targets scale down with it so the tuning dynamics stay comparable.
ACCURACY_TARGETS_FAST = {"IC": 0.65, "SR": 0.5, "NLP": 0.45, "OD": 0.3}


@dataclass(frozen=True)
class ExperimentContext:
    """Knobs shared by all experiments.

    ``fast=True`` shrinks datasets and trial counts so the whole harness
    runs in minutes; the defaults reproduce the reported numbers.
    """

    seed: int = 7
    samples: int = 600
    device: str = "armv7"
    fast: bool = False

    @property
    def run_samples(self) -> int:
        return 300 if self.fast else self.samples

    @property
    def comparison_samples(self) -> int:
        """Sample count for the system-comparison experiments (Fig 14/17).

        These comparisons are calibration-sensitive: shrinking the dataset
        changes which accuracy targets are reachable and flips outcomes,
        so they always run at full scale.
        """
        return max(500, self.samples)

    def target_for(self, workload_id: str) -> float:
        table = ACCURACY_TARGETS_FAST if self.fast else ACCURACY_TARGETS
        return table[workload_id]

    def comparison_target_for(self, workload_id: str) -> float:
        return ACCURACY_TARGETS[workload_id]


@dataclass
class ExperimentResult:
    """One reproduced table/figure: rows of named values plus metadata."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def note(self, text: str) -> None:
        self.notes.append(text)
