"""Tables 1 and 2 of the paper."""

from __future__ import annotations

from ..workloads import WORKLOADS
from .runner import ExperimentContext, ExperimentResult

#: Table 2's feature matrix.  The EdgeTune row is *derived from this
#: codebase* by :func:`edgetune_capabilities`; the related systems carry
#: the capabilities the paper reports for them.
RELATED_SYSTEMS = {
    "ChamNet": dict(cpu=True, gpu=True, hyper=False, system_params=False,
                    architecture=True, tuning=False, training=True,
                    inference=True, multi_sample=False),
    "DPP-Net": dict(cpu=True, gpu=True, hyper=False, system_params=False,
                    architecture=True, tuning=False, training=True,
                    inference=True, multi_sample=False),
    "FBNet": dict(cpu=True, gpu=True, hyper=False, system_params=False,
                  architecture=True, tuning=False, training=True,
                  inference=True, multi_sample=False),
    "HyperPower": dict(cpu=False, gpu=True, hyper=True, system_params=False,
                       architecture=True, tuning=True, training=True,
                       inference=False, multi_sample=False),
    "MnasNet": dict(cpu=True, gpu=False, hyper=False, system_params=False,
                    architecture=True, tuning=False, training=True,
                    inference=True, multi_sample=False),
    "NeuralPower": dict(cpu=False, gpu=True, hyper=False, system_params=False,
                        architecture=True, tuning=True, training=True,
                        inference=False, multi_sample=False),
    "ProxylessNAS": dict(cpu=True, gpu=True, hyper=False, system_params=False,
                         architecture=True, tuning=False, training=True,
                         inference=True, multi_sample=False),
}

FEATURES = ("cpu", "gpu", "hyper", "system_params", "architecture", "tuning",
            "training", "inference", "multi_sample")


def edgetune_capabilities() -> dict:
    """Derive EdgeTune's Table 2 row from what the library implements."""
    from .. import EdgeTune  # noqa: F401 - presence = tuning system exists
    from ..batching import MultiStreamScenario, ServerScenario  # noqa: F401
    from ..hardware import get_device
    from ..objectives import InferenceObjective, RatioObjective
    from ..space import PARAMETER_KINDS

    server = get_device("titan-server")
    return dict(
        cpu=True,  # the inference server is CPU-only (§3.2)
        gpu=server.gpus > 0,
        hyper="training" in PARAMETER_KINDS,
        system_params="system" in PARAMETER_KINDS,
        architecture="model" in PARAMETER_KINDS,
        tuning=RatioObjective is not None,
        training=True,
        inference=InferenceObjective is not None,
        multi_sample=ServerScenario is not None
        and MultiStreamScenario is not None,
    )


def table_01_workloads(ctx: ExperimentContext) -> ExperimentResult:
    """Table 1: the four evaluation workloads with dataset metadata."""
    result = ExperimentResult(
        experiment_id="table1",
        title="Workloads used for experiments",
        columns=["type", "id", "model", "dataset", "datasize",
                 "train_files", "test_files"],
    )
    for workload_id, workload in WORKLOADS.items():
        result.add_row(
            type=workload.table1.type_label,
            id=workload_id,
            model=workload.model_name,
            dataset=workload.dataset_name,
            datasize=workload.table1.datasize,
            train_files=workload.table1.train_files,
            test_files=workload.table1.test_files,
        )
    result.note("synthetic stand-ins preserve modality/label structure; "
                "file counts are the real datasets' (see DESIGN.md §2)")
    return result


def table_02_features(ctx: ExperimentContext) -> ExperimentResult:
    """Table 2: feature matrix of related systems, with the EdgeTune row
    derived from this implementation's actual capabilities."""
    result = ExperimentResult(
        experiment_id="table2",
        title="State-of-the-art systems: parameter/objective support",
        columns=["system"] + list(FEATURES),
    )
    for name, capabilities in RELATED_SYSTEMS.items():
        result.add_row(system=name, **{
            feature: ("yes" if capabilities[feature] else "no")
            for feature in FEATURES
        })
    derived = edgetune_capabilities()
    result.add_row(system="EdgeTune (this repo)", **{
        feature: ("yes" if derived[feature] else "no")
        for feature in FEATURES
    })
    result.note("EdgeTune is the only row supporting hyper + system "
                "parameters, tuning/training/inference objectives and "
                "multi-sample inference simultaneously")
    return result
