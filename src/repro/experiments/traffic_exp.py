"""Serving-load experiment: tuning under replayed traffic vs steady state.

The claim behind :mod:`repro.traffic`: a deployment configuration picked
by the steady-state inference objective (one batched call in isolation)
is not the configuration that best survives *load* — queueing turns a
latency-optimal small batch into an unbounded backlog during a diurnal
peak or a flash crowd.  This experiment tunes the same architecture both
ways on the same device and seed, then replays the same trace through
both winners: the load-tuned configuration must meet the SLO strictly
better on every family.
"""

from __future__ import annotations

from ..core import InferenceTuningServer
from ..hardware import Emulator, get_device
from ..objectives import InferenceObjective, TrafficSLOObjective
from ..storage import TrialDatabase
from ..traffic import SLOSpec, build_trace, replay_trace
from ..workloads import get_workload
from .runner import ExperimentContext, ExperimentResult

#: The served architecture: measured FLOPs/parameters of the scaled-down
#: numpy models (the emulator maps these onto realistic magnitudes).
ARCH_FLOPS = 200.0
ARCH_PARAMS = 12_000

#: Scenarios replayed per trace family; short enough for the fast
#: harness, long enough that peaks dominate the percentiles.
SCENARIOS = {
    "diurnal": "diurnal:rate=35,peak=6,duration={duration},seed={seed}",
    "flash": "flash:rate=30,mult=10,duration={duration},seed={seed}",
}


def traffic_slo_comparison(ctx: ExperimentContext) -> ExperimentResult:
    """Load-tuned vs steady-state-tuned deployments under replayed load."""
    result = ExperimentResult(
        experiment_id="traffic_slo",
        title="SLO-aware tuning under serving load vs steady state",
        columns=["family", "tuning", "batch", "cores", "p99_ms",
                 "miss_pct", "j_per_req", "slo_score"],
    )
    slo = SLOSpec(deadline_s=0.5)
    duration = 20 if ctx.fast else 40
    emulator = Emulator()
    spec = get_device(ctx.device)
    space = get_workload("IC").inference_space(ctx.device)

    steady_pick = InferenceTuningServer(
        device=ctx.device,
        objective=InferenceObjective("energy"),
        emulator=emulator,
        database=TrialDatabase(),
        seed=ctx.seed,
    ).tune("traffic-arch", ARCH_FLOPS, ARCH_PARAMS, space)[0]

    for family, template in SCENARIOS.items():
        scenario = template.format(duration=duration, seed=ctx.seed)
        objective = TrafficSLOObjective(
            "deadline", scenario=scenario, slo=slo
        )
        load_pick = InferenceTuningServer(
            device=ctx.device,
            objective=objective,
            emulator=emulator,
            database=TrialDatabase(),
            seed=ctx.seed,
            traffic=scenario,
            slo=slo,
        ).tune("traffic-arch", ARCH_FLOPS, ARCH_PARAMS, space)[0]

        trace = build_trace(scenario)
        for tuning, pick in (("steady", steady_pick), ("load", load_pick)):
            configuration = pick.configuration
            cores = int(configuration.get("cores", 1))
            frequency = configuration.get("frequency_ghz")

            def latency_fn(size: int) -> float:
                return emulator.measure_inference(
                    forward_flops_per_sample=ARCH_FLOPS,
                    parameter_count=ARCH_PARAMS,
                    batch_size=size,
                    device=spec,
                    cores=cores,
                    frequency_ghz=frequency,
                ).batch_latency_s

            stats = replay_trace(
                trace,
                latency_fn,
                max_batch=int(configuration["inference_batch_size"]),
                slo=slo,
                idle_power_w=spec.idle_power_w,
            )
            result.add_row(
                family=family,
                tuning=tuning,
                batch=int(configuration["inference_batch_size"]),
                cores=cores,
                p99_ms=stats.p99_latency_s * 1000.0,
                miss_pct=stats.deadline_miss_rate * 100.0,
                j_per_req=stats.energy_per_request_j,
                slo_score=objective.score_stats(stats),
            )
    result.note(
        f"deadline SLO {slo.deadline_s}s; both tunings share device "
        f"{ctx.device}, seed {ctx.seed} and the steady-state pick"
    )
    return result
