"""Deterministic fault injection for the tuning service (facade).

This module is the *only* thing the hot paths import, and it is kept
deliberately tiny: when fault injection is disabled (the default) every
hook below is a single ``is None`` check — no injector code is even
imported.  The real machinery lives in :mod:`repro.faults.plan` and is
pulled in lazily the first time a plan is activated, so tests can assert
that ``repro.faults.plan`` never lands in ``sys.modules`` on a clean run.

Activation:

* set the ``REPRO_FAULTS`` environment variable (inherited by worker
  processes spawned from the pool), or
* call :func:`configure` in-process (which also exports the spec to the
  environment by default so child processes see the same schedule).

Spec strings look like::

    seed=42;worker.crash=0.5;worker.hang=1.0:1:2.5;storage.io=0.05

Each site entry is ``site=probability[:until_attempt[:param]][@key]``:
the fault fires when a deterministic per-``(seed, site, key)`` draw lands
below ``probability`` *and* the caller's attempt number is at most
``until_attempt`` (default 1 — faults are retryable by construction
unless the spec says otherwise).  ``param`` carries site-specific
magnitude (hang duration in seconds); ``@key`` restricts the rule to one
injection key (e.g. one trial id).  Same spec, same call sequence →
bit-identical fault schedule, in every process.

Injection sites wired into the codebase:

========================  ====================================================
``worker.crash``          hard-kills the worker process mid-trial
``worker.fail``           raises inside trial execution (exercises retries)
``worker.hang``           sleeps ``param`` seconds inside the trial deadline
``trainer.nan``           corrupts one training loss to NaN (numeric guard)
``storage.io``            raises a transient sqlite "disk I/O error"
``advisor.drop``          drops the advisor client's TCP connection
``advisor.garbage``       corrupts one advisor response frame
``fleet.dead_host``       hard-kills a remote fleet host process mid-lease
``fleet.partition``       severs a fleet host's dispatch connection
``fleet.stale_lease``     suppresses one job's remote lease extensions
``fleet.hub_crash``       hard-kills the fleet *hub* mid-frame (keyed on
                          ``<epoch>:<job>`` so a restarted hub, running
                          under a new incarnation epoch, is not re-killed)
``fleet.reconnect_storm`` forces a fleet client onto a fresh TCP
                          connection for every request (reconnect churn)
``artifact.corrupt_blob`` flips bits in an artifact payload on read
                          (exercises checksum verification + quarantine)
``traffic.request_storm`` multiplies trace arrivals ``param``-fold
                          mid-replay (decision-only; the replay engine
                          sheds gracefully and reports)
========================  ====================================================
"""

from __future__ import annotations

import os
from typing import Any, Optional

#: Environment variable carrying the fault spec into worker processes.
ENV_VAR = "REPRO_FAULTS"

#: The active plan, or ``None`` when injection is off (the default).
_plan: Optional[Any] = None


def configure(spec: Any = None, propagate: bool = True) -> Optional[Any]:
    """Activate (or, with ``spec=None``, deactivate) fault injection.

    ``spec`` may be a spec string, a :class:`~repro.faults.plan.FaultPlan`,
    or ``None``.  With ``propagate=True`` the canonical spec string is
    exported to :data:`ENV_VAR` so worker processes spawned afterwards
    inherit the same schedule.
    """
    global _plan
    if spec is None:
        _plan = None
        if propagate:
            os.environ.pop(ENV_VAR, None)
        return None
    from .plan import FaultPlan

    plan = spec if isinstance(spec, FaultPlan) else FaultPlan.parse(spec)
    _plan = plan
    if propagate:
        os.environ[ENV_VAR] = plan.to_spec()
    return plan


def reset() -> None:
    """Deactivate injection and clear the environment spec."""
    configure(None)


def enabled() -> bool:
    return _plan is not None


def get_plan() -> Optional[Any]:
    return _plan


def fault_point(site: str, key: Any = None, attempt: int = 1) -> None:
    """Maybe inject a fault at ``site`` (no-op unless a plan is active).

    Depending on the site this may raise, sleep, or kill the process —
    callers place the hook exactly where the equivalent real-world fault
    would strike.
    """
    if _plan is None:
        return
    _plan.fire(site, key=key, attempt=attempt)


def should(site: str, key: Any = None, attempt: int = 1) -> bool:
    """Decision-only hook for callers that act on the fault themselves
    (the advisor client drops its own connection, for instance)."""
    if _plan is None:
        return False
    return _plan.should(site, key=key, attempt=attempt)


def corrupt_nan(
    site: str, value: float, key: Any = None, attempt: int = 1
) -> float:
    """Return NaN instead of ``value`` when the site's rule fires."""
    if _plan is None:
        return value
    return _plan.corrupt_nan(site, value, key=key, attempt=attempt)


def _bootstrap() -> None:
    """Activate from the environment (worker processes land here)."""
    spec = os.environ.get(ENV_VAR)
    if spec:
        configure(spec, propagate=False)


_bootstrap()
