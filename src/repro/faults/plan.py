"""Fault plans: the seed-driven schedule behind :mod:`repro.faults`.

Imported lazily by the facade — never on a hot path with injection off.

Determinism contract: whether a rule fires for a given ``(site, key,
attempt)`` is a pure function of the plan seed, so the same spec produces
the same fault schedule in every process, every run.  Sites called
without an explicit key fall back to a per-site invocation counter, which
makes their schedule deterministic per call *sequence* (sufficient for
statement-level sites like ``storage.io``).
"""

from __future__ import annotations

import hashlib
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import InjectedFault

#: Sites understood by :meth:`FaultPlan.fire`; decision-only sites
#: (``advisor.*``, ``trainer.nan``) are queried via ``should``/
#: ``corrupt_nan`` and need no action here.
KNOWN_SITES = (
    "worker.crash",
    "worker.fail",
    "worker.hang",
    "trainer.nan",
    "storage.io",
    "advisor.drop",
    "advisor.garbage",
    "fleet.dead_host",
    "fleet.partition",
    "fleet.stale_lease",
    "fleet.hub_crash",
    "fleet.reconnect_storm",
    "artifact.corrupt_blob",
    "traffic.request_storm",
)

#: Exit code of an injected worker crash (mirrors SIGKILL's 128+9).
CRASH_EXIT_CODE = 137

#: Default hang duration when a ``worker.hang`` rule carries no param.
DEFAULT_HANG_S = 30.0


@dataclass(frozen=True)
class FaultRule:
    """One site's injection rule."""

    site: str
    probability: float
    #: Fire only while the caller's attempt number is <= this; the
    #: default 1 makes every fault retryable.  Large values (99) model
    #: poison configs that fail deterministically on every attempt.
    until_attempt: int = 1
    #: Site-specific magnitude (hang seconds).
    param: Optional[float] = None
    #: Restrict the rule to a single injection key (e.g. one trial id).
    only_key: Optional[str] = None

    def to_spec(self) -> str:
        value = f"{self.site}={self.probability:g}"
        if self.param is not None:
            value += f":{self.until_attempt}:{self.param:g}"
        elif self.until_attempt != 1:
            value += f":{self.until_attempt}"
        if self.only_key is not None:
            value += f"@{self.only_key}"
        return value


def _uniform(seed: int, site: str, key: Any) -> float:
    """Deterministic draw in [0, 1) — stable across processes and runs
    (unlike ``hash()``, which is salted per interpreter)."""
    token = f"{seed}|{site}|{key}".encode("utf-8")
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class FaultPlan:
    """A parsed, activated fault schedule."""

    def __init__(self, seed: int = 0,
                 rules: Optional[Dict[str, FaultRule]] = None):
        self.seed = int(seed)
        self.rules: Dict[str, FaultRule] = dict(rules or {})
        for site in self.rules:
            if site not in KNOWN_SITES:
                raise InjectedFault(
                    f"unknown fault site {site!r}; expected one of "
                    f"{KNOWN_SITES}"
                )
        #: Per-site invocation counters for key-less call sites.
        self._counters: Dict[str, int] = {}
        #: Per-site count of faults actually injected (telemetry).
        self.fired: Dict[str, int] = {}

    # -- spec round-trip -----------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``seed=N;site=prob[:until[:param]][@key];...``."""
        seed = 0
        rules: Dict[str, FaultRule] = {}
        for entry in str(spec).split(";"):
            entry = entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise InjectedFault(f"malformed fault entry {entry!r}")
            site, _, value = entry.partition("=")
            site = site.strip()
            value = value.strip()
            if site == "seed":
                seed = int(value)
                continue
            only_key: Optional[str] = None
            if "@" in value:
                value, _, only_key = value.partition("@")
            parts = value.split(":")
            try:
                probability = float(parts[0])
                until = int(parts[1]) if len(parts) > 1 else 1
                param = float(parts[2]) if len(parts) > 2 else None
            except (ValueError, IndexError) as error:
                raise InjectedFault(
                    f"malformed fault entry {entry!r}: {error}"
                )
            if not 0.0 <= probability <= 1.0:
                raise InjectedFault(
                    f"fault probability must be in [0, 1], got {probability}"
                )
            rules[site] = FaultRule(
                site=site,
                probability=probability,
                until_attempt=until,
                param=param,
                only_key=only_key,
            )
        return cls(seed=seed, rules=rules)

    def to_spec(self) -> str:
        """Canonical spec string (environment propagation round-trip)."""
        parts = [f"seed={self.seed}"]
        parts.extend(
            rule.to_spec() for _, rule in sorted(self.rules.items())
        )
        return ";".join(parts)

    # -- decisions ----------------------------------------------------------
    def should(self, site: str, key: Any = None, attempt: int = 1) -> bool:
        """Pure decision: does the rule for ``site`` fire here?"""
        rule = self.rules.get(site)
        if rule is None:
            return False
        if attempt > rule.until_attempt:
            return False
        if key is None:
            self._counters[site] = self._counters.get(site, 0) + 1
            key = self._counters[site]
        if rule.only_key is not None and str(key) != rule.only_key:
            return False
        if _uniform(self.seed, site, key) >= rule.probability:
            return False
        self.fired[site] = self.fired.get(site, 0) + 1
        return True

    def corrupt_nan(self, site: str, value: float, key: Any = None,
                    attempt: int = 1) -> float:
        return float("nan") if self.should(site, key, attempt) else value

    # -- actions ------------------------------------------------------------
    def fire(self, site: str, key: Any = None, attempt: int = 1) -> None:
        """Decide and *act*: crash, hang, or raise, depending on the site."""
        if not self.should(site, key, attempt):
            return
        rule = self.rules[site]
        if site in ("worker.crash", "fleet.dead_host", "fleet.hub_crash"):
            # A real crash: no cleanup, no exception handlers — the
            # heartbeat dies with us and the lease protocol takes over.
            # ``fleet.dead_host`` is the same death at host granularity:
            # the whole remote-host process disappears mid-lease.
            # ``fleet.hub_crash`` kills the *coordinator hub* itself;
            # keying its call sites on the hub's incarnation epoch makes
            # the crash fire exactly once — the restarted hub draws on a
            # new epoch and sails past the same frame.
            os._exit(CRASH_EXIT_CODE)
        if site == "worker.hang":
            time.sleep(rule.param if rule.param is not None
                       else DEFAULT_HANG_S)
            return
        if site == "storage.io":
            # The exact exception sqlite raises for a failing disk, so
            # the containment path is identical to a real I/O error.
            raise sqlite3.OperationalError("disk I/O error (injected)")
        raise InjectedFault(
            f"injected fault at {site} (key={key!r}, attempt={attempt})"
        )

    def fired_total(self) -> int:
        return sum(self.fired.values())
