"""repro.fleet — the multi-host tuning fleet.

Scales one tuning session across machines while keeping the single-host
determinism contract: remote hosts are separate processes with isolated
databases, jobs are dispatched over a line-JSON TCP protocol (the
advisor server's transport discipline), and the coordinator merges
results in strict wave order — so a fleet run is bit-identical to the
same spec run on one machine.

Layout:

* :mod:`repro.fleet.registry` — machine registry (capability tags,
  liveness heartbeats, fleet counters);
* :mod:`repro.fleet.router` — shard placement and session affinity;
* :mod:`repro.fleet.wire` — the dispatch frame format;
* :mod:`repro.fleet.server` — the coordinator-side dispatch server,
  janitor, and remote session driver;
* :mod:`repro.fleet.client` — the host-side dispatch client
  (reconnect-resync retries);
* :mod:`repro.fleet.host` — the remote worker host process and
  :class:`~repro.fleet.host.HostPool`.

This package root deliberately imports only the storage-facing pieces —
``server``/``client``/``host`` are imported as explicit submodules by
their users, keeping :mod:`repro.service.worker`'s registry import free
of cycles.
"""

from .registry import (  # noqa: F401
    Machine,
    MachineRegistry,
    local_capabilities,
)
from .router import ShardRouter  # noqa: F401
