"""Fleet command-line interface.

Operate a multi-host tuning fleet::

    # Coordinator machine: dispatch server + session driver
    python -m repro fleet serve --db tuning.sqlite --port 8378

    # Each worker machine: isolated local DB, remote dispatch
    python -m repro fleet workers --connect coordinator:8378 \
        --db /tmp/machine-a.sqlite --machine-id machine-a

    python -m repro fleet register --connect coordinator:8378 \
        --machine-id probe            # join without serving (inspection)
    python -m repro fleet status --connect coordinator:8378
    python -m repro fleet drain --connect coordinator:8378

``serve`` runs the dispatch server, the dead-host janitor, and the
remote session coordinator in one process; it exits once drained (or,
with ``--drain``, once no queued session remains).  ``workers`` is the
whole worker-machine side: it registers, leases jobs from its shard,
executes them against its own local database, and streams results back.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import warnings
from typing import Optional, Tuple

from ..errors import FleetError
from ..service.queue import DEFAULT_LEASE_TTL_S
from ..storage import TrialDatabase
from .client import DEFAULT_PORT, FleetClient
from .host import IDLE_POLL_S, RemoteHost
from .registry import DEFAULT_MACHINE_TTL_S
from .router import DEFAULT_SHARDS
from .server import FleetServer


def _endpoint(raw: str) -> Tuple[str, int]:
    """Parse ``host[:port]``."""
    host, _, port = raw.partition(":")
    return host or "127.0.0.1", int(port) if port else DEFAULT_PORT


def _cmd_serve(args) -> int:
    warnings.filterwarnings("ignore", category=RuntimeWarning)
    if args.faults:
        from .. import faults

        faults.configure(args.faults)
    with TrialDatabase(args.db) as database:
        server = FleetServer(
            database,
            host=args.host,
            port=args.port,
            num_shards=args.shards,
            lease_ttl_s=args.lease_ttl,
            machine_ttl_s=args.machine_ttl,
            rate_limit=args.rate_limit,
        )
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: server.initiate_drain())
        print(f"fleet coordinator listening on "
              f"{server.host}:{server.port} ({args.shards} shards, "
              f"epoch {server.epoch}, "
              f"{server.recovery['sessions_requeued']} session(s) "
              f"recovered)")
        sys.stdout.flush()
        server.start_janitor()
        serve_thread = threading.Thread(
            target=server.serve_until_drained, daemon=True
        )
        serve_thread.start()
        results = server.run_sessions(
            drain=args.drain, idle_timeout_s=args.idle_timeout
        )
        server.initiate_drain()
        serve_thread.join(timeout=10.0)
        for result in results:
            print(f"done: {result.system}:{result.workload_id} "
                  f"{len(result.trials)} trials, "
                  f"best accuracy {result.best_accuracy:.3f}")
        print("fleet stats: " + json.dumps(
            server.registry.stats(), sort_keys=True
        ))
    return 0


def _cmd_workers(args) -> int:
    warnings.filterwarnings("ignore", category=RuntimeWarning)
    if args.faults:
        from .. import faults

        faults.configure(args.faults)
    host, port = _endpoint(args.connect)
    machine = RemoteHost(
        args.machine_id,
        server_host=host,
        server_port=port,
        db_path=args.db,
        poll_interval_s=args.poll_interval,
    )
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    try:
        done = machine.run_forever(
            stop_event=stop, idle_timeout_s=args.idle_timeout
        )
    except FleetError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        machine.close()
    print(f"{args.machine_id}: {done} jobs done, "
          f"{machine.jobs_failed} failed, "
          f"{machine.federation_hits} federation hits, "
          f"{machine.federation_uploads} uploads")
    return 0


def _client_command(args, op: str, **params) -> int:
    host, port = _endpoint(args.connect)
    try:
        with FleetClient(host, port) as client:
            response = client.request(op, **params)
    except FleetError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(json.dumps(response, sort_keys=True, indent=2))
    return 0 if response.get("ok") else 1


def _cmd_register(args) -> int:
    from .registry import local_capabilities

    return _client_command(
        args, "register",
        machine_id=args.machine_id,
        capabilities=local_capabilities(),
    )


def _cmd_status(args) -> int:
    return _client_command(args, "status")


def _cmd_drain(args) -> int:
    return _client_command(args, "drain")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="EdgeTune multi-host tuning fleet",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    serve = subparsers.add_parser(
        "serve", help="run the fleet coordinator (dispatch + sessions)"
    )
    serve.add_argument("--db", required=True, help="central sqlite path")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                       help="number of per-shard job queues")
    serve.add_argument("--lease-ttl", type=float,
                       default=DEFAULT_LEASE_TTL_S,
                       help="job lease duration granted to machines "
                            "(also honoured from $REPRO_LEASE_TTL_S)")
    serve.add_argument("--machine-ttl", type=float,
                       default=DEFAULT_MACHINE_TTL_S,
                       help="heartbeat silence before a machine is "
                            "declared dead")
    serve.add_argument("--rate-limit", type=float, default=None,
                       help="per-client requests/second (default: off)")
    serve.add_argument("--drain", action="store_true",
                       help="exit once no queued session remains")
    serve.add_argument("--idle-timeout", type=float, default=None,
                       help="exit after this many idle seconds")
    serve.add_argument("--faults", default=None, metavar="SPEC",
                       help="fault-injection spec (chaos testing; also "
                            "honoured from $REPRO_FAULTS)")
    serve.set_defaults(func=_cmd_serve)

    workers = subparsers.add_parser(
        "workers", help="serve the fleet from this machine"
    )
    workers.add_argument("--connect", required=True, metavar="HOST[:PORT]",
                         help="fleet coordinator endpoint")
    workers.add_argument("--db", required=True,
                         help="this machine's own (isolated) sqlite path")
    workers.add_argument("--machine-id", required=True,
                         help="stable machine identity (reconnects keep "
                              "their shard)")
    workers.add_argument("--idle-timeout", type=float, default=None,
                         help="exit after this many idle seconds")
    workers.add_argument("--poll-interval", type=float,
                         default=IDLE_POLL_S)
    workers.add_argument("--faults", default=None, metavar="SPEC",
                         help="fault-injection spec (chaos testing)")
    workers.set_defaults(func=_cmd_workers)

    register = subparsers.add_parser(
        "register", help="register this machine without serving"
    )
    register.add_argument("--connect", required=True,
                          metavar="HOST[:PORT]")
    register.add_argument("--machine-id", required=True)
    register.set_defaults(func=_cmd_register)

    status = subparsers.add_parser(
        "status", help="fleet overview from a running coordinator"
    )
    status.add_argument("--connect", required=True, metavar="HOST[:PORT]")
    status.set_defaults(func=_cmd_status)

    drain = subparsers.add_parser(
        "drain", help="ask the coordinator to stop handing out work"
    )
    drain.add_argument("--connect", required=True, metavar="HOST[:PORT]")
    drain.set_defaults(func=_cmd_drain)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
