"""Line-JSON client for the fleet dispatch server.

One persistent connection per host process.  The resilience discipline is
the advisor client's, verbatim: transport errors and malformed frames are
retried a bounded number of times with jittered exponential backoff,
reconnecting each time — a fresh connection is the only reliable way to
resynchronise a line protocol after garbage.

Two chaos sites live here.  ``fleet.partition`` severs the socket
mid-request — exactly what a dropped switch port or a mid-request server
restart looks like from the host's side — so the reconnect-resync retry
path is exercised for real.  ``fleet.reconnect_storm`` is the gentler
cousin: it forces the client onto a *fresh* connection before each
request (clean close + reconnect, no bytes lost), modelling flappy
NAT/keepalive churn and proving the protocol carries no per-connection
state worth losing.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Dict, Optional

from ..errors import FleetError
from ..faults import should
from .wire import MAX_FRAME_BYTES, decode_frame

DEFAULT_PORT = 8378
DEFAULT_TIMEOUT_S = 10.0

#: Retries after the first attempt; 3 tries total by default.
DEFAULT_RETRIES = 2
DEFAULT_BACKOFF_S = 0.05

#: Ceiling on one backoff sleep — with the deep retry budgets hosts use
#: to ride out a hub restart, uncapped doubling would sleep for minutes.
MAX_BACKOFF_S = 2.0


class FleetClient:
    """Blocking dispatch client over one persistent TCP connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        retries: int = DEFAULT_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
    ):
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_s = float(backoff_s)
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._request_seq = 0

    # -- connection ----------------------------------------------------------
    def connect(self) -> "FleetClient":
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
            except OSError as error:
                raise FleetError(
                    f"cannot reach fleet server at {self.host}:{self.port}: "
                    f"{error}"
                )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._rfile = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._rfile is not None:
            self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "FleetClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- requests ------------------------------------------------------------
    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one frame, retrying transport faults with backoff.

        Raises :class:`FleetError` once the retry budget is spent.
        """
        payload = dict(params, op=op)
        last_error: Optional[FleetError] = None
        for attempt in range(1, self.retries + 2):
            try:
                response = self._request_once(payload, attempt)
            except FleetError as error:
                last_error = error
                # Reconnect-resync: after a transport error the stream
                # position is unknowable; a fresh connection is the only
                # safe retry.
                self.close()
                if attempt <= self.retries:
                    time.sleep(
                        min(MAX_BACKOFF_S,
                            self.backoff_s * (2.0 ** (attempt - 1)))
                        * random.uniform(0.5, 1.0)
                    )
                continue
            return response
        assert last_error is not None
        raise last_error

    def _request_once(
        self, payload: Dict[str, Any], attempt: int
    ) -> Dict[str, Any]:
        self._request_seq += 1
        seq = self._request_seq
        if self._sock is not None and should(
            "fleet.reconnect_storm", key=seq, attempt=attempt
        ):
            # Chaos: connection churn — drop the healthy connection
            # cleanly and dial again, as a flappy NAT would force.
            self.close()
        self.connect()
        assert self._sock is not None and self._rfile is not None
        if should("fleet.partition", key=seq, attempt=attempt):
            # Chaos: the network between host and coordinator goes away
            # mid-request; the host's side sees a dead socket.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        try:
            self._sock.sendall(
                (json.dumps(payload, sort_keys=True) + "\n").encode()
            )
            line = self._rfile.readline(MAX_FRAME_BYTES + 1)
        except OSError as error:
            raise FleetError(f"fleet connection failed: {error}")
        if not line:
            raise FleetError("fleet server closed the connection")
        return decode_frame(line)
