"""The remote worker host: a separate process (machine) serving the fleet.

A :class:`RemoteHost` is everything one fleet member runs: its own
*isolated* trial database and artifact store (nothing is shared with the
coordinator but the TCP connection), a dispatch loop leasing jobs from
its shard, and the artifact-federation shim that checks the
coordinator's cache before paying for a cold run.

Execution path per job::

    lease → [federation prefetch] → evaluate_trial → complete
              │                        │
              │                        └─ local ArtifactStore (isolated)
              └─ artifact_get from the hub on local miss

``evaluate_trial`` is pure given the task (all seeds travel inside it),
so a trial runs bit-identically on any machine — which is what makes the
fleet's results mergeable by the coordinator's wave-ordered integrator
without any cross-host coordination.

Chaos sites (all deterministic, via ``$REPRO_FAULTS``):

* ``fleet.dead_host`` — the whole host process dies mid-lease
  (``os._exit``), exercising dead-host detection and lease draining;
* ``fleet.partition`` — fires inside :class:`~repro.fleet.client
  .FleetClient`: the dispatch connection is severed and must
  reconnect-resync;
* ``fleet.stale_lease`` — this host silently stops extending one job's
  lease, exercising expiry and re-acquisition by someone else;
* ``fleet.reconnect_storm`` — fires inside the client: every request
  rides a fresh TCP connection (clean churn, no lost bytes).

Hub restarts heal automatically: every mutation frame carries the epoch
this host registered under, and a ``fenced`` rejection (the hub died and
came back with a new incarnation) triggers :meth:`RemoteHost.recover` —
re-register, ``resync`` the held leases under the new epoch, retry the
frame.  Leases the new hub no longer recognises are dropped on the
floor; the queue's retry owns those outcomes.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import threading
import time
from typing import Any, Dict, List, Optional

from ..artifacts import ArtifactStore, trial_key
from ..core.model_server import TrialTask, evaluate_trial
from ..errors import FleetError
from ..faults import fault_point, should
from ..storage import TrialDatabase
from .client import FleetClient
from .registry import MachineRegistry, local_capabilities

logger = logging.getLogger(__name__)

#: How long an idle host sleeps between lease polls, seconds.
IDLE_POLL_S = 0.05

#: Lease-extension period as a fraction of the granted TTL.
EXTEND_FRACTION = 0.25

#: Hosts retry deeper than the default client: with capped backoff this
#: rides out a several-second hub restart instead of shedding work.
HOST_RETRIES = 8
HOST_BACKOFF_S = 0.1

#: Ops that must carry the registration epoch so a restarted hub can
#: fence writes granted by its previous incarnation.
_EPOCH_OPS = frozenset(
    {"lease", "extend", "complete", "fail", "artifact_put"}
)


class _LeaseExtender:
    """Daemon thread renewing one remote lease until stopped.

    The fleet-side mirror of the local worker's heartbeat thread; a host
    that dies mid-trial stops extending, the lease expires, and the
    janitor (or any reclaimer) hands the job to another machine.
    """

    def __init__(self, host: "RemoteHost", job_id: int, interval_s: float,
                 suppressed: bool = False):
        self._host = host
        self._job_id = job_id
        self._interval_s = interval_s
        #: ``fleet.stale_lease``: pretend to extend but never do — the
        #: lease quietly ages out under a still-running trial.
        self._suppressed = suppressed
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_LeaseExtender":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            if self._suppressed:
                continue
            try:
                # Healing variant: a hub restart mid-trial fences the
                # extend; recover + resync keeps the lease alive under
                # the new epoch without interrupting the computation.
                response = self._host.call_healing(
                    "extend", job_id=self._job_id,
                    worker=self._host.worker_name,
                )
            except FleetError:
                continue  # partition: keep trying until stopped
            if response.get("ok") and not response.get("renewed"):
                return  # lease lost; the retry owns the job now


class RemoteHost:
    """One fleet machine: isolated storage plus the dispatch loop."""

    def __init__(
        self,
        machine_id: str,
        server_host: str = "127.0.0.1",
        server_port: int = 0,
        db_path: str = ":memory:",
        poll_interval_s: float = IDLE_POLL_S,
        worker_name: str = "w0",
    ):
        self.machine_id = machine_id
        self.worker_name = worker_name
        self.client = FleetClient(
            server_host, server_port,
            retries=HOST_RETRIES, backoff_s=HOST_BACKOFF_S,
        )
        #: Serializes dispatch-connection use between the main loop and
        #: the lease-extender thread (one socket, one line protocol).
        self._client_lock = threading.Lock()
        self.database = TrialDatabase(db_path)
        self.artifacts = ArtifactStore(self.database)
        #: This host's *local* crash-safe counters (its database is
        #: isolated from the hub's, so hub-unreachable events must be
        #: accounted here to be visible at all).
        self._local_stats = MachineRegistry(self.database)
        self.poll_interval_s = poll_interval_s
        self.shard: Optional[int] = None
        self.lease_ttl_s: float = 10.0
        self.machine_ttl_s: float = 30.0
        #: The hub incarnation this host registered under; stamped on
        #: every mutation frame so a restarted hub can fence us until we
        #: :meth:`recover`.
        self.epoch = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        #: Federation accounting, host side.
        self.federation_hits = 0
        self.federation_uploads = 0
        self.federation_upload_failures = 0
        self._heartbeat_at = 0.0
        #: Leases currently held: job id → worker name (resynced against
        #: the hub after a fenced rejection).
        self._held: Dict[int, str] = {}
        self._held_lock = threading.Lock()

    # -- protocol ------------------------------------------------------------
    def call(self, op: str, **params: Any) -> Dict[str, Any]:
        """One dispatch request with this machine's identity attached."""
        if op in _EPOCH_OPS and "epoch" not in params:
            params["epoch"] = self.epoch
        with self._client_lock:
            return self.client.request(
                op, machine_id=self.machine_id, **params
            )

    def call_healing(self, op: str, **params: Any) -> Dict[str, Any]:
        """:meth:`call`, healing a fenced rejection in place.

        ``fenced`` means the hub restarted since we registered: recover
        (re-register + resync held leases under the new epoch) and retry
        the frame once — it picks up the new epoch automatically.
        """
        response = self.call(op, **params)
        if not response.get("ok") and response.get("fenced"):
            try:
                self.recover()
            except FleetError:
                return response
            response = self.call(op, **params)
        return response

    def register(self) -> Dict[str, Any]:
        response = self.call(
            "register", capabilities=local_capabilities()
        )
        if not response.get("ok"):
            raise FleetError(
                f"registration refused: {response.get('error')}"
            )
        self.shard = int(response["shard"])
        self.lease_ttl_s = float(response["lease_ttl_s"])
        self.machine_ttl_s = float(response["machine_ttl_s"])
        self.epoch = int(response.get("epoch", 0))
        self._heartbeat_at = time.time()
        return response

    def recover(self) -> List[int]:
        """Heal this host after a hub restart.

        Re-registers (adopting the new incarnation epoch), then resyncs
        every lease this host still believes it holds.  Leases the hub
        reclaimed in the interim are dropped from the held set and
        returned — their in-flight attempts are wasted work whose
        ``complete`` the hub will reject, exactly as a zombie's would be.
        """
        self.register()
        with self._held_lock:
            held = {
                str(job_id): worker
                for job_id, worker in self._held.items()
            }
        if not held:
            return []
        response = self.call("resync", held=held)
        if not response.get("ok"):
            return []
        dropped = [int(job_id) for job_id in response.get("dropped") or []]
        with self._held_lock:
            for job_id in dropped:
                self._held.pop(job_id, None)
        if dropped:
            logger.warning(
                "hub restart: %d lease(s) not renewed under epoch %d "
                "(reclaimed while we were fenced): %s",
                len(dropped), self.epoch, dropped,
            )
        return dropped

    def _maybe_heartbeat(self) -> None:
        interval = max(0.05, self.machine_ttl_s * EXTEND_FRACTION)
        now = time.time()
        if now - self._heartbeat_at < interval:
            return
        try:
            response = self.call("heartbeat")
        except FleetError:
            return  # partition: the run loop keeps retrying leases
        self._heartbeat_at = now
        if not response.get("ok") and response.get("reregister"):
            # Declared dead during a partition that has now healed (our
            # leases were drained), or the hub restarted: rejoin, resync
            # whatever we still hold, and keep serving.
            self.recover()

    # -- artifact federation -------------------------------------------------
    def _prefetch(self, task: TrialTask) -> Optional[str]:
        """Pull the task's artifact from the hub into the local store.

        Returns the trial key when the artifact is now locally available
        (``evaluate_trial`` will then short-circuit bit-identically), or
        ``None`` when the fleet has never run this trial and a cold run
        is due.
        """
        key = trial_key(task)
        if self.artifacts.get(key, count_miss=False) is not None:
            return key  # already local (this host ran it before)
        try:
            response = self.call("artifact_get", key=key)
        except FleetError:
            return None  # partition: degrade to a cold run
        blob = response.get("payload") if response.get("ok") else None
        if blob is None:
            return None
        from ..artifacts import artifact_checksum
        from .wire import unpack_bytes

        payload = unpack_bytes(blob)
        claimed = response.get("checksum")
        if claimed is not None and artifact_checksum(payload) != claimed:
            # The transfer (or the hub's copy) is corrupt: a cold run is
            # strictly safer than warm-starting from damaged state.
            self._local_stats.bump("federation.checksum_rejects")
            logger.warning(
                "federated artifact %s failed checksum verification; "
                "falling back to a cold run", key,
            )
            return None
        self.artifacts.put(
            key,
            payload,
            workload=task.workload_id,
            trial_id=task.trial_id,
            epochs=task.epochs,
            data_fraction=task.data_fraction,
        )
        self.federation_hits += 1
        return key

    def _publish(self, task: TrialTask, key: str) -> None:
        """Upload a cold-run artifact so no other machine re-runs it."""
        payload = self.artifacts.get(key, count_miss=False)
        if payload is None:
            return  # evaluation was not cached locally (no store row)
        from ..artifacts import artifact_checksum
        from .wire import pack_bytes

        try:
            response = self.call_healing(
                "artifact_put",
                key=key,
                payload=pack_bytes(payload),
                checksum=artifact_checksum(payload),
                workload=task.workload_id,
                trial_id=task.trial_id,
                epochs=task.epochs,
                data_fraction=task.data_fraction,
            )
        except FleetError as error:
            # Best-effort (the result blob still reaches the hub), but
            # never silent: every lost upload costs the fleet a
            # duplicated cold run on some other machine.
            self.federation_upload_failures += 1
            self._local_stats.bump("federation.upload_failures")
            logger.warning(
                "artifact upload for %s failed after retries: %s",
                key, error,
            )
            return
        if response.get("ok"):
            self.federation_uploads += 1
        else:
            self.federation_upload_failures += 1
            self._local_stats.bump("federation.upload_failures")
            logger.warning(
                "hub refused artifact upload for %s: %s",
                key, response.get("error"),
            )

    # -- job execution -------------------------------------------------------
    def _run_job(self, job: Dict[str, Any]) -> None:
        job_id = int(job["id"])
        with self._held_lock:
            self._held[job_id] = self.worker_name
        try:
            self._execute_job(job)
        finally:
            with self._held_lock:
                self._held.pop(job_id, None)

    def _execute_job(self, job: Dict[str, Any]) -> None:
        job_id = int(job["id"])
        trial_id = job["trial_id"]
        attempt = int(job.get("attempts", 1))
        extend_s = max(0.05, self.lease_ttl_s * EXTEND_FRACTION)
        stale = should("fleet.stale_lease", key=trial_id, attempt=attempt)
        with _LeaseExtender(self, job_id, extend_s, suppressed=stale):
            try:
                # The whole machine disappears mid-lease: heartbeats,
                # extender, all of it.  Dead-host containment takes over.
                fault_point("fleet.dead_host", key=trial_id,
                            attempt=attempt)
                task = TrialTask.from_json(job["payload"])
                prefetched = self._prefetch(task)
                evaluation, model = evaluate_trial(
                    task, artifacts=self.artifacts
                )
                evaluation.model_blob = pickle.dumps(
                    model, protocol=pickle.HIGHEST_PROTOCOL
                )
                blob = pickle.dumps(
                    evaluation, protocol=pickle.HIGHEST_PROTOCOL
                )
                if prefetched is None:
                    self._publish(task, trial_key(task))
            except Exception as error:
                self.jobs_failed += 1
                try:
                    self.call_healing(
                        "fail", job_id=job_id, worker=self.worker_name,
                        error=f"{type(error).__name__}: {error}",
                    )
                except FleetError:
                    pass  # lease expiry will requeue the job
                return
        from .wire import pack_bytes

        try:
            # Healing matters most here: this frame may be the replay of
            # a result whose first send raced a hub crash.  The hub's
            # idempotent-complete path acknowledges the duplicate
            # without writing, so the result lands exactly once.
            response = self.call_healing(
                "complete", job_id=job_id, worker=self.worker_name,
                result=pack_bytes(blob),
            )
        except FleetError:
            return  # result lost to the partition; the retry recomputes
        if response.get("ok") and response.get("accepted"):
            self.jobs_done += 1

    # -- main loop -----------------------------------------------------------
    def run_forever(
        self,
        stop_event: Optional[threading.Event] = None,
        idle_timeout_s: Optional[float] = None,
    ) -> int:
        """Register, then lease-execute until stopped or idle too long."""
        self.register()
        idle_since = time.time()
        while stop_event is None or not stop_event.is_set():
            self._maybe_heartbeat()
            try:
                response = self.call("lease", worker=self.worker_name)
            except FleetError:
                response = {"ok": False, "error": "unreachable"}
            job: Optional[Dict[str, Any]] = None
            if response.get("ok"):
                job = response.get("job")
            elif response.get("reregister"):
                # Covers both the dead-then-revived verdict and a fenced
                # rejection from a restarted hub.
                try:
                    self.recover()
                except FleetError:
                    pass
            if job is None:
                if (
                    idle_timeout_s is not None
                    and time.time() - idle_since > idle_timeout_s
                ):
                    break
                time.sleep(self.poll_interval_s)
                continue
            self._run_job(job)
            idle_since = time.time()
        return self.jobs_done

    def close(self) -> None:
        self.client.close()
        self.database.close()


def host_main(
    machine_id: str,
    server_host: str,
    server_port: int,
    db_path: str,
    idle_timeout_s: Optional[float] = None,
    poll_interval_s: float = IDLE_POLL_S,
) -> int:
    """Process entry point for fleet hosts (importable, hence spawn-safe)."""
    host = RemoteHost(
        machine_id,
        server_host=server_host,
        server_port=server_port,
        db_path=db_path,
        poll_interval_s=poll_interval_s,
    )
    try:
        return host.run_forever(idle_timeout_s=idle_timeout_s)
    except KeyboardInterrupt:
        return host.jobs_done
    finally:
        host.close()


class HostPool:
    """Spawns and supervises N remote-host processes (tests, CI, demos).

    Each host gets its own database file under ``base_dir`` — the
    isolation is real, not simulated: a host process shares nothing with
    the coordinator but its TCP connection.  A supervisor thread respawns
    hosts that die (the ``fleet.dead_host`` chaos site kills them for
    real), mirroring :class:`~repro.service.pool.WorkerPool`.
    """

    def __init__(
        self,
        server_host: str,
        server_port: int,
        base_dir: str,
        hosts: int = 2,
        name_prefix: str = "machine",
        idle_timeout_s: Optional[float] = None,
    ):
        if hosts < 1:
            raise ValueError(f"host pool needs >= 1 hosts, got {hosts}")
        self.server_host = server_host
        self.server_port = int(server_port)
        self.base_dir = base_dir
        self.hosts = hosts
        self.name_prefix = name_prefix
        self.idle_timeout_s = idle_timeout_s
        self._spawned = 0
        self._processes: List[multiprocessing.Process] = []
        self._machine_ids: List[str] = []
        self._stop = threading.Event()
        self._supervisor: Optional[threading.Thread] = None

    def _spawn_one(self, machine_id: str) -> multiprocessing.Process:
        self._spawned += 1
        process = multiprocessing.Process(
            target=host_main,
            args=(
                machine_id,
                self.server_host,
                self.server_port,
                os.path.join(self.base_dir, f"{machine_id}.db"),
            ),
            kwargs={"idle_timeout_s": self.idle_timeout_s},
            name=machine_id,
            daemon=True,
        )
        process.start()
        return process

    def start(self) -> "HostPool":
        while len(self._processes) < self.hosts:
            machine_id = f"{self.name_prefix}-{len(self._processes) + 1}"
            self._machine_ids.append(machine_id)
            self._processes.append(self._spawn_one(machine_id))
        self._supervisor = threading.Thread(
            target=self._supervise, daemon=True
        )
        self._supervisor.start()
        return self

    def _supervise(self) -> None:
        """Respawn dead hosts — a machine that crashed (or was crashed by
        ``fleet.dead_host``) comes back with the *same* machine id, so it
        re-registers onto its old shard and resumes serving."""
        while not self._stop.wait(0.1):
            for index, process in enumerate(self._processes):
                if not process.is_alive() and not self._stop.is_set():
                    self._processes[index] = self._spawn_one(
                        self._machine_ids[index]
                    )

    def alive(self) -> int:
        return sum(1 for p in self._processes if p.is_alive())

    def stop(self, timeout_s: float = 5.0) -> None:
        """Idempotent shutdown (same discipline as ``WorkerPool.stop``)."""
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=1.0)
            self._supervisor = None
        processes, self._processes = self._processes, []
        if not processes:
            return
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=timeout_s)
            if process.is_alive():
                process.kill()
                process.join(timeout=timeout_s)

    def __enter__(self) -> "HostPool":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
