"""The machine registry: who is in the fleet and are they alive.

One row per worker host (``machines`` table, migration v7).  A machine
registers once with its capability tags — hostname, core count, kernel
backend fingerprint, supported workloads — and then proves liveness by
heartbeating.  The fleet janitor calls :meth:`MachineRegistry.expire`
periodically; a machine whose heartbeat is older than the TTL flips to
``dead`` and every lease it (or any of its ``machine/<worker>`` workers)
held is drained back into the queue immediately instead of waiting for
per-job lease expiry.

Registration is idempotent: a host process that restarts with the same
machine id re-registers in place, keeps its shard assignment, and simply
comes back ``alive`` — duplicate ids are a reconnect, not an error.

The module also owns ``fleet_stats``, a tiny crash-safe counter table
(artifact-federation hits/misses, janitor reclaim counts).  Counters are
single ``INSERT ... ON CONFLICT`` bumps, so any process — coordinator,
worker, fleet server — can account events and ``service status`` reads
one consistent view from the database rather than from per-process
memory.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..storage import TrialDatabase

#: Machine lifecycle states.
ALIVE = "alive"
DRAINING = "draining"
DEAD = "dead"

MACHINE_STATES = (ALIVE, DRAINING, DEAD)

#: A machine whose newest heartbeat is older than this is declared dead.
#: Deliberately larger than the job-lease TTL: a machine death is a much
#: stronger (and more disruptive) verdict than one slow trial.
DEFAULT_MACHINE_TTL_S = 30.0

_MACHINE_COLUMNS = (
    "id, hostname, shard, state, capabilities, jobs_done, "
    "registered_at, last_heartbeat_at"
)


def local_capabilities() -> Dict[str, Any]:
    """Capability tags describing *this* process's host.

    The backend fingerprint is the load-bearing tag: two machines with
    different fingerprints would produce different training bits, so the
    coordinator can refuse to mix them inside one replay-mode session.
    """
    from ..artifacts import backend_fingerprint
    from ..workloads.registry import WORKLOADS

    return {
        "hostname": socket.gethostname(),
        "pid": os.getpid(),
        "cores": os.cpu_count() or 1,
        "fingerprint": backend_fingerprint(),
        "workloads": sorted(WORKLOADS),
    }


@dataclass
class Machine:
    """One registered fleet member."""

    id: str
    hostname: str
    shard: int
    state: str
    capabilities: Dict[str, Any] = field(default_factory=dict)
    jobs_done: int = 0
    registered_at: float = 0.0
    last_heartbeat_at: float = 0.0

    @classmethod
    def from_row(cls, row: tuple) -> "Machine":
        return cls(
            id=row[0],
            hostname=row[1],
            shard=int(row[2]),
            state=row[3],
            capabilities=json.loads(row[4] or "{}"),
            jobs_done=int(row[5]),
            registered_at=float(row[6]),
            last_heartbeat_at=float(row[7]),
        )

    def heartbeat_age_s(self, now: Optional[float] = None) -> float:
        return (time.time() if now is None else now) - self.last_heartbeat_at

    def supports(self, workload: str) -> bool:
        """Whether this machine advertises the workload; machines with no
        ``workloads`` tag (older registrations) are assumed universal."""
        workloads = self.capabilities.get("workloads")
        return workloads is None or workload in workloads


class HubState:
    """The hub's persisted identity: a monotonically increasing
    **incarnation epoch** (``hub_state`` table, migration v8).

    Every hub start — first boot, clean restart, crash recovery —
    advances the epoch by one inside a single write transaction, so two
    hubs racing over one database cannot mint the same incarnation.  The
    epoch is embedded in every lease the hub grants; ``extend`` /
    ``complete`` / ``fail`` / ``artifact_put`` frames carrying an older
    epoch are rejected as **fenced**, which is what makes a hub crash
    indistinguishable (to correctness) from a slow network: stale
    writers cannot smuggle pre-crash state into the new incarnation.
    """

    EPOCH_KEY = "epoch"

    def __init__(self, database: TrialDatabase):
        self.database = database

    def current_epoch(self) -> int:
        row = self.database.execute(
            "SELECT value FROM hub_state WHERE key = ?", (self.EPOCH_KEY,)
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def advance_epoch(self, now: Optional[float] = None) -> int:
        """Atomically mint the next incarnation epoch and persist it."""
        now = time.time() if now is None else now
        with self.database.transaction() as connection:
            row = connection.execute(
                "SELECT value FROM hub_state WHERE key = ?",
                (self.EPOCH_KEY,),
            ).fetchone()
            epoch = (int(row[0]) if row is not None else 0) + 1
            connection.execute(
                "INSERT INTO hub_state (key, value) VALUES (?, ?) "
                "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
                (self.EPOCH_KEY, str(epoch)),
            )
            connection.execute(
                "INSERT INTO hub_state (key, value) VALUES (?, ?) "
                "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
                ("epoch_started_at", repr(now)),
            )
        return epoch


class MachineRegistry:
    """CRUD over the ``machines`` table plus the fleet counters."""

    def __init__(self, database: TrialDatabase):
        self.database = database

    # -- membership ----------------------------------------------------------
    def register(
        self,
        machine_id: str,
        capabilities: Optional[Dict[str, Any]] = None,
        shard: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Machine:
        """Add (or re-add) a machine; idempotent per id.

        A duplicate registration is a host reconnecting: it refreshes the
        capability tags and heartbeat and revives the row to ``alive``,
        but keeps the original shard assignment (session affinity must
        survive a host restart) unless the caller forces one.
        """
        now = time.time() if now is None else now
        capabilities = dict(capabilities or {})
        hostname = str(capabilities.get("hostname") or socket.gethostname())
        tags = json.dumps(capabilities, sort_keys=True, default=repr)
        with self.database.transaction() as connection:
            row = connection.execute(
                "SELECT shard FROM machines WHERE id = ?", (machine_id,)
            ).fetchone()
            if row is None:
                connection.execute(
                    "INSERT INTO machines (id, hostname, shard, state, "
                    "capabilities, registered_at, last_heartbeat_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (machine_id, hostname, int(shard or 0), ALIVE, tags,
                     now, now),
                )
            else:
                kept_shard = int(row[0]) if shard is None else int(shard)
                connection.execute(
                    "UPDATE machines SET hostname = ?, shard = ?, "
                    "state = ?, capabilities = ?, last_heartbeat_at = ? "
                    "WHERE id = ?",
                    (hostname, kept_shard, ALIVE, tags, now, machine_id),
                )
        machine = self.get(machine_id)
        assert machine is not None
        return machine

    def heartbeat(
        self, machine_id: str, now: Optional[float] = None
    ) -> bool:
        """Refresh liveness; revives a prematurely-declared-dead machine
        (its leases were already drained — that is recoverable, a lost
        heartbeat is not).  ``False`` when the machine is unregistered."""
        now = time.time() if now is None else now
        cursor = self.database.execute(
            "UPDATE machines SET last_heartbeat_at = ?, "
            "state = CASE WHEN state = ? THEN ? ELSE state END "
            "WHERE id = ?",
            (now, DEAD, ALIVE, machine_id),
        )
        return cursor.rowcount > 0

    def record_done(self, machine_id: str, count: int = 1) -> None:
        self.database.execute(
            "UPDATE machines SET jobs_done = jobs_done + ? WHERE id = ?",
            (int(count), machine_id),
        )

    def set_state(self, machine_id: str, state: str) -> bool:
        if state not in MACHINE_STATES:
            raise ValueError(f"unknown machine state {state!r}")
        cursor = self.database.execute(
            "UPDATE machines SET state = ? WHERE id = ?",
            (state, machine_id),
        )
        return cursor.rowcount > 0

    def forget(self, machine_id: str) -> bool:
        """Drop a machine row entirely (operator cleanup)."""
        cursor = self.database.execute(
            "DELETE FROM machines WHERE id = ?", (machine_id,)
        )
        return cursor.rowcount > 0

    # -- queries -------------------------------------------------------------
    def get(self, machine_id: str) -> Optional[Machine]:
        row = self.database.execute(
            f"SELECT {_MACHINE_COLUMNS} FROM machines WHERE id = ?",
            (machine_id,),
        ).fetchone()
        return None if row is None else Machine.from_row(row)

    def list(self, state: Optional[str] = None) -> List[Machine]:
        query = f"SELECT {_MACHINE_COLUMNS} FROM machines"
        args: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            args = (state,)
        query += " ORDER BY shard, id"
        rows = self.database.execute(query, args).fetchall()
        return [Machine.from_row(row) for row in rows]

    def alive(self) -> List[Machine]:
        return self.list(state=ALIVE)

    # -- liveness sweep ------------------------------------------------------
    def expire(
        self,
        ttl_s: float = DEFAULT_MACHINE_TTL_S,
        now: Optional[float] = None,
    ) -> List[str]:
        """Declare machines with stale heartbeats dead.

        Returns the ids that flipped on *this* sweep (not ones already
        dead) so the janitor drains each machine's orphaned leases
        exactly once.
        """
        now = time.time() if now is None else now
        cutoff = now - ttl_s
        with self.database.transaction() as connection:
            doomed = [
                row[0]
                for row in connection.execute(
                    "SELECT id FROM machines "
                    "WHERE state = ? AND last_heartbeat_at < ?",
                    (ALIVE, cutoff),
                ).fetchall()
            ]
            for machine_id in doomed:
                connection.execute(
                    "UPDATE machines SET state = ? WHERE id = ?",
                    (DEAD, machine_id),
                )
        if doomed:
            self.bump("machines.expired", len(doomed))
        return doomed

    # -- fleet counters ------------------------------------------------------
    def bump(self, key: str, amount: float = 1.0) -> None:
        """Crash-safe counter increment (single upsert statement)."""
        self.database.execute(
            "INSERT INTO fleet_stats (key, value) VALUES (?, ?) "
            "ON CONFLICT (key) DO UPDATE SET value = value + excluded.value",
            (key, float(amount)),
        )

    def bump_max(self, key: str, value: float) -> None:
        """Crash-safe high-water-mark update (e.g. widest batch group)."""
        self.database.execute(
            "INSERT INTO fleet_stats (key, value) VALUES (?, ?) "
            "ON CONFLICT (key) DO UPDATE SET "
            "value = MAX(value, excluded.value)",
            (key, float(value)),
        )

    def stats(self) -> Dict[str, float]:
        rows = self.database.execute(
            "SELECT key, value FROM fleet_stats ORDER BY key"
        ).fetchall()
        return {key: float(value) for key, value in rows}
