"""Shard routing: which machines serve which queues, which queue serves
which session.

Two decisions, both deterministic:

* **machine placement** — a newly registered machine joins the least
  populated shard (ties broken by shard number), so shards stay balanced
  as hosts come and go;
* **session affinity** — every session hashes (blake2b, process-stable)
  onto one shard among those that currently have at least one alive
  machine supporting the session's workload.  All of a session's jobs
  land on that shard, so its artifact locality is maximal: the rung-N
  trials that rung N+1 wants to warm-resume from were run by the same
  machines that will run rung N+1.

The router is stateless — it reads the registry on every decision — so
there is nothing to resynchronize after a partition heals; a machine that
re-registers simply shows up in the next decision's candidate set.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional

from .registry import Machine, MachineRegistry

#: Default shard count when the fleet server is not told otherwise.
DEFAULT_SHARDS = 2


def _stable_hash(token: str) -> int:
    """Process-stable string hash (``hash()`` is salted per interpreter)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Deterministic shard decisions over a :class:`MachineRegistry`."""

    def __init__(self, registry: MachineRegistry,
                 num_shards: int = DEFAULT_SHARDS):
        if num_shards < 1:
            raise ValueError(f"need >= 1 shards, got {num_shards}")
        self.registry = registry
        self.num_shards = int(num_shards)

    # -- machine placement ---------------------------------------------------
    def place_machine(self) -> int:
        """Shard for a joining machine: least alive members, lowest wins."""
        population = {shard: 0 for shard in range(self.num_shards)}
        for machine in self.registry.alive():
            if machine.shard in population:
                population[machine.shard] += 1
        return min(population, key=lambda shard: (population[shard], shard))

    # -- session affinity ----------------------------------------------------
    def shard_for_session(
        self,
        session_id: str,
        workload: Optional[str] = None,
        machines: Optional[Iterable[Machine]] = None,
    ) -> int:
        """The shard a session's jobs are routed to.

        Candidates are shards with at least one alive machine that
        supports ``workload``; the session hashes onto one of them.  With
        no eligible machine at all (fleet still booting, or every host
        died) the hash falls back to the full shard range — jobs are
        queued where machines will appear, not dropped.
        """
        if machines is None:
            machines = self.registry.alive()
        candidates: List[int] = sorted({
            machine.shard
            for machine in machines
            if workload is None or machine.supports(workload)
        })
        if not candidates:
            candidates = list(range(self.num_shards))
        index = _stable_hash(session_id) % len(candidates)
        return candidates[index]
