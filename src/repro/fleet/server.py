"""The fleet dispatch server: one coordinator hub, many worker hosts.

A stdlib :class:`socketserver.ThreadingTCPServer` speaking the line-JSON
frames of :mod:`repro.fleet.wire` — the same transport discipline as the
advisor server (persistent connections, oversized-frame rejection,
optional token-bucket limits, graceful drain), applied to work dispatch:

* remote hosts **register** with capability tags and are placed on a
  shard by the :class:`~repro.fleet.router.ShardRouter`;
* they **lease** jobs from their shard's queue, **extend** leases while
  trials run, and stream **complete**/**fail** verdicts back — all
  against the coordinator's central database, under the exact ownership
  protocol local pool workers use (owner ``machine/<worker>``);
* the **artifact federation** ops let a host probe the hub's
  content-addressed cache before cold-running a trial and publish what
  it did have to run, so no two machines in the fleet ever train the
  same (config, budget, seed) twice;
* a **janitor** sweep declares silent machines dead and immediately
  drains their orphaned leases back into the queue (containment measured
  in one machine TTL, not one per-job lease expiry each);
* the hub itself is **crash-restartable**: every start mints a new
  incarnation epoch (:class:`~repro.fleet.registry.HubState`), recovers
  orphaned running sessions back to ``queued`` (their checkpoints make
  the resume bit-identical), and **fences** mutation frames that carry a
  pre-crash epoch — with an idempotent-replay carve-out for ``complete``
  so a result that raced the crash lands exactly once.

The server also *runs sessions*: :meth:`FleetServer.run_sessions` claims
queued sessions and drives each with a remote-mode
:class:`~repro.service.coordinator.SessionCoordinator` — same wave
scheduling, same strict in-order merge, so a fleet run's result is
bit-identical to the single-host run of the same spec.
"""

from __future__ import annotations

import logging
import socket
import socketserver
import threading
import time
from typing import Any, Dict, List, Optional

from .. import faults
from ..artifacts import ArtifactStore, artifact_checksum
from ..service.coordinator import COORDINATOR_POLL_S, SessionCoordinator
from ..service.queue import DEFAULT_LEASE_TTL_S, JobQueue
from ..service.sessions import S_QUEUED, S_RUNNING, SessionStore
from ..errors import ServiceError
from ..storage import TrialDatabase
from ..telemetry import MeterRegistry
from .registry import DEFAULT_MACHINE_TTL_S, HubState, MachineRegistry
from .router import DEFAULT_SHARDS, ShardRouter
from .wire import (
    MAX_FRAME_BYTES, decode_frame, encode_frame, error_frame, ok_frame,
    pack_bytes, unpack_bytes,
)

logger = logging.getLogger(__name__)

#: How long a handler blocks on the next frame before re-checking the
#: drain flag, seconds.
READ_TIMEOUT_S = 0.2

#: Janitor sweep period as a fraction of the machine TTL.
JANITOR_FRACTION = 0.25


class _FleetHandler(socketserver.StreamRequestHandler):
    """One persistent host connection; loops until EOF or drain."""

    def setup(self) -> None:
        super().setup()
        self.connection.settimeout(READ_TIMEOUT_S)

    def handle(self) -> None:
        server: "FleetServer" = self.server  # type: ignore[assignment]
        client = self.client_address[0]
        server.meters.counter("fleet.connections").inc()
        while not server.draining:
            try:
                line = self.rfile.readline(MAX_FRAME_BYTES + 1)
            except socket.timeout:
                continue
            except OSError:
                break
            if not line:
                break
            if len(line) > MAX_FRAME_BYTES:
                # Oversized frame: the stream cannot be trusted to
                # re-align on newlines — answer and drop the connection.
                server.meters.counter("fleet.errors").inc()
                try:
                    self.wfile.write(
                        encode_frame(error_frame("frame too long"))
                    )
                except OSError:
                    pass
                break
            line = line.strip()
            if not line:
                continue
            with server.track_in_flight():
                response = server.handle_line(line, client)
            try:
                self.wfile.write(encode_frame(response))
            except OSError:
                break


class FleetServer(socketserver.ThreadingTCPServer):
    """Threaded dispatch server over one central trial database."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        database: TrialDatabase,
        host: str = "127.0.0.1",
        port: int = 0,
        num_shards: int = DEFAULT_SHARDS,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        machine_ttl_s: float = DEFAULT_MACHINE_TTL_S,
        rate_limit: Optional[float] = None,
        burst: Optional[int] = None,
        meters: Optional[MeterRegistry] = None,
    ):
        super().__init__((host, port), _FleetHandler)
        self.database = database
        self.queue = JobQueue(database)
        self.sessions = SessionStore(database)
        self.registry = MachineRegistry(database)
        self.router = ShardRouter(self.registry, num_shards=num_shards)
        self.artifacts = ArtifactStore(database)
        self.lease_ttl_s = float(lease_ttl_s)
        self.machine_ttl_s = float(machine_ttl_s)
        self.meters = meters or MeterRegistry()
        if rate_limit:
            from ..advisor.server import TokenBucket

            self.limiter: Optional[Any] = TokenBucket(rate_limit, burst)
        else:
            self.limiter = None
        self.draining = False
        self._in_flight = 0
        self._in_flight_lock = threading.Lock()
        self._janitor_stop = threading.Event()
        self._janitor_thread: Optional[threading.Thread] = None
        # Fenced restart: mint this incarnation's epoch first, then
        # recover whatever the previous incarnation left mid-flight.
        self.hub_state = HubState(database)
        self.epoch = self.hub_state.advance_epoch()
        self.recovery = self._recover()

    # -- crash recovery ------------------------------------------------------
    def _recover(self) -> Dict[str, int]:
        """Heal state orphaned by a previous hub incarnation.

        Sessions stuck in ``running`` belonged to a coordinator that no
        longer exists; flipping them back to ``queued`` lets
        :meth:`run_sessions` re-claim them, and their persisted
        checkpoints make the resume bit-identical to an uninterrupted
        run.  Leases survive as-is — the janitor (or a fenced host's
        ``resync``) settles each one individually.
        """
        orphaned = self.sessions.list(state=S_RUNNING)
        for record in orphaned:
            self.sessions.set_state(record.id, S_QUEUED)
        if self.epoch > 1:
            self.registry.bump("hub.restarts")
            logger.warning(
                "fleet hub restarted: epoch %d, %d orphaned running "
                "session(s) requeued for checkpoint resume",
                self.epoch, len(orphaned),
            )
        return {
            "epoch": self.epoch,
            "sessions_requeued": len(orphaned),
        }

    def _fence(self, payload: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """``None`` when the frame may mutate state, else the rejection.

        Only frames that *carry* an epoch are fenced: pre-epoch clients
        (and the in-process test seam) omit the field and are trusted as
        current.  A stale epoch means the sender holds leases granted by
        a dead incarnation — it must re-register and ``resync`` before
        any of its writes count.
        """
        epoch = payload.get("epoch")
        if epoch is None or int(epoch) == self.epoch:
            return None
        self.meters.counter("fleet.fenced").inc()
        self.registry.bump("hub.fenced_frames")
        return error_frame(
            f"fenced: frame epoch {int(epoch)} != hub epoch {self.epoch}",
            fenced=True,
            reregister=True,
            epoch=self.epoch,
        )

    # -- addresses -----------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        return self.server_address[1]

    # -- in-flight accounting ------------------------------------------------
    def track_in_flight(self) -> "_InFlight":
        return _InFlight(self)

    @property
    def in_flight(self) -> int:
        with self._in_flight_lock:
            return self._in_flight

    # -- request dispatch ----------------------------------------------------
    def handle_line(self, line: bytes, client: str = "") -> Dict[str, Any]:
        """Decode and answer one frame (also the unit-test seam).

        A garbage frame gets an error response but — unlike an oversized
        one — keeps the connection: the newline that delimited it proves
        the stream is still aligned.
        """
        started = time.perf_counter()
        self.meters.counter("fleet.requests").inc()
        try:
            payload = decode_frame(line)
        except ServiceError as error:
            self.meters.counter("fleet.errors").inc()
            return error_frame(f"bad frame: {error}")
        try:
            response = self.process(payload, client)
        except Exception as error:  # noqa: BLE001 — one bad request must
            # not take down the handler thread serving a whole machine.
            self.meters.counter("fleet.errors").inc()
            response = error_frame(
                f"internal error: {type(error).__name__}: {error}"
            )
        self.meters.meter("fleet.latency_s").record(
            time.perf_counter() - started
        )
        return response

    def process(self, payload: Dict[str, Any], client: str) -> Dict[str, Any]:
        op = payload.get("op")
        if op == "ping":
            return ok_frame(pong=True, draining=self.draining)
        if self.limiter is not None and not self.limiter.allow(client):
            self.meters.counter("fleet.rate_limited").inc()
            return error_frame("rate_limited")
        if op == "register":
            return self._register(payload)
        if op == "heartbeat":
            return self._heartbeat(payload)
        if op == "lease":
            return self._lease(payload)
        if op == "extend":
            return self._extend(payload)
        if op == "complete":
            return self._complete(payload)
        if op == "fail":
            return self._fail(payload)
        if op == "resync":
            return self._resync(payload)
        if op == "artifact_get":
            return self._artifact_get(payload)
        if op == "artifact_put":
            return self._artifact_put(payload)
        if op == "status":
            return ok_frame(**self.status())
        if op == "drain":
            self.initiate_drain()
            return ok_frame(draining=True)
        self.meters.counter("fleet.errors").inc()
        return error_frame(f"unknown op {op!r}")

    # -- membership ops ------------------------------------------------------
    def _register(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        machine_id = str(payload.get("machine_id") or "")
        if not machine_id:
            return error_frame("register needs a machine_id")
        capabilities = payload.get("capabilities") or {}
        if not isinstance(capabilities, dict):
            return error_frame("capabilities must be an object")
        known = self.registry.get(machine_id)
        # A duplicate id is a host reconnecting: keep its shard so the
        # sessions routed there still find their machine.  Fresh ids go
        # to the least-populated shard.
        shard = known.shard if known is not None else (
            self.router.place_machine()
        )
        machine = self.registry.register(
            machine_id, capabilities=capabilities, shard=shard
        )
        self.meters.counter("fleet.registrations").inc()
        return ok_frame(
            shard=machine.shard,
            rejoined=known is not None,
            lease_ttl_s=self.lease_ttl_s,
            machine_ttl_s=self.machine_ttl_s,
            epoch=self.epoch,
        )

    def _heartbeat(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        machine_id = str(payload.get("machine_id") or "")
        if not self.registry.heartbeat(machine_id):
            return error_frame(
                f"unknown machine {machine_id!r}", reregister=True
            )
        return ok_frame(draining=self.draining)

    def _machine_ok(self, machine_id: str) -> Optional[Dict[str, Any]]:
        """``None`` when the machine may take work, else the error frame
        (unregistered or declared dead → the host must re-register)."""
        machine = self.registry.get(machine_id)
        if machine is None:
            return error_frame(
                f"unknown machine {machine_id!r}", reregister=True
            )
        if machine.state != "alive":
            return error_frame(
                f"machine {machine_id!r} is {machine.state}",
                reregister=True,
            )
        return None

    # -- dispatch ops --------------------------------------------------------
    @staticmethod
    def _owner(payload: Dict[str, Any]) -> str:
        """Lease owner string ``machine/<worker>`` — prefix-matchable by
        :meth:`~repro.service.queue.JobQueue.reclaim_owner`."""
        machine_id = str(payload.get("machine_id") or "")
        worker = str(payload.get("worker") or "w0")
        return f"{machine_id}/{worker}"

    def _lease(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        machine_id = str(payload.get("machine_id") or "")
        fenced = self._fence(payload)
        if fenced is not None:
            return fenced
        rejected = self._machine_ok(machine_id)
        if rejected is not None:
            return rejected
        if self.draining:
            return ok_frame(job=None, draining=True)
        machine = self.registry.get(machine_id)
        assert machine is not None
        job = self.queue.lease(
            self._owner(payload),
            ttl_s=self.lease_ttl_s,
            shard=machine.shard,
            epoch=self.epoch,
        )
        self.registry.heartbeat(machine_id)
        if job is None:
            return ok_frame(job=None, epoch=self.epoch)
        self.meters.counter("fleet.leases").inc()
        return ok_frame(epoch=self.epoch, job={
            "id": job.id,
            "session_id": job.session_id,
            "trial_id": job.trial_id,
            "payload": job.payload,
            "attempts": job.attempts,
            "max_attempts": job.max_attempts,
            "shard": job.shard,
        })

    def _extend(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        fenced = self._fence(payload)
        if fenced is not None:
            return fenced
        renewed = self.queue.heartbeat(
            int(payload.get("job_id", -1)),
            self._owner(payload),
            ttl_s=self.lease_ttl_s,
        )
        # A host deep in a long trial talks to us only through extends;
        # count them as machine liveness too or the janitor would declare
        # a hard-working machine dead.
        self.registry.heartbeat(str(payload.get("machine_id") or ""))
        return ok_frame(renewed=renewed)

    def _complete(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        machine_id = str(payload.get("machine_id") or "")
        job_id = int(payload.get("job_id", -1))
        owner = self._owner(payload)
        result = unpack_bytes(payload.get("result"))
        if result is None:
            return error_frame("complete needs a result blob")
        # Idempotent replay *before* the fence: a worker that sent its
        # result just as the old hub died resends after reconnecting.
        # If that first write committed, this frame is a duplicate of an
        # already-accepted result — acknowledge it (first write wins)
        # instead of fencing, or the worker would re-run a finished
        # trial for nothing.
        if self.queue.is_done_by(job_id, owner):
            self.registry.heartbeat(machine_id)
            self.registry.bump("hub.replayed_completions")
            self.meters.counter("fleet.duplicate_completions").inc()
            return ok_frame(accepted=True, duplicate=True)
        fenced = self._fence(payload)
        if fenced is not None:
            return fenced
        # Chaos hooks: die right before / right after the result lands.
        # Keyed on this incarnation's epoch so the restarted hub (new
        # epoch, new draw) sails past the replayed frame.
        faults.fault_point("fleet.hub_crash", key=f"{self.epoch}:{job_id}")
        accepted = self.queue.complete(job_id, owner, result)
        faults.fault_point(
            "fleet.hub_crash", key=f"{self.epoch}:{job_id}:post"
        )
        if accepted:
            self.registry.record_done(machine_id)
            self.registry.heartbeat(machine_id)
            self.meters.counter("fleet.completions").inc()
        return ok_frame(accepted=accepted, duplicate=False)

    def _fail(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        fenced = self._fence(payload)
        if fenced is not None:
            return fenced
        accepted = self.queue.fail(
            int(payload.get("job_id", -1)),
            self._owner(payload),
            str(payload.get("error") or "remote failure"),
        )
        self.meters.counter("fleet.failures").inc()
        return ok_frame(accepted=accepted)

    def _resync(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Re-adopt a reconnecting host's held leases under this epoch.

        ``held`` maps job id → worker name; each lease still owned by
        that worker is renewed and re-stamped, anything reclaimed in the
        interim comes back in ``dropped`` and the host must abandon its
        in-flight attempt (the queue's retry owns the outcome now).
        """
        machine_id = str(payload.get("machine_id") or "")
        rejected = self._machine_ok(machine_id)
        if rejected is not None:
            return rejected
        held = payload.get("held") or {}
        if not isinstance(held, dict):
            return error_frame("resync needs a held {job_id: worker} map")
        claims = {
            int(job_id): f"{machine_id}/{worker}"
            for job_id, worker in held.items()
        }
        renewed = self.queue.resync_leases(
            claims, epoch=self.epoch, ttl_s=self.lease_ttl_s
        )
        dropped = sorted(set(claims) - set(renewed))
        self.registry.heartbeat(machine_id)
        if renewed:
            self.registry.bump("hub.leases_resynced", len(renewed))
        self.meters.counter("fleet.resyncs").inc()
        return ok_frame(renewed=renewed, dropped=dropped, epoch=self.epoch)

    # -- artifact federation -------------------------------------------------
    def _artifact_get(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        key = str(payload.get("key") or "")
        if payload.get("probe"):
            row = self.database.execute(
                "SELECT 1 FROM artifacts WHERE key = ?", (key,)
            ).fetchone()
            return ok_frame(present=row is not None)
        blob = self.artifacts.get(key)
        if blob is None:
            self.registry.bump("federation.misses")
            return ok_frame(payload=None)
        self.registry.bump("federation.hits")
        self.meters.counter("fleet.federation_hits").inc()
        # The checksum rides along so the receiving host can verify the
        # transfer end-to-end before trusting the warm-start state.
        return ok_frame(
            payload=pack_bytes(blob), checksum=artifact_checksum(blob)
        )

    def _artifact_put(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        fenced = self._fence(payload)
        if fenced is not None:
            return fenced
        key = str(payload.get("key") or "")
        blob = unpack_bytes(payload.get("payload"))
        if not key or blob is None:
            return error_frame("artifact_put needs a key and a payload")
        claimed = payload.get("checksum")
        if claimed is not None and artifact_checksum(blob) != claimed:
            self.registry.bump("federation.upload_rejects")
            self.meters.counter("fleet.checksum_rejects").inc()
            return error_frame(
                f"artifact {key!r} failed checksum verification in "
                "transfer", checksum_mismatch=True,
            )
        self.artifacts.put(
            key,
            blob,
            workload=str(payload.get("workload") or ""),
            trial_id=int(payload.get("trial_id", -1)),
            epochs=int(payload.get("epochs", 0)),
            data_fraction=float(payload.get("data_fraction", 0.0)),
        )
        self.registry.bump("federation.uploads")
        return ok_frame(stored=True)

    # -- overview ------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        now = time.time()
        machines = [
            {
                "id": machine.id,
                "hostname": machine.hostname,
                "shard": machine.shard,
                "state": machine.state,
                "jobs_done": machine.jobs_done,
                "heartbeat_age_s": round(machine.heartbeat_age_s(now), 3),
                "fingerprint": machine.capabilities.get("fingerprint"),
            }
            for machine in self.registry.list()
        ]
        return {
            "machines": machines,
            "num_shards": self.router.num_shards,
            "queue": self.queue.depths(),
            "fleet_stats": self.registry.stats(),
            "draining": self.draining,
            "epoch": self.epoch,
            "recovery": dict(self.recovery),
        }

    # -- janitor -------------------------------------------------------------
    def janitor_sweep(self, now: Optional[float] = None) -> Dict[str, int]:
        """One containment pass: expire silent machines, drain their
        leases, reclaim individually-expired leases."""
        now = time.time() if now is None else now
        dead = self.registry.expire(self.machine_ttl_s, now=now)
        drained = 0
        for machine_id in dead:
            drained += self.queue.reclaim_owner(machine_id, now=now)
            logger.warning(
                "fleet janitor: machine %s declared dead, %d leases drained",
                machine_id, drained,
            )
        expired = self.queue.reclaim_expired(now=now)
        if drained:
            self.registry.bump("leases.drained", drained)
        if expired:
            self.registry.bump("leases.expired", expired)
        self.meters.counter("fleet.machines_expired").inc(len(dead))
        return {
            "machines_expired": len(dead),
            "leases_drained": drained,
            "leases_expired": expired,
        }

    def start_janitor(self, interval_s: Optional[float] = None) -> None:
        if self._janitor_thread is not None:
            return
        interval = interval_s or max(
            0.05, self.machine_ttl_s * JANITOR_FRACTION
        )

        def run() -> None:
            while not self._janitor_stop.wait(interval):
                try:
                    self.janitor_sweep()
                except Exception:  # pragma: no cover — sweep must survive
                    logger.exception("fleet janitor sweep failed")

        self._janitor_thread = threading.Thread(target=run, daemon=True)
        self._janitor_thread.start()

    # -- session driving -----------------------------------------------------
    def run_sessions(
        self,
        drain: bool = False,
        idle_timeout_s: Optional[float] = None,
        poll_interval_s: float = COORDINATOR_POLL_S,
    ) -> List[Any]:
        """Claim queued sessions and drive each with a remote coordinator.

        Each session is routed to one shard (affinity: all its jobs, and
        therefore its artifact locality, stay with the machines of that
        shard) and merged in strict wave order — the fleet-scale result
        is bit-identical to the single-host run.
        """
        results: List[Any] = []
        idle_since = time.time()
        while not self.draining:
            record = self.sessions.claim_next_queued()
            if record is None:
                if drain:
                    break
                if (
                    idle_timeout_s is not None
                    and time.time() - idle_since > idle_timeout_s
                ):
                    break
                time.sleep(poll_interval_s)
                continue
            shard = self.router.shard_for_session(
                record.id, workload=record.spec.workload
            )
            self.meters.counter(f"fleet.sessions_shard_{shard}").inc()
            coordinator = SessionCoordinator(
                self.database,
                record.id,
                workers=0,
                lease_ttl_s=self.lease_ttl_s,
                poll_interval_s=poll_interval_s,
                shard=shard,
                remote=True,
            )
            try:
                results.append(coordinator.run())
            except ServiceError:
                pass  # recorded on the session row by the coordinator
            idle_since = time.time()
        return results

    # -- lifecycle -----------------------------------------------------------
    def initiate_drain(self) -> None:
        """Stop handing out work and unblock :meth:`serve_until_drained`.

        Safe to call from a signal handler: the blocking ``shutdown`` is
        moved onto a helper thread.
        """
        if self.draining:
            return
        self.draining = True
        self._janitor_stop.set()
        threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_until_drained(
        self, poll_interval: float = 0.1, drain_timeout_s: float = 5.0
    ) -> None:
        """``serve_forever`` plus an orderly exit (mirrors the advisor)."""
        try:
            self.serve_forever(poll_interval=poll_interval)
        finally:
            deadline = time.monotonic() + drain_timeout_s
            while self.in_flight > 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            self.server_close()


class _InFlight:
    """Context manager counting frames currently being answered."""

    def __init__(self, server: FleetServer):
        self._server = server

    def __enter__(self) -> "_InFlight":
        with self._server._in_flight_lock:
            self._server._in_flight += 1
        return self

    def __exit__(self, *exc_info: Any) -> None:
        with self._server._in_flight_lock:
            self._server._in_flight -= 1
