"""Fleet dispatch wire format: newline-delimited JSON frames.

Deliberately the same transport the advisor speaks — one JSON object per
line over a persistent TCP connection — so every hardening lesson from
that server (oversized-frame rejection, garbage tolerance, graceful
drain) carries over unchanged.  Binary payloads (pickled evaluations,
artifact blobs) travel base64-inside-JSON; the frame cap is sized for
them.

Request frames are ``{"op": <name>, ...}``; response frames are
``{"ok": true, ...}`` or ``{"ok": false, "error": "..."}``.  Ops:

==================  =======================================================
``register``        join the fleet (capability tags) → shard + lease terms
                    + the hub's current incarnation ``epoch``
``heartbeat``       machine liveness ping
``lease``           claim one job from the machine's shard queue
``extend``          renew a held job lease
``complete``        upload a finished job's evaluation blob
``fail``            report a job failure (traceback travels as text)
``resync``          re-adopt held leases under a new hub epoch after a
                    hub restart (``held`` maps job id → worker name)
``artifact_get``    federation: fetch an artifact payload by trial key
                    (response carries a blake2b ``checksum``)
``artifact_put``    federation: publish a cold-run artifact to the hub
                    (optional ``checksum`` is verified before storing)
``status``          fleet overview (machines, shards, counters)
``drain``           ask the server to stop handing out work
``ping``            connection liveness probe
==================  =======================================================

Fencing: mutation frames (``lease``/``extend``/``complete``/``fail``/
``artifact_put``) may carry the ``epoch`` the sender registered under.
A hub that restarted since then rejects the frame with ``{"ok": false,
"fenced": true, "reregister": true, "epoch": <current>}`` — the client
re-registers, resyncs its leases, and retries.  Frames without an epoch
field (older clients, in-process tests) are trusted as current.
``complete`` is exempt when the job is already done by the same owner:
the hub answers ``{"ok": true, "accepted": true, "duplicate": true}``
so an in-flight result that raced a hub crash lands exactly once.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Dict, Optional

from ..errors import FleetError

#: Frame size cap.  Artifact payloads (pickled model + evaluation) are a
#: few hundred KB; 32 MiB leaves a wide margin while still rejecting a
#: runaway (or hostile) frame before it exhausts memory.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Every op the server understands (unknown ops get a clean error frame).
OPS = (
    "register", "heartbeat", "lease", "extend", "complete", "fail",
    "resync", "artifact_get", "artifact_put", "status", "drain", "ping",
)


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One message → one ``\\n``-terminated JSON line."""
    line = json.dumps(message, separators=(",", ":"), sort_keys=True)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise FleetError(
            f"frame of {len(data)} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return data


def decode_frame(line: bytes) -> Dict[str, Any]:
    """One received line → message dict (raises :class:`FleetError` on
    garbage — the caller decides whether the connection survives)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FleetError(f"undecodable frame: {error}")
    if not isinstance(message, dict):
        raise FleetError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def pack_bytes(payload: Optional[bytes]) -> Optional[str]:
    """Binary → base64 text for JSON transport (``None`` passes through)."""
    if payload is None:
        return None
    return base64.b64encode(payload).decode("ascii")


def unpack_bytes(text: Optional[str]) -> Optional[bytes]:
    if text is None:
        return None
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as error:
        raise FleetError(f"undecodable binary field: {error}")


def error_frame(message: str, **extra: Any) -> Dict[str, Any]:
    frame: Dict[str, Any] = {"ok": False, "error": str(message)}
    frame.update(extra)
    return frame


def ok_frame(**fields: Any) -> Dict[str, Any]:
    frame: Dict[str, Any] = {"ok": True}
    frame.update(fields)
    return frame
