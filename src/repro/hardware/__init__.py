"""Edge-device hardware emulation: cost models, counters, devices."""

from .counters import (
    EVENT_NAMES,
    EVENTS,
    PHASES,
    CounterEvent,
    collect_counters,
    magnitude_bucket,
)
from .cpu import (
    CpuExecution,
    amdahl_speedup,
    memory_penalty,
    parallel_fraction,
    run_on_cpu,
    simd_efficiency,
    working_set,
)
from .device import DeviceSpec
from .emulator import (
    DEFAULT_FLOPS_SCALE,
    DEFAULT_PARAM_SCALE,
    Emulator,
)
from .gpu import GpuExecution, allreduce_time_s, gpu_efficiency, run_training_on_gpus
from .noise import RealEdgeDevice
from .planner import (
    DEFAULT_PLAN_BATCHES,
    DeploymentOption,
    DeploymentPlan,
    DeploymentPlanner,
)
from .registry import DEVICES, device_names, edge_device_names, get_device

__all__ = [
    "DeviceSpec",
    "DEVICES",
    "device_names",
    "edge_device_names",
    "get_device",
    "Emulator",
    "DEFAULT_FLOPS_SCALE",
    "DEFAULT_PARAM_SCALE",
    "CpuExecution",
    "run_on_cpu",
    "amdahl_speedup",
    "parallel_fraction",
    "simd_efficiency",
    "memory_penalty",
    "working_set",
    "GpuExecution",
    "run_training_on_gpus",
    "gpu_efficiency",
    "allreduce_time_s",
    "RealEdgeDevice",
    "DeploymentPlanner",
    "DeploymentPlan",
    "DeploymentOption",
    "DEFAULT_PLAN_BATCHES",
    "CounterEvent",
    "EVENTS",
    "EVENT_NAMES",
    "PHASES",
    "collect_counters",
    "magnitude_bucket",
]
