"""Hardware performance-counter model (paper Fig 1).

The paper motivates the dedicated inference emulator by showing that the
*forward phase of training* is not a good proxy for *inference*: CPU-bound
counter events (cpu.cycles, branches, context switches) behave consistently
across the two phases, while memory-bound events (cache/LLC/L1 misses,
branch-predictor loads) diverge — training keeps weights hot and updates
them in place, inference streams constant weights.

This module reproduces that counter profile analytically: each event has a
base rate per (virtual) FLOP and a per-phase multiplier; memory-bound events
get phase multipliers far apart, CPU-bound events get near-identical ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..errors import DeviceError
from ..rng import spawn_rng
from .device import DeviceSpec

#: Execution phases distinguished by Fig 1.
PHASES = ("train_forward", "inference")


@dataclass(frozen=True)
class CounterEvent:
    """One performance-counter event's analytical profile.

    ``rate_per_gflop`` is the event count per 10^9 virtual FLOPs executed;
    the phase multipliers encode how the training-forward and inference
    phases differ for this event.
    """

    name: str
    category: str  # "cpu", "memory", or "branch"
    rate_per_gflop: float
    train_forward_factor: float
    inference_factor: float


#: The 22 events of the paper's Fig 1.  CPU-bound events have nearly equal
#: phase factors; memory-bound ones diverge by 2-6x.
EVENTS: List[CounterEvent] = [
    CounterEvent("L1.dcache.load.misses", "memory", 2.0e6, 3.0, 1.0),
    CounterEvent("L1.dcache.loads", "memory", 4.0e8, 1.8, 1.0),
    CounterEvent("L1.dcache.stores", "memory", 1.5e8, 2.5, 1.0),
    CounterEvent("L1.icache.load.misses", "memory", 4.0e4, 2.2, 1.0),
    CounterEvent("LLC.load.misses", "memory", 3.0e5, 4.0, 1.0),
    CounterEvent("LLC.loads", "memory", 2.0e6, 3.5, 1.0),
    CounterEvent("LLC.store.misses", "memory", 1.0e5, 5.0, 1.0),
    CounterEvent("LLC.stores", "memory", 8.0e5, 4.5, 1.0),
    CounterEvent("br_inst_retired.all_branches", "branch", 6.0e7, 1.05, 1.0),
    CounterEvent("br_inst_retired.far_branch", "branch", 2.0e3, 1.1, 1.0),
    CounterEvent("branch.instructions", "branch", 6.0e7, 1.05, 1.0),
    CounterEvent("branch.load.misses", "memory", 1.5e4, 2.8, 1.0),
    CounterEvent("branch.loads", "memory", 3.0e6, 2.0, 1.0),
    CounterEvent("branch.misses", "branch", 5.0e5, 1.1, 1.0),
    CounterEvent("branches", "branch", 6.0e7, 1.05, 1.0),
    CounterEvent("bus.cycles", "cpu", 2.0e7, 1.02, 1.0),
    CounterEvent("cache.misses", "memory", 5.0e5, 3.8, 1.0),
    CounterEvent("cache.references", "memory", 1.0e7, 2.4, 1.0),
    CounterEvent("context.switches", "cpu", 1.2e2, 1.0, 1.0),
    CounterEvent("cpu.clock", "cpu", 1.0e9, 1.0, 1.0),
    CounterEvent("cpu.cycles", "cpu", 1.0e9, 1.02, 1.0),
    CounterEvent("cpu.migrations", "cpu", 6.0, 1.0, 1.0),
]

EVENT_NAMES = [event.name for event in EVENTS]


def collect_counters(
    virtual_flops_per_second: float,
    phase: str,
    device: DeviceSpec,
    seed: int = 0,
) -> Dict[str, float]:
    """Event counts per time unit (second) for one phase on one device.

    A small deterministic per-(device, event, phase) jitter keeps profiles
    from being implausibly exact while preserving the categorical
    CPU-consistent / memory-divergent structure.
    """
    if phase not in PHASES:
        raise DeviceError(f"unknown phase {phase!r}; expected one of {PHASES}")
    if virtual_flops_per_second <= 0:
        raise DeviceError("flop rate must be positive")
    gflops_per_second = virtual_flops_per_second / 1e9
    # Small caches push more traffic to the memory system.
    cache_pressure = 1.0 + 2.0 / math.log2(2.0 + device.llc_kb / 256.0)
    results: Dict[str, float] = {}
    for event in EVENTS:
        factor = (
            event.train_forward_factor
            if phase == "train_forward"
            else event.inference_factor
        )
        rate = event.rate_per_gflop * gflops_per_second * factor
        if event.category == "memory":
            rate *= cache_pressure
        jitter_rng = spawn_rng(seed, device.name, event.name, phase)
        rate *= float(jitter_rng.uniform(0.9, 1.1))
        results[event.name] = rate
    return results


def magnitude_bucket(rate: float) -> str:
    """Classify an event rate into Fig 1's legend buckets."""
    if rate >= 1e8:
        return ">1e8"
    if rate >= 1e6:
        return "1e8-1e6"
    if rate >= 1e4:
        return "1e6-1e4"
    if rate >= 1e2:
        return "1e4-1e2"
    return "<1e2"
