"""Analytical CPU execution model.

Converts a FLOP tally into simulated runtime/power on an emulated device,
reproducing the qualitative behaviours the paper measures:

* single-sample inference barely speeds up with more cores, while its
  energy *rises* (Fig 5a) — modelled by a batch-dependent parallel
  fraction fed into Amdahl's law;
* multi-sample inference scales with cores but with diminishing energy
  efficiency (Fig 5b);
* throughput grows with inference batch size, saturates, and decays once
  the working set spills past the cache/RAM thresholds (Fig 3b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..errors import DeviceError
from .device import GIGA, DeviceSpec

#: Fraction of the kernel that parallelises *within* a single sample
#: (intra-operator parallelism).  Small, so 1-sample inference cannot use
#: many cores — matching Fig 5a.
INTRA_SAMPLE_PARALLELISM = 0.2

#: SIMD/pipeline efficiency floor for tiny batches; efficiency approaches
#: 1.0 as the batch grows.
SIMD_EFFICIENCY_FLOOR = 0.6

#: Batch size at which SIMD efficiency is halfway to its ceiling.
SIMD_HALF_BATCH = 2.0

#: Slowdown per doubling of working set beyond the last-level cache.
CACHE_PENALTY_PER_DOUBLING = 0.10

#: Approximate activation bytes generated per forward FLOP (calibrated so a
#: ResNet-18-class workload produces a few MB of activations per sample).
ACTIVATION_BYTES_PER_FLOP = 0.0016

#: DRAM-contention slowdown per core beyond the second, applied when the
#: working set spills past the LLC: extra cores then fight for memory
#: bandwidth, so throughput saturates (Fig 5b's +9 % from 2 to 4 cores).
DRAM_CONTENTION_PER_CORE = 0.2

#: Allocated cores never fully sleep (spin loops, OS housekeeping), so the
#: power model charges at least this activity fraction per core — the
#: reason 4-core single-image inference costs more energy (Fig 5a).
CORE_ACTIVITY_FLOOR = 0.7


@dataclass(frozen=True)
class CpuExecution:
    """Result of simulating one kernel execution on CPU."""

    runtime_s: float
    power_w: float
    utilisation: float
    working_set_bytes: int

    @property
    def energy_j(self) -> float:
        return self.runtime_s * self.power_w


def parallel_fraction(batch_size: int, device: DeviceSpec) -> float:
    """Amdahl parallelisable fraction as a function of batch size.

    One sample exposes only intra-operator parallelism; each additional
    sample adds data parallelism, bounded by the device's serial fraction.
    """
    if batch_size < 1:
        raise DeviceError(f"batch size must be >= 1, got {batch_size}")
    data_parallel = (batch_size - 1) / batch_size
    combined = (
        INTRA_SAMPLE_PARALLELISM
        + (1.0 - INTRA_SAMPLE_PARALLELISM) * data_parallel
    )
    return (1.0 - device.serial_fraction) * combined


def amdahl_speedup(cores: int, fraction: float) -> float:
    """Classic Amdahl's-law speed-up for ``cores`` workers."""
    return 1.0 / ((1.0 - fraction) + fraction / cores)


def simd_efficiency(batch_size: int) -> float:
    """Vector-unit utilisation: poor for tiny batches, ~1 for large ones."""
    ramp = batch_size / (batch_size + SIMD_HALF_BATCH)
    return SIMD_EFFICIENCY_FLOOR + (1.0 - SIMD_EFFICIENCY_FLOOR) * ramp


def memory_penalty(working_set_bytes: int, device: DeviceSpec) -> float:
    """Multiplicative slowdown from cache spill and RAM exhaustion.

    Beyond the LLC the penalty grows logarithmically (more DRAM traffic);
    beyond physical memory it grows quadratically (thrashing), producing
    the post-saturation throughput decay of Fig 3b.
    """
    penalty = 1.0
    llc_bytes = device.llc_kb * 1024.0
    if working_set_bytes > llc_bytes:
        penalty += CACHE_PENALTY_PER_DOUBLING * math.log2(
            working_set_bytes / llc_bytes
        )
    ram_bytes = device.memory_gb * GIGA
    if working_set_bytes > ram_bytes:
        penalty *= (working_set_bytes / ram_bytes) ** 2
    return penalty


def working_set(
    param_bytes: float, activation_bytes_per_sample: float, batch_size: int,
    training: bool = False,
) -> int:
    """Resident bytes during execution.

    Training roughly triples parameter residency (weights + gradients +
    momentum) and keeps all activations for the backward pass — the paper's
    observation (§2.1) that training memory use far exceeds inference.
    """
    factor = 3.0 if training else 1.0
    activations = activation_bytes_per_sample * batch_size
    if training:
        activations *= 2.0  # forward + retained for backward
    return int(param_bytes * factor + activations)


def run_on_cpu(
    flops: float,
    param_bytes: float,
    activation_bytes_per_sample: float,
    batch_size: int,
    device: DeviceSpec,
    cores: int = 1,
    frequency_ghz: float = None,
    training: bool = False,
) -> CpuExecution:
    """Simulate executing ``flops`` total FLOPs of batched kernel work."""
    cores = device.validate_cores(cores)
    if frequency_ghz is None:
        frequency_ghz = device.max_frequency_ghz
    else:
        device.validate_frequency(frequency_ghz)
    if flops <= 0:
        raise DeviceError(f"flops must be positive, got {flops}")

    single_core_peak = device.peak_cpu_flops(1, frequency_ghz)
    fraction = parallel_fraction(batch_size, device)
    speedup = amdahl_speedup(cores, fraction)
    efficiency = simd_efficiency(batch_size)
    ws = working_set(
        param_bytes, activation_bytes_per_sample, batch_size, training
    )
    if ws > device.llc_kb * 1024.0 and cores > 2:
        # Memory-bound kernels: cores beyond the second contend for DRAM.
        speedup /= 1.0 + DRAM_CONTENTION_PER_CORE * (cores - 2)
        speedup = max(speedup, 1.0)
    penalty = memory_penalty(ws, device)
    runtime = flops * penalty / (single_core_peak * efficiency * speedup)
    # Cores are busy in proportion to how well the kernel parallelises,
    # but never below the spin/housekeeping floor.
    utilisation = max(min(1.0, speedup / cores), CORE_ACTIVITY_FLOOR)
    power = device.cpu_power_w(cores, frequency_ghz, utilisation)
    return CpuExecution(
        runtime_s=runtime,
        power_w=power,
        utilisation=utilisation,
        working_set_bytes=ws,
    )
