"""Emulated device specifications.

A :class:`DeviceSpec` captures the analytical cost-model inputs for one
platform: compute throughput, core scaling behaviour, memory hierarchy and
power draw.  The registry in :mod:`repro.hardware.registry` instantiates the
paper's platforms — the three edge devices of §2.1 (ARMv7 board, Raspberry
Pi 3B+, Intel i7 NUC) plus the Titan RTX tuning server of §5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import DeviceError

GIGA = 1e9
MEGA = 1e6
KILO = 1e3


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of an emulated platform.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"raspberrypi3b"``.
    device_class:
        ``"edge"`` (inference target) or ``"server"`` (tuning host).
    cores:
        Number of physical CPU cores available.
    frequencies_ghz:
        Selectable CPU frequencies (a tunable system parameter); the last
        entry is the nominal maximum.
    flops_per_cycle:
        Effective FLOPs per cycle per core (SIMD width x issue rate).
    serial_fraction:
        Amdahl serial fraction of the inference/training kernels on this
        platform; bounds multi-core speed-up.
    memory_gb / llc_kb / memory_bandwidth_gbps:
        Memory capacity, last-level cache size, DRAM bandwidth.
    idle_power_w / core_power_w:
        Package idle power and incremental per-core active power at the
        nominal frequency.  Power scales ~quadratically with frequency.
    gpus / gpu_flops / gpu_memory_gb / gpu_idle_power_w / gpu_power_w:
        GPU pool of the platform (zero on edge devices — the paper's
        inference server is CPU-only, §3.2).
    interconnect_gbps:
        GPU-to-GPU bandwidth for multi-GPU gradient synchronisation.
    sync_latency_s:
        Fixed per-step collective-launch latency per extra GPU.
    """

    name: str
    device_class: str
    cores: int
    frequencies_ghz: Tuple[float, ...]
    flops_per_cycle: float
    serial_fraction: float
    memory_gb: float
    llc_kb: float
    memory_bandwidth_gbps: float
    idle_power_w: float
    core_power_w: float
    gpus: int = 0
    gpu_flops: float = 0.0
    gpu_memory_gb: float = 0.0
    gpu_idle_power_w: float = 0.0
    gpu_power_w: float = 0.0
    interconnect_gbps: float = 0.0
    sync_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.device_class not in ("edge", "server"):
            raise DeviceError(
                f"device_class must be 'edge' or 'server', "
                f"got {self.device_class!r}"
            )
        if self.cores <= 0:
            raise DeviceError(f"{self.name}: cores must be positive")
        if not self.frequencies_ghz or any(
            f <= 0 for f in self.frequencies_ghz
        ):
            raise DeviceError(f"{self.name}: invalid frequency list")
        if tuple(sorted(self.frequencies_ghz)) != tuple(self.frequencies_ghz):
            raise DeviceError(f"{self.name}: frequencies must be ascending")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise DeviceError(f"{self.name}: serial_fraction out of range")
        if self.gpus < 0 or (self.gpus > 0 and self.gpu_flops <= 0):
            raise DeviceError(f"{self.name}: inconsistent GPU specification")

    # -- derived quantities ------------------------------------------------
    @property
    def max_frequency_ghz(self) -> float:
        return self.frequencies_ghz[-1]

    def validate_frequency(self, frequency_ghz: float) -> float:
        if frequency_ghz not in self.frequencies_ghz:
            raise DeviceError(
                f"{self.name}: frequency {frequency_ghz} GHz not in "
                f"{self.frequencies_ghz}"
            )
        return frequency_ghz

    def validate_cores(self, cores: int) -> int:
        if not 1 <= cores <= self.cores:
            raise DeviceError(
                f"{self.name}: cores must be in [1, {self.cores}], got {cores}"
            )
        return cores

    def validate_gpus(self, gpus: int) -> int:
        if not 0 <= gpus <= self.gpus:
            raise DeviceError(
                f"{self.name}: gpus must be in [0, {self.gpus}], got {gpus}"
            )
        return gpus

    def peak_cpu_flops(self, cores: int, frequency_ghz: float) -> float:
        """Aggregate peak FLOP/s of ``cores`` at ``frequency_ghz``."""
        return cores * frequency_ghz * GIGA * self.flops_per_cycle

    def cpu_power_w(self, cores: int, frequency_ghz: float, utilisation: float) -> float:
        """Package power: idle + active-core dynamic power.

        Dynamic power scales with f^2 (voltage tracks frequency) and with
        the fraction of time the cores are busy.
        """
        frequency_ratio = frequency_ghz / self.max_frequency_ghz
        dynamic = cores * self.core_power_w * frequency_ratio**2
        return self.idle_power_w + dynamic * max(0.0, min(utilisation, 1.0))
