"""Emulator facade: FLOP tallies in, simulated measurements out.

This is the component the paper calls *simulating the edge devices in the
tuning server* (§2.1, design option 3): instead of offloading models to
physical boards, the Inference Tuning Server runs candidate configurations
through this analytical model and feeds the estimates back into the tuning
objective.

Because the reproduction's numpy models are scaled-down, the emulator maps
their FLOP/parameter tallies onto realistic workload magnitudes with two
calibration constants (``flops_scale``, ``param_scale``) chosen so the
ResNet-like IC workload lands near real ResNet-18 numbers (~2 GFLOPs and
~47 MB of weights per sample).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import DeviceError
from ..telemetry import InferenceMeasurement, TrainingMeasurement
from .cpu import ACTIVATION_BYTES_PER_FLOP, run_on_cpu
from .device import DeviceSpec
from .gpu import run_training_on_gpus
from .registry import get_device

#: Virtual FLOPs represented by one measured FLOP of the scaled-down models.
DEFAULT_FLOPS_SCALE = 75_000.0

#: Virtual parameters represented by one actual parameter.
DEFAULT_PARAM_SCALE = 1_000.0

#: Virtual training samples represented by one actual sample: the synthetic
#: datasets hold ~2k samples standing in for 50k-160k-file corpora
#: (Table 1), so training cost is scaled up accordingly.
DEFAULT_SAMPLE_SCALE = 500.0

#: Bytes per (fp32) parameter.
PARAM_BYTES = 4.0


class Emulator:
    """Analytical performance/energy emulator for training and inference."""

    def __init__(
        self,
        flops_scale: float = DEFAULT_FLOPS_SCALE,
        param_scale: float = DEFAULT_PARAM_SCALE,
        sample_scale: float = DEFAULT_SAMPLE_SCALE,
    ):
        if flops_scale <= 0 or param_scale <= 0 or sample_scale <= 0:
            raise DeviceError("emulator scales must be positive")
        self.flops_scale = float(flops_scale)
        self.param_scale = float(param_scale)
        self.sample_scale = float(sample_scale)

    # -- unit mapping -------------------------------------------------------
    def virtual_flops(self, measured_flops: float) -> float:
        return measured_flops * self.flops_scale

    def virtual_param_bytes(self, parameter_count: int) -> float:
        return parameter_count * self.param_scale * PARAM_BYTES

    def activation_bytes_per_sample(self, forward_flops_per_sample: float) -> float:
        return (
            self.virtual_flops(forward_flops_per_sample)
            * ACTIVATION_BYTES_PER_FLOP
        )

    # -- training ---------------------------------------------------------------
    def measure_training(
        self,
        train_total_flops: float,
        forward_flops_per_sample: float,
        parameter_count: int,
        samples_seen: int,
        batch_size: int,
        device: DeviceSpec | str = "titan-server",
        gpus: int = 1,
        cores: Optional[int] = None,
        frequency_ghz: Optional[float] = None,
    ) -> TrainingMeasurement:
        """Simulate a training run on ``device``.

        ``gpus > 0`` routes through the multi-GPU model (the tuning server);
        ``gpus == 0`` trains on CPU (edge retraining scenarios).
        """
        spec = get_device(device) if isinstance(device, str) else device
        flops = self.virtual_flops(train_total_flops) * self.sample_scale
        param_bytes = self.virtual_param_bytes(parameter_count)
        if gpus > 0:
            steps = max(
                1,
                int(samples_seen * self.sample_scale) // max(batch_size, 1),
            )
            execution = run_training_on_gpus(
                total_flops=flops,
                steps=steps,
                param_bytes=param_bytes,
                batch_size=batch_size,
                device=spec,
                gpus=gpus,
            )
            return TrainingMeasurement(
                runtime_s=execution.runtime_s,
                energy_j=execution.energy_j,
                power_w=execution.power_w,
                working_set_bytes=execution.working_set_bytes,
                device=spec.name,
                gpus=gpus,
                cores=cores or spec.cores,
            )
        execution = run_on_cpu(
            flops=flops,
            param_bytes=param_bytes,
            activation_bytes_per_sample=self.activation_bytes_per_sample(
                forward_flops_per_sample
            ),
            batch_size=batch_size,
            device=spec,
            cores=cores or spec.cores,
            frequency_ghz=frequency_ghz,
            training=True,
        )
        return TrainingMeasurement(
            runtime_s=execution.runtime_s,
            energy_j=execution.energy_j,
            power_w=execution.power_w,
            working_set_bytes=execution.working_set_bytes,
            device=spec.name,
            gpus=0,
            cores=cores or spec.cores,
        )

    # -- inference -----------------------------------------------------------------
    def measure_inference(
        self,
        forward_flops_per_sample: float,
        parameter_count: int,
        batch_size: int,
        device: DeviceSpec | str,
        cores: int = 1,
        frequency_ghz: Optional[float] = None,
    ) -> InferenceMeasurement:
        """Simulate steady-state batched inference on an edge device."""
        spec = get_device(device) if isinstance(device, str) else device
        if batch_size < 1:
            raise DeviceError(f"batch size must be >= 1, got {batch_size}")
        flops = self.virtual_flops(forward_flops_per_sample) * batch_size
        execution = run_on_cpu(
            flops=flops,
            param_bytes=self.virtual_param_bytes(parameter_count),
            activation_bytes_per_sample=self.activation_bytes_per_sample(
                forward_flops_per_sample
            ),
            batch_size=batch_size,
            device=spec,
            cores=cores,
            frequency_ghz=frequency_ghz,
            training=False,
        )
        throughput = batch_size / execution.runtime_s
        energy_per_sample = execution.energy_j / batch_size
        return InferenceMeasurement(
            batch_latency_s=execution.runtime_s,
            throughput_sps=throughput,
            energy_per_sample_j=energy_per_sample,
            power_w=execution.power_w,
            working_set_bytes=execution.working_set_bytes,
            device=spec.name,
            batch_size=batch_size,
            cores=cores,
        )
