"""Analytical multi-GPU training model.

Reproduces the paper's Fig 4 behaviours:

* with a *small* batch (32), adding GPUs makes training **slower** — the
  per-step gradient synchronisation dominates the shrinking per-GPU
  compute, degrading runtime by up to ~120 %;
* with a *large* batch (1024), runtime improves with GPUs but
  sub-linearly, while energy **increases** because the extra devices burn
  idle and communication power.

The model is classic data parallelism: each optimisation step computes on
``batch/g`` samples per GPU, then all-reduces the gradients.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DeviceError
from .device import GIGA, DeviceSpec

#: Per-GPU batch size at which a GPU reaches half of its peak utilisation;
#: GPUs need reasonably big tiles to saturate their SMs.
GPU_HALF_BATCH = 24.0

#: Host-side input pipeline and kernel-launch overhead per step, seconds.
STEP_LAUNCH_OVERHEAD_S = 1.2e-3


@dataclass(frozen=True)
class GpuExecution:
    """Result of simulating a multi-GPU training run."""

    runtime_s: float
    power_w: float
    compute_fraction: float
    working_set_bytes: int

    @property
    def energy_j(self) -> float:
        return self.runtime_s * self.power_w


def gpu_efficiency(batch_per_gpu: float) -> float:
    """SM utilisation as a function of the per-GPU batch."""
    return batch_per_gpu / (batch_per_gpu + GPU_HALF_BATCH)


def allreduce_time_s(param_bytes: float, gpus: int, device: DeviceSpec) -> float:
    """Ring all-reduce cost per step: 2(g-1)/g of the gradient volume."""
    if gpus <= 1:
        return 0.0
    bandwidth_bytes = device.interconnect_gbps * GIGA / 8.0
    volume = 2.0 * (gpus - 1) / gpus * param_bytes
    return volume / bandwidth_bytes + device.sync_latency_s * gpus


def run_training_on_gpus(
    total_flops: float,
    steps: int,
    param_bytes: float,
    batch_size: int,
    device: DeviceSpec,
    gpus: int,
) -> GpuExecution:
    """Simulate a training run of ``steps`` optimisation steps.

    ``total_flops`` is the full training FLOP tally (forward + backward),
    spread evenly over the steps.
    """
    gpus = device.validate_gpus(gpus)
    if gpus == 0:
        raise DeviceError("run_training_on_gpus needs at least one GPU")
    if steps <= 0 or total_flops <= 0:
        raise DeviceError("steps and total_flops must be positive")
    batch_per_gpu = max(batch_size / gpus, 1.0)
    efficiency = gpu_efficiency(batch_per_gpu)
    flops_per_step = total_flops / steps
    compute_per_step = flops_per_step / (gpus * device.gpu_flops * efficiency)
    comm_per_step = allreduce_time_s(param_bytes, gpus, device)
    step_time = compute_per_step + comm_per_step + STEP_LAUNCH_OVERHEAD_S
    runtime = step_time * steps
    compute_fraction = compute_per_step / step_time
    # GPUs draw near-peak power while computing (memory clocks stay up
    # regardless of SM occupancy), idle-ish while syncing.
    per_gpu_power = (
        device.gpu_idle_power_w
        + device.gpu_power_w * compute_fraction
    )
    host_power = device.idle_power_w + 2.0 * device.core_power_w
    power = gpus * per_gpu_power + host_power
    working_set = int(param_bytes * 3.0 * gpus)  # weights+grads+momentum per GPU
    return GpuExecution(
        runtime_s=runtime,
        power_w=power,
        compute_fraction=compute_fraction,
        working_set_bytes=working_set,
    )
