"""The "real" edge device: emulator plus structured model error.

The paper validates its inference emulation against physical boards and
reports percent errors that are small for most configurations (≤~20 %,
§2.1 / Fig 15).  To reproduce that experiment without hardware, the
*ground-truth* device is modelled as the emulator's estimate deformed by a
structured, deterministic perturbation:

* a configuration-dependent multiplicative factor (log-normal-ish, from a
  hashed seed) standing in for unmodelled microarchitectural effects;
* a fixed per-call overhead (interrupts, frequency governor latency) that
  hurts small batches more — a *systematic* bias, not just noise.

Fig 15's error distribution then falls out of comparing the raw emulator
against this ground-truth model across the inference search space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..rng import spawn_rng
from ..telemetry import InferenceMeasurement
from .device import DeviceSpec
from .emulator import Emulator
from .registry import get_device

#: Standard deviation of the multiplicative log-error.
MODEL_ERROR_SIGMA = 0.12

#: Fixed overhead per inference call on a real device, seconds.
REAL_CALL_OVERHEAD_S = 2.0e-3

#: Extra power draw unaccounted by the analytical model (peripherals), W.
REAL_POWER_BIAS_W = 0.35


@dataclass
class RealEdgeDevice:
    """Ground-truth stand-in for a physical edge board."""

    device: DeviceSpec
    emulator: Emulator
    seed: int = 0

    @classmethod
    def of(
        cls, device: DeviceSpec | str, emulator: Optional[Emulator] = None,
        seed: int = 0,
    ) -> "RealEdgeDevice":
        spec = get_device(device) if isinstance(device, str) else device
        return cls(device=spec, emulator=emulator or Emulator(), seed=seed)

    def _error_factor(self, *context) -> float:
        rng = spawn_rng(self.seed, self.device.name, *context)
        return math.exp(float(rng.normal(0.0, MODEL_ERROR_SIGMA)))

    def measure_inference(
        self,
        forward_flops_per_sample: float,
        parameter_count: int,
        batch_size: int,
        cores: int = 1,
        frequency_ghz: Optional[float] = None,
    ) -> InferenceMeasurement:
        """Measure inference as the physical board would report it."""
        estimate = self.emulator.measure_inference(
            forward_flops_per_sample=forward_flops_per_sample,
            parameter_count=parameter_count,
            batch_size=batch_size,
            device=self.device,
            cores=cores,
            frequency_ghz=frequency_ghz,
        )
        latency_factor = self._error_factor(
            "latency", batch_size, cores, parameter_count
        )
        power_factor = self._error_factor(
            "power", batch_size, cores, parameter_count
        )
        real_latency = (
            estimate.batch_latency_s * latency_factor + REAL_CALL_OVERHEAD_S
        )
        real_power = estimate.power_w * power_factor + REAL_POWER_BIAS_W
        throughput = batch_size / real_latency
        energy_per_sample = real_power * real_latency / batch_size
        return InferenceMeasurement(
            batch_latency_s=real_latency,
            throughput_sps=throughput,
            energy_per_sample_j=energy_per_sample,
            power_w=real_power,
            working_set_bytes=estimate.working_set_bytes,
            device=self.device.name,
            batch_size=batch_size,
            cores=cores,
        )
