"""Deployment planner: pick device configurations that meet an SLO.

A thin decision layer over the emulator that answers the question
EdgeTune's users face after tuning (paper §1: "the tuned model might be
deployed across different edge devices"): given an architecture and
service-level objectives — minimum throughput and/or maximum J/sample —
which (device, cores, frequency, batch) configurations qualify, and which
is best under a chosen preference?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigurationError, DeviceError
from ..telemetry import InferenceMeasurement
from .emulator import Emulator
from .registry import edge_device_names, get_device

#: Batch sizes swept per device by default.
DEFAULT_PLAN_BATCHES = (1, 4, 16, 64)


@dataclass(frozen=True)
class DeploymentOption:
    """One qualifying deployment configuration."""

    device: str
    cores: int
    frequency_ghz: float
    batch_size: int
    measurement: InferenceMeasurement

    @property
    def throughput_sps(self) -> float:
        return self.measurement.throughput_sps

    @property
    def energy_per_sample_j(self) -> float:
        return self.measurement.energy_per_sample_j


@dataclass
class DeploymentPlan:
    """All qualifying options, ranked according to the preference."""

    options: List[DeploymentOption]
    min_throughput_sps: Optional[float]
    max_energy_per_sample_j: Optional[float]
    prefer: str

    @property
    def best(self) -> Optional[DeploymentOption]:
        return self.options[0] if self.options else None

    @property
    def feasible(self) -> bool:
        return bool(self.options)


class DeploymentPlanner:
    """Sweeps emulated devices and ranks SLO-compliant configurations."""

    def __init__(
        self,
        emulator: Optional[Emulator] = None,
        devices: Optional[Sequence[str]] = None,
        batch_sizes: Sequence[int] = DEFAULT_PLAN_BATCHES,
    ):
        self.emulator = emulator or Emulator()
        self.devices = list(devices) if devices else edge_device_names()
        if not self.devices:
            raise DeviceError("planner needs at least one device")
        if not batch_sizes or any(b < 1 for b in batch_sizes):
            raise ConfigurationError("batch sizes must be positive")
        self.batch_sizes = list(batch_sizes)

    def plan(
        self,
        forward_flops_per_sample: float,
        parameter_count: int,
        min_throughput_sps: Optional[float] = None,
        max_energy_per_sample_j: Optional[float] = None,
        prefer: str = "energy",
    ) -> DeploymentPlan:
        """Enumerate, filter by the SLOs, and rank.

        ``prefer`` is ``"energy"`` (least J/sample first) or
        ``"throughput"`` (most samples/s first).
        """
        if prefer not in ("energy", "throughput"):
            raise ConfigurationError(
                f"prefer must be 'energy' or 'throughput', got {prefer!r}"
            )
        options: List[DeploymentOption] = []
        for device_name in self.devices:
            spec = get_device(device_name)
            for cores in range(1, spec.cores + 1):
                for frequency in spec.frequencies_ghz:
                    for batch in self.batch_sizes:
                        measurement = self.emulator.measure_inference(
                            forward_flops_per_sample=forward_flops_per_sample,
                            parameter_count=parameter_count,
                            batch_size=batch,
                            device=spec,
                            cores=cores,
                            frequency_ghz=frequency,
                        )
                        if (
                            min_throughput_sps is not None
                            and measurement.throughput_sps < min_throughput_sps
                        ):
                            continue
                        if (
                            max_energy_per_sample_j is not None
                            and measurement.energy_per_sample_j
                            > max_energy_per_sample_j
                        ):
                            continue
                        options.append(
                            DeploymentOption(
                                device=spec.name,
                                cores=cores,
                                frequency_ghz=frequency,
                                batch_size=batch,
                                measurement=measurement,
                            )
                        )
        if prefer == "energy":
            options.sort(key=lambda o: (o.energy_per_sample_j,
                                        -o.throughput_sps))
        else:
            options.sort(key=lambda o: (-o.throughput_sps,
                                        o.energy_per_sample_j))
        return DeploymentPlan(
            options=options,
            min_throughput_sps=min_throughput_sps,
            max_energy_per_sample_j=max_energy_per_sample_j,
            prefer=prefer,
        )
