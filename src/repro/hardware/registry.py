"""Known emulated platforms.

The paper's testbed (§2.1, §5.1): three edge devices used for inference
validation — an ARMv7 board, a Raspberry Pi 3 Model B+ and an Intel
i7-7567U NUC — plus the Titan RTX GPU server hosting the tuning process.
Specifications follow the published hardware characteristics at the level
of fidelity the analytical cost model needs.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import DeviceError
from .device import DeviceSpec

DEVICES: Dict[str, DeviceSpec] = {
    # ARMv7 Processor rev 4 (v7l), 4 cores, 4 GB RAM (paper platform 1).
    "armv7": DeviceSpec(
        name="armv7",
        device_class="edge",
        cores=4,
        frequencies_ghz=(0.6, 0.9, 1.2),
        flops_per_cycle=4.0,  # NEON: 4 single-precision lanes
        serial_fraction=0.10,
        memory_gb=4.0,
        llc_kb=512.0,
        memory_bandwidth_gbps=3.0,
        idle_power_w=0.8,
        core_power_w=1.3,
    ),
    # Raspberry Pi 3 Model B+ (v1.3), 4 cores, 1 GB RAM (paper platform 2).
    "raspberrypi3b": DeviceSpec(
        name="raspberrypi3b",
        device_class="edge",
        cores=4,
        frequencies_ghz=(0.6, 1.0, 1.4),
        flops_per_cycle=4.0,
        serial_fraction=0.12,
        memory_gb=1.0,
        llc_kb=512.0,
        memory_bandwidth_gbps=2.1,
        idle_power_w=1.0,
        core_power_w=1.5,
    ),
    # Intel Core i7-7567U, 2 cores / 4 threads, 16 GB RAM (paper platform 3).
    # Modelled with 4 schedulable cores to expose the paper's 1/2/4-core
    # inference sweep (Fig 5).
    "i7nuc": DeviceSpec(
        name="i7nuc",
        device_class="edge",
        cores=4,
        frequencies_ghz=(1.2, 2.4, 3.5),
        flops_per_cycle=16.0,  # AVX2 FMA
        serial_fraction=0.08,
        memory_gb=16.0,
        llc_kb=4096.0,
        memory_bandwidth_gbps=34.0,
        idle_power_w=4.0,
        core_power_w=7.0,
    ),
    # Tuning server: Titan RTX (Turing, 24 GB) GPUs; the paper sweeps 1-8
    # GPUs for training trials (Fig 4, §5.1).
    "titan-server": DeviceSpec(
        name="titan-server",
        device_class="server",
        cores=16,
        frequencies_ghz=(2.1, 2.9),
        flops_per_cycle=32.0,
        serial_fraction=0.05,
        memory_gb=128.0,
        llc_kb=22528.0,
        memory_bandwidth_gbps=90.0,
        idle_power_w=60.0,
        core_power_w=10.0,
        gpus=8,
        gpu_flops=16.3e12,  # Titan RTX FP32 peak
        gpu_memory_gb=24.0,
        gpu_idle_power_w=60.0,
        gpu_power_w=280.0,
        interconnect_gbps=22.0,  # PCIe effective under all-reduce contention
        sync_latency_s=45e-6,
    ),
}


def device_names() -> List[str]:
    return sorted(DEVICES)


def edge_device_names() -> List[str]:
    return sorted(
        name for name, spec in DEVICES.items() if spec.device_class == "edge"
    )


def get_device(name: str) -> DeviceSpec:
    try:
        return DEVICES[name.lower()]
    except KeyError:
        raise DeviceError(
            f"unknown device {name!r}; expected one of {device_names()}"
        ) from None
