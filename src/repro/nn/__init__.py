"""From-scratch numpy neural-network engine.

Provides layers, losses, optimizers, a FLOP cost model and a budgeted
training loop — the substrate standing in for PyTorch in this reproduction
(see DESIGN.md §2).
"""

from .conv import (
    Conv1d,
    Conv2d,
    GlobalAvgPool1d,
    GlobalAvgPool2d,
    MaxPool1d,
    MaxPool2d,
)
from .kernels import get_backend, set_backend, use_backend
from .layers import (
    BatchNorm1d,
    Dropout,
    Flatten,
    Linear,
    ReLU,
    Residual,
    Sequential,
    Tanh,
)
from .losses import CrossEntropyLoss, DetectionLoss, Loss, MSELoss, softmax
from .metrics import (
    box_iou,
    confusion_matrix,
    macro_f1,
    precision_recall,
    top_k_accuracy,
)
from .module import Module, ParamTensor
from .optimizers import (
    SGD,
    Adam,
    ConstantLR,
    CosineLR,
    LRSchedule,
    Optimizer,
    StepDecayLR,
    build_optimizer,
)
from .recurrent import ElmanRNN, SequenceStride
from .serialize import load_model, load_state_dict, save_model, state_dict
from .trainer import (
    BACKWARD_FLOPS_FACTOR,
    TrainingResult,
    evaluate_accuracy,
    train_model,
)

__all__ = [
    "Module",
    "ParamTensor",
    "Linear",
    "ReLU",
    "Tanh",
    "Dropout",
    "Flatten",
    "BatchNorm1d",
    "Residual",
    "Sequential",
    "Conv1d",
    "Conv2d",
    "MaxPool1d",
    "MaxPool2d",
    "GlobalAvgPool1d",
    "GlobalAvgPool2d",
    "ElmanRNN",
    "SequenceStride",
    "Loss",
    "CrossEntropyLoss",
    "MSELoss",
    "DetectionLoss",
    "softmax",
    "Optimizer",
    "SGD",
    "Adam",
    "LRSchedule",
    "ConstantLR",
    "StepDecayLR",
    "CosineLR",
    "build_optimizer",
    "TrainingResult",
    "train_model",
    "evaluate_accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "precision_recall",
    "macro_f1",
    "box_iou",
    "state_dict",
    "load_state_dict",
    "save_model",
    "load_model",
    "BACKWARD_FLOPS_FACTOR",
    "get_backend",
    "set_backend",
    "use_backend",
]
