"""Batched-trial training: K trials stacked along a leading tensor axis.

The PR 4 kernel pass made a single trial ~2x faster; the next win is
training *many trials at once*.  Configurations sampled by the searchers
frequently share architecture shapes and differ only in scalars (lr,
momentum, dropout), so K such trials can be stacked into one leading axis
and run as a single fused forward/backward per step — K small gemms become
one large BLAS-efficient ``np.matmul``, and the Python dispatch overhead
(which dominates at the paper's tiny real batch sizes) is paid once per
layer instead of once per layer per trial.

The contract that makes this safe is **bit-identity**: every lane of a
stacked run must produce exactly the floating-point trajectory of the
serial :func:`repro.nn.trainer.train_model` run with the same seed.  The
implementation therefore mirrors the serial op sequences element-for-
element:

* stacked gemms ``(K, n, F) @ (K, F, O)`` reduce per lane to the same
  2-D gemm the serial layer runs (verified bitwise for the transposed
  forms and ``out=`` variants used here);
* reductions, fancy-index picks and in-place optimizer updates operate
  lane-independently, in the serial operand order;
* per-lane RNG streams are drawn from the same derived seeds the serial
  loop would use, in the same order (dropout masks steal the serial
  modules' live generators);
* divergence is handled by *masking*: the serial loop checks the loss
  for finiteness **before** backward/step, so a lane that goes
  non-finite is frozen before its weights could change — other lanes
  proceed untouched because no batched op ever mixes lanes.

Conv layers flatten the lane axis into the batch axis ``(K, n, …) →
(K·n, …)`` so the existing :mod:`repro.nn.kernels` fast im2col/maxpool
paths are reused verbatim, with stacked gemms around them.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..datasets.base import Dataset
from ..errors import BudgetError, ConfigurationError, ShapeError
from ..faults import corrupt_nan
from ..rng import SeedLike, ensure_seed, spawn_rng
from . import kernels
from .conv import (
    Conv1d,
    Conv2d,
    GlobalAvgPool1d,
    GlobalAvgPool2d,
    MaxPool1d,
    MaxPool2d,
    _out_length,
)
from .layers import (
    Dropout,
    Flatten,
    Linear,
    ReLU,
    Residual,
    Sequential,
    Tanh,
)
from .losses import CrossEntropyLoss, DetectionLoss, Loss
from .module import Module, ParamTensor
from .trainer import BACKWARD_FLOPS_FACTOR, TrainingResult, evaluate_accuracy


class UnstackableModelError(ShapeError):
    """The model tree contains a layer the batched path cannot stack."""


# ---------------------------------------------------------------------------
# Stacked parameters and scratch management
# ---------------------------------------------------------------------------


class BatchedParam:
    """K per-trial :class:`ParamTensor`\\ s stacked on a leading axis.

    ``value``/``grad`` have shape ``(K,) + source_shape``; lane ``k`` is
    trial ``k``'s tensor.  :meth:`unstack` writes the trained values back
    into the source tensors so the untouched serial evaluation path (and
    artifact serialization) sees ordinary per-trial models.
    """

    __slots__ = ("sources", "value", "grad")

    def __init__(self, sources: Sequence[ParamTensor]):
        self.sources = list(sources)
        self.value = np.stack([p.value for p in self.sources])
        self.grad = np.zeros_like(self.value)

    @property
    def lanes(self) -> int:
        return self.value.shape[0]

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def unstack(self) -> None:
        for lane, parameter in enumerate(self.sources):
            parameter.value[...] = self.value[lane]


def _buffered_matmul(
    a: np.ndarray, b: np.ndarray, holder: Dict[str, np.ndarray], key: str
) -> np.ndarray:
    """Stacked gemm into a persistent per-layer buffer (zero-alloc steps)."""
    shape = (a.shape[0], a.shape[1], b.shape[-1])
    buffer = holder.get(key)
    if buffer is None or buffer.shape != shape:
        buffer = np.empty(shape, dtype=np.float64)
        holder[key] = buffer
    np.matmul(a, b, out=buffer)
    return buffer


def _zeroed_buffer(
    shape: tuple, holder: Dict[str, np.ndarray], key: str
) -> np.ndarray:
    buffer = holder.get(key)
    if buffer is None or buffer.shape != shape:
        buffer = np.zeros(shape, dtype=np.float64)
        holder[key] = buffer
    else:
        buffer.fill(0.0)
    return buffer


# ---------------------------------------------------------------------------
# Layer twins — each mirrors its serial counterpart's op sequence per lane
# ---------------------------------------------------------------------------


class BatchedModule:
    """Base class for stacked layer twins (lane axis leads every tensor)."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[BatchedParam]:
        return []


class BSequential(BatchedModule):
    def __init__(self, twins: Sequence[BatchedModule]):
        self.twins = list(twins)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        for twin in self.twins:
            inputs = twin.forward(inputs)
        return inputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for twin in reversed(self.twins):
            grad_output = twin.backward(grad_output)
        return grad_output

    def parameters(self) -> List[BatchedParam]:
        collected: List[BatchedParam] = []
        for twin in self.twins:
            collected.extend(twin.parameters())
        return collected


class BResidual(BatchedModule):
    def __init__(self, inner: BatchedModule):
        self.inner = inner

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return self.inner.forward(inputs) + inputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.inner.backward(grad_output) + grad_output

    def parameters(self) -> List[BatchedParam]:
        return self.inner.parameters()


class BLinear(BatchedModule):
    def __init__(self, lanes: Sequence[Linear]):
        self.weight = BatchedParam([m.weight for m in lanes])
        self.bias = BatchedParam([m.bias for m in lanes])
        self._inputs: Optional[np.ndarray] = None
        self._scratch: Dict[str, np.ndarray] = {}

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._inputs = inputs
        out = _buffered_matmul(inputs, self.weight.value, self._scratch, "fwd")
        out += self.bias.value[:, None, :]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self.weight.grad += _buffered_matmul(
            self._inputs.transpose(0, 2, 1), grad_output,
            self._scratch, "wgrad",
        )
        self.bias.grad += grad_output.sum(axis=1)
        return _buffered_matmul(
            grad_output, self.weight.value.transpose(0, 2, 1),
            self._scratch, "bwd",
        )

    def parameters(self) -> List[BatchedParam]:
        return [self.weight, self.bias]


class BReLU(BatchedModule):
    def __init__(self, lanes: Sequence[ReLU]):
        self._mask: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None
        self._grad: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if self._mask is not None and self._mask.shape == inputs.shape:
            np.greater(inputs, 0, out=self._mask)
        else:
            self._mask = inputs > 0
        if self._out is not None and self._out.shape == inputs.shape:
            return np.multiply(inputs, self._mask, out=self._out)
        self._out = inputs * self._mask
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._grad is not None and self._grad.shape == grad_output.shape:
            return np.multiply(grad_output, self._mask, out=self._grad)
        self._grad = grad_output * self._mask
        return self._grad


class BTanh(BatchedModule):
    def __init__(self, lanes: Sequence[Tanh]):
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._output ** 2)


class BDropout(BatchedModule):
    """Per-lane dropout with per-lane rates and *shared* serial RNGs.

    Each lane draws its mask from the serial module's own generator, in
    lane order, so the stream a lane consumes is exactly the stream the
    serial run would have consumed.  Rate-0 lanes get a mask of ones
    (``x * 1.0`` is bitwise ``x`` for finite values).
    """

    def __init__(self, lanes: Sequence[Dropout]):
        self.rates = [float(m.rate) for m in lanes]
        self._rngs = [m._rng for m in lanes]
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if all(rate == 0.0 for rate in self.rates):
            self._mask = None
            return inputs
        mask = np.empty_like(inputs)
        for lane, (rate, rng) in enumerate(zip(self.rates, self._rngs)):
            if rate == 0.0:
                mask[lane] = 1.0
            else:
                keep = 1.0 - rate
                mask[lane] = (rng.random(inputs.shape[1:]) < keep) / keep
        self._mask = mask
        return inputs * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class BFlatten(BatchedModule):
    def __init__(self, lanes: Sequence[Flatten]):
        self._shape: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shape = inputs.shape
        return inputs.reshape(inputs.shape[0], inputs.shape[1], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._shape)


class BConv1d(BatchedModule):
    def __init__(self, lanes: Sequence[Conv1d]):
        head = lanes[0]
        self.in_channels = head.in_channels
        self.out_channels = head.out_channels
        self.kernel_size = head.kernel_size
        self.stride = head.stride
        self.weight = BatchedParam([m.weight for m in lanes])
        self.bias = BatchedParam([m.bias for m in lanes])
        self._cols: Optional[np.ndarray] = None
        self._geometry: Optional[tuple] = None
        self._scratch: Dict[str, np.ndarray] = {}

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        lanes, batch = inputs.shape[0], inputs.shape[1]
        length = inputs.shape[3]
        out_len = _out_length(length, self.kernel_size, self.stride)
        flat = np.ascontiguousarray(inputs).reshape(
            (lanes * batch,) + inputs.shape[2:]
        )
        cols = kernels.im2col_1d(flat, self.kernel_size, self.stride, out_len)
        self._cols = cols.reshape(lanes, batch * out_len, cols.shape[-1])
        self._geometry = (lanes, batch, inputs.shape[2], length, out_len)
        out = _buffered_matmul(
            self._cols, self.weight.value, self._scratch, "fwd"
        )
        out += self.bias.value[:, None, :]
        return out.reshape(
            lanes, batch, out_len, self.out_channels
        ).transpose(0, 1, 3, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        lanes, batch, channels, length, out_len = self._geometry
        flat_grad = np.ascontiguousarray(
            grad_output.transpose(0, 1, 3, 2).reshape(
                lanes, batch * out_len, self.out_channels
            )
        )
        self.weight.grad += _buffered_matmul(
            self._cols.transpose(0, 2, 1), flat_grad, self._scratch, "wgrad"
        )
        self.bias.grad += flat_grad.sum(axis=1)
        w_perm = self.weight.value.reshape(
            lanes, channels, self.kernel_size, self.out_channels
        ).transpose(0, 2, 1, 3).reshape(
            lanes, self.kernel_size * channels, self.out_channels
        )
        grad_cols = _buffered_matmul(
            flat_grad, w_perm.transpose(0, 2, 1), self._scratch, "gcols"
        )
        grad = _zeroed_buffer(
            (lanes * batch, channels, length), self._scratch, "ginput"
        )
        blocks = grad_cols.reshape(
            lanes * batch, out_len, self.kernel_size, channels
        )
        for offset in range(self.kernel_size):
            end = offset + (out_len - 1) * self.stride + 1
            grad[:, :, offset:end:self.stride] += (
                blocks[:, :, offset, :].transpose(0, 2, 1)
            )
        return grad.reshape(lanes, batch, channels, length)

    def parameters(self) -> List[BatchedParam]:
        return [self.weight, self.bias]


class BConv2d(BatchedModule):
    def __init__(self, lanes: Sequence[Conv2d]):
        head = lanes[0]
        self.in_channels = head.in_channels
        self.out_channels = head.out_channels
        self.kernel_size = head.kernel_size
        self.stride = head.stride
        self.weight = BatchedParam([m.weight for m in lanes])
        self.bias = BatchedParam([m.bias for m in lanes])
        self._cols: Optional[np.ndarray] = None
        self._geometry: Optional[tuple] = None
        self._scratch: Dict[str, np.ndarray] = {}

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        lanes, batch = inputs.shape[0], inputs.shape[1]
        height, width = inputs.shape[3], inputs.shape[4]
        k, s = self.kernel_size, self.stride
        out_h = _out_length(height, k, s)
        out_w = _out_length(width, k, s)
        flat = np.ascontiguousarray(inputs).reshape(
            (lanes * batch,) + inputs.shape[2:]
        )
        cols = kernels.im2col_2d(flat, k, s, out_h, out_w)
        self._cols = cols.reshape(lanes, batch * out_h * out_w, cols.shape[-1])
        self._geometry = (
            lanes, batch, inputs.shape[2], height, width, out_h, out_w,
        )
        out = _buffered_matmul(
            self._cols, self.weight.value, self._scratch, "fwd"
        )
        out += self.bias.value[:, None, :]
        return out.reshape(
            lanes, batch, out_h * out_w, self.out_channels
        ).transpose(0, 1, 3, 2).reshape(
            lanes, batch, self.out_channels, out_h, out_w
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        lanes, batch, channels, height, width, out_h, out_w = self._geometry
        k, s = self.kernel_size, self.stride
        positions = out_h * out_w
        flat_grad = np.ascontiguousarray(
            grad_output.reshape(
                lanes, batch, self.out_channels, positions
            ).transpose(0, 1, 3, 2).reshape(
                lanes, batch * positions, self.out_channels
            )
        )
        self.weight.grad += _buffered_matmul(
            self._cols.transpose(0, 2, 1), flat_grad, self._scratch, "wgrad"
        )
        self.bias.grad += flat_grad.sum(axis=1)
        w_perm = self.weight.value.reshape(
            lanes, channels, k * k, self.out_channels
        ).transpose(0, 2, 1, 3).reshape(
            lanes, k * k * channels, self.out_channels
        )
        grad_cols = _buffered_matmul(
            flat_grad, w_perm.transpose(0, 2, 1), self._scratch, "gcols"
        )
        grad = _zeroed_buffer(
            (lanes * batch, channels, height, width), self._scratch, "ginput"
        )
        blocks = grad_cols.reshape(
            lanes * batch, out_h, out_w, k * k, channels
        )
        for dy in range(k):
            row_end = dy + (out_h - 1) * s + 1
            for dx in range(k):
                col_end = dx + (out_w - 1) * s + 1
                grad[:, :, dy:row_end:s, dx:col_end:s] += (
                    blocks[:, :, :, dy * k + dx, :].transpose(0, 3, 1, 2)
                )
        return grad.reshape(lanes, batch, channels, height, width)

    def parameters(self) -> List[BatchedParam]:
        return [self.weight, self.bias]


class BMaxPool1d(BatchedModule):
    def __init__(self, lanes: Sequence[MaxPool1d]):
        self.kernel_size = lanes[0].kernel_size
        self._cache: Optional[tuple] = None
        self._grad: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        lanes, batch, channels, length = inputs.shape
        out_len = length // self.kernel_size
        flat = inputs.reshape(lanes * batch, channels, length)
        trimmed = flat[:, :, : out_len * self.kernel_size]
        windows = trimmed.reshape(
            lanes * batch, channels, out_len, self.kernel_size
        )
        maxima, argmax = kernels.maxpool_forward(windows)
        self._cache = (inputs.shape, out_len, argmax)
        return maxima.reshape(lanes, batch, channels, out_len)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        shape, out_len, argmax = self._cache
        lanes, batch, channels, length = shape
        flat_grad = np.ascontiguousarray(
            grad_output.reshape(lanes * batch, channels, out_len)
        )
        self._grad = kernels.maxpool1d_backward(
            flat_grad, (lanes * batch, channels, length), out_len,
            self.kernel_size, argmax, out=self._grad,
        )
        return self._grad.reshape(lanes, batch, channels, length)


class BMaxPool2d(BatchedModule):
    def __init__(self, lanes: Sequence[MaxPool2d]):
        self.kernel_size = lanes[0].kernel_size
        self._cache: Optional[tuple] = None
        self._grad: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        lanes, batch, channels, height, width = inputs.shape
        k = self.kernel_size
        out_h, out_w = height // k, width // k
        flat = inputs.reshape(lanes * batch, channels, height, width)
        trimmed = flat[:, :, : out_h * k, : out_w * k]
        maxima, argmax = kernels.maxpool2d_forward(trimmed, k)
        self._cache = (inputs.shape, out_h, out_w, argmax)
        return maxima.reshape(lanes, batch, channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        shape, out_h, out_w, argmax = self._cache
        lanes, batch, channels, height, width = shape
        flat_grad = np.ascontiguousarray(
            grad_output.reshape(lanes * batch, channels, out_h, out_w)
        )
        self._grad = kernels.maxpool2d_backward(
            flat_grad, (lanes * batch, channels, height, width),
            out_h, out_w, self.kernel_size, argmax, out=self._grad,
        )
        return self._grad.reshape(lanes, batch, channels, height, width)


class BGlobalAvgPool1d(BatchedModule):
    def __init__(self, lanes: Sequence[GlobalAvgPool1d]):
        self._shape: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shape = inputs.shape
        return inputs.mean(axis=3)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        length = self._shape[3]
        return np.broadcast_to(
            grad_output[:, :, :, None] / length, self._shape
        ).copy()


class BGlobalAvgPool2d(BatchedModule):
    def __init__(self, lanes: Sequence[GlobalAvgPool2d]):
        self._shape: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shape = inputs.shape
        return inputs.mean(axis=(3, 4))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        area = self._shape[3] * self._shape[4]
        return np.broadcast_to(
            grad_output[:, :, :, None, None] / area, self._shape
        ).copy()


_LEAF_TWINS = {
    Linear: BLinear,
    ReLU: BReLU,
    Tanh: BTanh,
    Dropout: BDropout,
    Flatten: BFlatten,
    Conv1d: BConv1d,
    Conv2d: BConv2d,
    MaxPool1d: BMaxPool1d,
    MaxPool2d: BMaxPool2d,
    GlobalAvgPool1d: BGlobalAvgPool1d,
    GlobalAvgPool2d: BGlobalAvgPool2d,
}


def stackable_model(module: Module) -> bool:
    """True when every layer in the tree has a batched twin."""
    kind = type(module)
    if kind is Sequential:
        return all(stackable_model(child) for child in module.modules)
    if kind is Residual:
        return stackable_model(module.inner)
    return kind in _LEAF_TWINS


def stack_modules(models: Sequence[Module]) -> BatchedModule:
    """Stack K structurally identical models into one batched twin tree.

    The lanes must agree on layer types and parameter shapes (the grouping
    signature guarantees this for trial batches); a mismatch or an
    unsupported layer raises :class:`UnstackableModelError`.
    """
    if not models:
        raise UnstackableModelError("cannot stack an empty model list")
    head = models[0]
    kind = type(head)
    if any(type(m) is not kind for m in models):
        raise UnstackableModelError(
            "lanes disagree on layer type at "
            f"{sorted({type(m).__name__ for m in models})}"
        )
    if kind is Sequential:
        if any(len(m.modules) != len(head.modules) for m in models):
            raise UnstackableModelError("lanes disagree on Sequential length")
        return BSequential([
            stack_modules([m.modules[i] for m in models])
            for i in range(len(head.modules))
        ])
    if kind is Residual:
        return BResidual(stack_modules([m.inner for m in models]))
    twin = _LEAF_TWINS.get(kind)
    if twin is None:
        raise UnstackableModelError(
            f"no batched twin for layer type {kind.__name__}"
        )
    if hasattr(head, "parameters"):
        shapes = [tuple(p.value.shape for p in m.parameters()) for m in models]
        if any(s != shapes[0] for s in shapes):
            raise UnstackableModelError(
                f"lanes disagree on {kind.__name__} parameter shapes"
            )
    return twin(models)


# ---------------------------------------------------------------------------
# Batched losses — return per-lane ``(K,)`` loss vectors
# ---------------------------------------------------------------------------


class BatchedCrossEntropyLoss:
    """Per-lane cross entropy over ``(K, n, C)`` logits."""

    def __init__(self):
        self._cache: Optional[tuple] = None

    def forward(
        self, logits: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        shifted = logits - logits.max(axis=2, keepdims=True)
        exp = np.exp(shifted)
        probabilities = exp / exp.sum(axis=2, keepdims=True)
        self._cache = (probabilities, targets)
        lanes, batch = targets.shape
        lane_idx = np.arange(lanes)[:, None]
        row_idx = np.arange(batch)[None, :]
        clipped = np.clip(
            probabilities[lane_idx, row_idx, targets], 1e-12, None
        )
        return -np.log(clipped).mean(axis=1)

    def backward(self) -> np.ndarray:
        probabilities, targets = self._cache
        lanes, batch = targets.shape
        grad = probabilities.copy()
        grad[
            np.arange(lanes)[:, None], np.arange(batch)[None, :], targets
        ] -= 1.0
        return grad / batch


class BatchedDetectionLoss:
    """Per-lane detection loss over ``(K, n, 4 + C)`` predictions."""

    def __init__(self, num_classes: int, box_weight: float = 1.0):
        self.num_classes = int(num_classes)
        self.box_weight = float(box_weight)
        self._cache: Optional[tuple] = None

    def forward(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        boxes_pred = predictions[:, :, :4]
        logits = predictions[:, :, 4:]
        boxes_true = targets[:, :, :4]
        classes = targets[:, :, 4].astype(int)
        shifted = logits - logits.max(axis=2, keepdims=True)
        exp = np.exp(shifted)
        probabilities = exp / exp.sum(axis=2, keepdims=True)
        lanes, batch = classes.shape
        lane_idx = np.arange(lanes)[:, None]
        row_idx = np.arange(batch)[None, :]
        # Serial computes ``((bp - bt) ** 2).mean()`` over the 2-D slice;
        # flattening each lane before the mean keeps the identical
        # pairwise-summation reduction tree per lane.
        box_loss = (
            (boxes_pred - boxes_true) ** 2
        ).reshape(lanes, -1).mean(axis=1)
        clipped = np.clip(
            probabilities[lane_idx, row_idx, classes], 1e-12, None
        )
        class_loss = -np.log(clipped).mean(axis=1)
        self._cache = (boxes_pred, boxes_true, probabilities, classes)
        return self.box_weight * box_loss + class_loss

    def backward(self) -> np.ndarray:
        boxes_pred, boxes_true, probabilities, classes = self._cache
        lanes, batch = classes.shape
        grad = np.zeros((lanes, batch, 4 + self.num_classes))
        grad[:, :, :4] = (
            self.box_weight * 2.0 * (boxes_pred - boxes_true) / (batch * 4)
        )
        grad_class = probabilities.copy()
        grad_class[
            np.arange(lanes)[:, None], np.arange(batch)[None, :], classes
        ] -= 1.0
        grad[:, :, 4:] = grad_class / batch
        return grad


def batched_loss_for(loss: Loss):
    """Build the batched twin of a serial loss instance."""
    if type(loss) is CrossEntropyLoss:
        return BatchedCrossEntropyLoss()
    if type(loss) is DetectionLoss:
        return BatchedDetectionLoss(loss.num_classes, loss.box_weight)
    raise UnstackableModelError(
        f"no batched twin for loss type {type(loss).__name__}"
    )


# ---------------------------------------------------------------------------
# Batched optimizer
# ---------------------------------------------------------------------------


class BatchedSGD:
    """SGD over stacked parameters with per-lane learning rates.

    The all-lanes-active step runs the exact serial in-place op sequence
    on the full stacks (the lr broadcast is ``(K, 1, …)``, so each lane
    sees a scalar multiply like serial).  When some lanes are frozen by
    divergence, the update runs on ``[active]`` fancy-index copies and
    writes back — the same per-element arithmetic on the surviving lanes,
    and no touch at all on frozen ones.
    """

    def __init__(
        self,
        parameters: Sequence[BatchedParam],
        lr: Union[float, Sequence[float]],
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        self.parameters = list(parameters)
        lanes = self.parameters[0].lanes if self.parameters else 0
        rates = np.asarray(lr, dtype=np.float64)
        if rates.ndim == 0:
            rates = np.full(max(lanes, 1), float(rates))
        if np.any(rates <= 0):
            raise ConfigurationError(
                f"learning rates must be positive, got {rates.tolist()}"
            )
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(
                f"momentum must be in [0, 1), got {momentum}"
            )
        if weight_decay < 0.0:
            raise ConfigurationError("weight decay must be non-negative")
        self.lrs = rates
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]
        self._scratch = [np.zeros_like(p.value) for p in self.parameters]
        self._lr_views = [
            rates.reshape((rates.shape[0],) + (1,) * (p.value.ndim - 1))
            for p in self.parameters
        ]

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self, active: Optional[np.ndarray] = None) -> None:
        if active is None or bool(active.all()):
            for parameter, velocity, scratch, lr in zip(
                self.parameters, self._velocity, self._scratch, self._lr_views
            ):
                if self.weight_decay:
                    np.multiply(parameter.value, self.weight_decay,
                                out=scratch)
                    scratch += parameter.grad
                else:
                    scratch[...] = parameter.grad
                scratch *= lr
                velocity *= self.momentum
                velocity -= scratch
                parameter.value += velocity
            return
        index = np.flatnonzero(active)
        if index.size == 0:
            return
        for parameter, velocity, lr in zip(
            self.parameters, self._velocity, self._lr_views
        ):
            value = parameter.value[index]
            lane_velocity = velocity[index]
            if self.weight_decay:
                scratch = value * self.weight_decay
                scratch += parameter.grad[index]
            else:
                scratch = parameter.grad[index].copy()
            scratch *= lr[index]
            lane_velocity *= self.momentum
            lane_velocity -= scratch
            value += lane_velocity
            parameter.value[index] = value
            velocity[index] = lane_velocity


# ---------------------------------------------------------------------------
# Batched training loop
# ---------------------------------------------------------------------------


def train_model_batch(
    models: Sequence[Module],
    loss: Loss,
    train_set: Dataset,
    eval_set: Dataset,
    epochs: int,
    batch_size: int,
    lr: Union[float, Sequence[float]] = 0.05,
    momentum: float = 0.9,
    weight_decay: float = 1e-4,
    data_fraction: float = 1.0,
    seeds: Optional[Sequence[SeedLike]] = None,
) -> List[TrainingResult]:
    """Train K models as one stacked run; each lane is bit-identical to
    the serial :func:`~repro.nn.trainer.train_model` run with its seed.

    ``seeds`` carries one training seed per lane (the serial call's
    ``seed`` argument).  Per-lane RNG streams (subset draw, per-epoch
    shuffle, fault-injection key) are derived exactly as the serial loop
    derives them; the per-lane index vectors are composed into one
    ``(K, n)`` gather so each lane trains on its own sample order inside
    the shared stacked step.
    """
    lanes = len(models)
    if lanes == 0:
        return []
    if epochs <= 0:
        raise BudgetError(f"epochs must be positive, got {epochs}")
    if seeds is None:
        seeds = [None] * lanes
    if len(seeds) != lanes:
        raise ConfigurationError(
            f"got {len(seeds)} seeds for {lanes} models"
        )
    base_seeds = [ensure_seed(seed) for seed in seeds]

    stacked = stack_modules(models)
    batched_loss = batched_loss_for(loss)
    optimizer = BatchedSGD(
        stacked.parameters(), lr=lr,
        momentum=momentum, weight_decay=weight_decay,
    )

    # Per-lane subset rows, drawn like ``Dataset.subset``: identity at
    # fraction 1.0 (serial returns the dataset itself), otherwise the
    # first ``count`` entries of the lane's seeded permutation.
    total = len(train_set)
    fraction = float(data_fraction)
    if fraction == 1.0:
        lane_rows: List[Optional[np.ndarray]] = [None] * lanes
        subset_len = total
    else:
        count = max(1, int(math.floor(total * fraction)))
        lane_rows = [
            spawn_rng(base_seed, "subset").permutation(total)[:count]
            for base_seed in base_seeds
        ]
        subset_len = count

    forward_flops = [
        model.flops(train_set.sample_shape)[0] for model in models
    ]
    for model in models:
        model.train()
    features, targets = train_set.features, train_set.targets

    active = np.ones(lanes, dtype=bool)
    diverged = np.zeros(lanes, dtype=bool)
    first_batch = True
    losses: List[List[float]] = [[] for _ in range(lanes)]
    samples_seen = [0] * lanes
    epochs_completed = [0] * lanes
    selection = np.empty((lanes, subset_len), dtype=np.intp)

    for epoch in range(epochs):
        if not active.any():
            break
        for lane in range(lanes):
            if not active[lane]:
                continue
            order = np.arange(subset_len)
            spawn_rng(base_seeds[lane], "epoch", epoch).shuffle(order)
            rows = lane_rows[lane]
            selection[lane] = order if rows is None else rows[order]
        epoch_loss = [0.0] * lanes
        batch_counts = [0] * lanes
        entered = active.copy()
        for start in range(0, subset_len, batch_size):
            stop = min(start + batch_size, subset_len)
            batch_sel = selection[:, start:stop]
            batch_features = features[batch_sel]
            batch_targets = targets[batch_sel]
            optimizer.zero_grad()
            outputs = stacked.forward(batch_features)
            loss_vector = np.asarray(
                batched_loss.forward(outputs, batch_targets),
                dtype=np.float64,
            )
            if first_batch:
                # Fault site trainer.nan, keyed per lane exactly like the
                # serial loop keys it (by the lane's training seed) — the
                # divergence mask below contains it to the one lane.
                for lane in range(lanes):
                    loss_vector[lane] = corrupt_nan(
                        "trainer.nan", float(loss_vector[lane]),
                        key=base_seeds[lane],
                    )
                first_batch = False
            newly_diverged = active & ~np.isfinite(loss_vector)
            if newly_diverged.any():
                # Serial aborts *before* backward/step, so the diverged
                # lane's weights stay frozen at their pre-step values.
                diverged |= newly_diverged
                active &= ~newly_diverged
            if not active.any():
                break
            stacked.backward(batched_loss.backward())
            optimizer.step(active)
            width = stop - start
            for lane in np.flatnonzero(active):
                epoch_loss[lane] += float(loss_vector[lane])
                batch_counts[lane] += 1
                samples_seen[lane] += width
        for lane in range(lanes):
            if not (entered[lane] and active[lane]):
                continue
            epochs_completed[lane] += 1
            if batch_counts[lane]:
                losses[lane].append(epoch_loss[lane] / batch_counts[lane])

    for parameter in stacked.parameters():
        parameter.unstack()

    results: List[TrainingResult] = []
    for lane, model in enumerate(models):
        lane_diverged = bool(diverged[lane])
        accuracy = 0.0 if lane_diverged else evaluate_accuracy(
            model, eval_set
        )
        if not np.isfinite(accuracy):
            accuracy, lane_diverged = 0.0, True
        train_forward = forward_flops[lane] * samples_seen[lane]
        results.append(TrainingResult(
            accuracy=accuracy,
            losses=losses[lane],
            epochs_run=epochs_completed[lane],
            data_fraction=min(data_fraction, 1.0),
            samples_seen=samples_seen[lane],
            batch_size=batch_size,
            forward_flops_per_sample=int(forward_flops[lane]),
            train_forward_flops=int(train_forward),
            train_total_flops=int(
                train_forward * (1.0 + BACKWARD_FLOPS_FACTOR)
            ),
            parameter_count=model.parameter_count(),
            diverged=lane_diverged,
            resume_state=None,
        ))
    return results
