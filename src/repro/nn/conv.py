"""Convolutional and pooling layers (1-D for audio, 2-D for images).

Implemented with im2col/col2im so the heavy lifting is a single matrix
multiply per layer — fast enough in numpy for the reproduction workloads
while remaining a genuine convolution with exact gradients.  The array
kernels themselves (patch gather, col2im accumulate, pooling scatter)
live in :mod:`repro.nn.kernels`, which keeps a vectorized ``fast``
backend and the original ``reference`` backend side by side; the layers
here only manage parameters, caches and reusable gradient buffers.

Buffer reuse: each layer keeps its input-gradient buffer (and the conv
layers their matmul scratch) across steps, so steady-state training does
not allocate in ``backward``.  The returned gradient is therefore only
valid until the layer's next ``backward`` call — which is how the
engine's layer-by-layer backward chain consumes it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..rng import SeedLike, make_rng
from . import kernels
from .initializers import he_normal, zeros
from .module import Module, ParamTensor, Shape, check_ndim


def _out_length(length: int, kernel: int, stride: int) -> int:
    if length < kernel:
        raise ShapeError(
            f"input length {length} smaller than kernel {kernel}"
        )
    return (length - kernel) // stride + 1


class Conv1d(Module):
    """1-D convolution over (N, C, L) inputs; used by the M5 audio model."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        rng: SeedLike = None,
    ):
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ShapeError("Conv1d dimensions must be positive")
        generator = make_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        fan_in = in_channels * kernel_size
        self.weight = ParamTensor(
            "weight", he_normal(generator, (fan_in, out_channels), fan_in)
        )
        self.bias = ParamTensor("bias", zeros((out_channels,)))
        self._cols: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int]] = None
        self._forward_scratch: dict = {}
        self._backward_scratch: dict = {}
        self._weight_grad_scratch = np.zeros_like(self.weight.value)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("Conv1d", inputs, 3)
        if inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv1d expected {self.in_channels} channels, "
                f"got {inputs.shape[1]}"
            )
        out_len = _out_length(inputs.shape[2], self.kernel_size, self.stride)
        self._input_shape = inputs.shape
        self._cols = kernels.im2col_1d(
            inputs, self.kernel_size, self.stride, out_len
        )
        out = kernels.scratch_matmul(
            self._cols, self.weight.value, self._forward_scratch, "out"
        )
        out += self.bias.value
        return out.transpose(0, 2, 1)  # (N, C_out, Lo)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None:
            raise ShapeError("Conv1d.backward called before forward")
        grad_out = grad_output.transpose(0, 2, 1)  # (N, Lo, C_out)
        flat_cols = self._cols.reshape(-1, self._cols.shape[-1])
        flat_grad = np.ascontiguousarray(
            grad_out.reshape(-1, self.out_channels)
        )
        np.matmul(flat_cols.T, flat_grad, out=self._weight_grad_scratch)
        self.weight.grad += self._weight_grad_scratch
        self.bias.grad += flat_grad.sum(axis=0)
        # Feed the gemm the contiguous copy already made for the weight
        # gradient — same values, but saves matmul an internal buffering
        # pass over the strided transpose view.
        return kernels.conv1d_input_grad(
            flat_grad.reshape(grad_out.shape),
            self.weight.value,
            self._input_shape,
            self.kernel_size,
            self.stride,
            self._backward_scratch,
        )

    def parameters(self) -> List[ParamTensor]:
        return [self.weight, self.bias]

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        channels, length = input_shape
        out_len = _out_length(length, self.kernel_size, self.stride)
        per_position = 2 * channels * self.kernel_size * self.out_channels
        return per_position * out_len + self.out_channels * out_len, (
            self.out_channels,
            out_len,
        )


class MaxPool1d(Module):
    """Non-overlapping 1-D max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int):
        if kernel_size <= 0:
            raise ShapeError("MaxPool1d kernel must be positive")
        self.kernel_size = kernel_size
        self._cache: Optional[tuple] = None
        self._grad_input: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("MaxPool1d", inputs, 3)
        batch, channels, length = inputs.shape
        out_len = length // self.kernel_size
        if out_len == 0:
            raise ShapeError(
                f"MaxPool1d: length {length} < kernel {self.kernel_size}"
            )
        trimmed = inputs[:, :, : out_len * self.kernel_size]
        windows = trimmed.reshape(batch, channels, out_len, self.kernel_size)
        maxima, argmax = kernels.maxpool_forward(windows)
        self._cache = (inputs.shape, out_len, argmax)
        return maxima

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("MaxPool1d.backward called before forward")
        input_shape, out_len, argmax = self._cache
        self._grad_input = kernels.maxpool1d_backward(
            grad_output,
            input_shape,
            out_len,
            self.kernel_size,
            argmax,
            out=self._grad_input,
        )
        return self._grad_input

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        channels, length = input_shape
        out_len = length // self.kernel_size
        return channels * out_len * self.kernel_size, (channels, out_len)


class GlobalAvgPool1d(Module):
    """Average over the length axis: (N, C, L) -> (N, C)."""

    def __init__(self) -> None:
        self._input_shape: Optional[Tuple[int, int, int]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("GlobalAvgPool1d", inputs, 3)
        self._input_shape = inputs.shape
        return inputs.mean(axis=2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError("GlobalAvgPool1d.backward called before forward")
        batch, channels, length = self._input_shape
        return np.broadcast_to(
            grad_output[:, :, None] / length, self._input_shape
        ).copy()

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        channels, length = input_shape
        return channels * length, (channels,)


class Conv2d(Module):
    """2-D convolution over (N, C, H, W) inputs (square kernels)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        rng: SeedLike = None,
    ):
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ShapeError("Conv2d dimensions must be positive")
        generator = make_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = ParamTensor(
            "weight", he_normal(generator, (fan_in, out_channels), fan_in)
        )
        self.bias = ParamTensor("bias", zeros((out_channels,)))
        self._cols: Optional[np.ndarray] = None
        self._geometry: Optional[tuple] = None
        self._forward_scratch: dict = {}
        self._backward_scratch: dict = {}
        self._weight_grad_scratch = np.zeros_like(self.weight.value)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("Conv2d", inputs, 4)
        if inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2d expected {self.in_channels} channels, "
                f"got {inputs.shape[1]}"
            )
        out_h = _out_length(inputs.shape[2], self.kernel_size, self.stride)
        out_w = _out_length(inputs.shape[3], self.kernel_size, self.stride)
        cols = kernels.im2col_2d(
            inputs, self.kernel_size, self.stride, out_h, out_w
        )
        self._cols = cols
        self._geometry = (inputs.shape, out_h, out_w)
        out = kernels.scratch_matmul(
            cols, self.weight.value, self._forward_scratch, "out"
        )  # (N, Ho*Wo, C_out)
        out += self.bias.value
        batch = inputs.shape[0]
        return out.transpose(0, 2, 1).reshape(
            batch, self.out_channels, out_h, out_w
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._geometry is None:
            raise ShapeError("Conv2d.backward called before forward")
        input_shape, out_h, out_w = self._geometry
        batch = input_shape[0]
        grad_out = grad_output.reshape(
            batch, self.out_channels, out_h * out_w
        ).transpose(0, 2, 1)  # (N, Ho*Wo, C_out)
        flat_cols = self._cols.reshape(-1, self._cols.shape[-1])
        flat_grad = np.ascontiguousarray(
            grad_out.reshape(-1, self.out_channels)
        )
        np.matmul(flat_cols.T, flat_grad, out=self._weight_grad_scratch)
        self.weight.grad += self._weight_grad_scratch
        self.bias.grad += flat_grad.sum(axis=0)
        return kernels.conv2d_input_grad(
            flat_grad.reshape(grad_out.shape),
            self.weight.value,
            input_shape,
            out_h,
            out_w,
            self.kernel_size,
            self.stride,
            self._backward_scratch,
        )

    def parameters(self) -> List[ParamTensor]:
        return [self.weight, self.bias]

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        channels, height, width = input_shape
        out_h = _out_length(height, self.kernel_size, self.stride)
        out_w = _out_length(width, self.kernel_size, self.stride)
        per_position = (
            2 * channels * self.kernel_size * self.kernel_size * self.out_channels
        )
        total = per_position * out_h * out_w + self.out_channels * out_h * out_w
        return total, (self.out_channels, out_h, out_w)


class MaxPool2d(Module):
    """Non-overlapping 2-D max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int):
        if kernel_size <= 0:
            raise ShapeError("MaxPool2d kernel must be positive")
        self.kernel_size = kernel_size
        self._cache: Optional[tuple] = None
        self._grad_input: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("MaxPool2d", inputs, 4)
        k = self.kernel_size
        batch, channels, height, width = inputs.shape
        out_h, out_w = height // k, width // k
        if out_h == 0 or out_w == 0:
            raise ShapeError(
                f"MaxPool2d: input {height}x{width} smaller than kernel {k}"
            )
        trimmed = inputs[:, :, : out_h * k, : out_w * k]
        maxima, argmax = kernels.maxpool2d_forward(trimmed, k)
        self._cache = (inputs.shape, out_h, out_w, argmax)
        return maxima

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("MaxPool2d.backward called before forward")
        input_shape, out_h, out_w, argmax = self._cache
        self._grad_input = kernels.maxpool2d_backward(
            grad_output,
            input_shape,
            out_h,
            out_w,
            self.kernel_size,
            argmax,
            out=self._grad_input,
        )
        return self._grad_input

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        channels, height, width = input_shape
        k = self.kernel_size
        out_h, out_w = height // k, width // k
        return channels * out_h * out_w * k * k, (channels, out_h, out_w)


class GlobalAvgPool2d(Module):
    """Average over spatial axes: (N, C, H, W) -> (N, C)."""

    def __init__(self) -> None:
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("GlobalAvgPool2d", inputs, 4)
        self._input_shape = inputs.shape
        return inputs.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError("GlobalAvgPool2d.backward called before forward")
        batch, channels, height, width = self._input_shape
        area = height * width
        return np.broadcast_to(
            grad_output[:, :, None, None] / area, self._input_shape
        ).copy()

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        channels, height, width = input_shape
        return channels * height * width, (channels,)
