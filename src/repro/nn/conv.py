"""Convolutional and pooling layers (1-D for audio, 2-D for images).

Implemented with im2col/col2im so the heavy lifting is a single matrix
multiply per layer — fast enough in numpy for the scaled-down reproduction
workloads while remaining a genuine convolution with exact gradients.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..rng import SeedLike, make_rng
from .initializers import he_normal, zeros
from .module import Module, ParamTensor, Shape, check_ndim


def _out_length(length: int, kernel: int, stride: int) -> int:
    if length < kernel:
        raise ShapeError(
            f"input length {length} smaller than kernel {kernel}"
        )
    return (length - kernel) // stride + 1


def _im2col_1d(inputs: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """(N, C, L) -> (N, Lo, C*K) patch matrix."""
    batch, channels, length = inputs.shape
    out_len = _out_length(length, kernel, stride)
    idx = (np.arange(out_len) * stride)[:, None] + np.arange(kernel)[None, :]
    # (N, C, Lo, K) -> (N, Lo, C, K) -> (N, Lo, C*K)
    patches = inputs[:, :, idx]
    return patches.transpose(0, 2, 1, 3).reshape(batch, out_len, channels * kernel)


def _col2im_1d(
    grad_cols: np.ndarray,
    input_shape: Tuple[int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Inverse scatter-add of :func:`_im2col_1d`."""
    batch, channels, length = input_shape
    out_len = grad_cols.shape[1]
    grad = np.zeros(input_shape, dtype=np.float64)
    cols = grad_cols.reshape(batch, out_len, channels, kernel).transpose(
        0, 2, 1, 3
    )  # (N, C, Lo, K)
    for k in range(kernel):
        positions = np.arange(out_len) * stride + k
        np.add.at(grad, (slice(None), slice(None), positions), cols[:, :, :, k])
    return grad


class Conv1d(Module):
    """1-D convolution over (N, C, L) inputs; used by the M5 audio model."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        rng: SeedLike = None,
    ):
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ShapeError("Conv1d dimensions must be positive")
        generator = make_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        fan_in = in_channels * kernel_size
        self.weight = ParamTensor(
            "weight", he_normal(generator, (fan_in, out_channels), fan_in)
        )
        self.bias = ParamTensor("bias", zeros((out_channels,)))
        self._cols: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("Conv1d", inputs, 3)
        if inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv1d expected {self.in_channels} channels, "
                f"got {inputs.shape[1]}"
            )
        self._input_shape = inputs.shape
        self._cols = _im2col_1d(inputs, self.kernel_size, self.stride)
        out = self._cols @ self.weight.value + self.bias.value
        return out.transpose(0, 2, 1)  # (N, C_out, Lo)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None:
            raise ShapeError("Conv1d.backward called before forward")
        grad_out = grad_output.transpose(0, 2, 1)  # (N, Lo, C_out)
        flat_cols = self._cols.reshape(-1, self._cols.shape[-1])
        flat_grad = grad_out.reshape(-1, self.out_channels)
        self.weight.grad += flat_cols.T @ flat_grad
        self.bias.grad += flat_grad.sum(axis=0)
        grad_cols = grad_out @ self.weight.value.T
        return _col2im_1d(
            grad_cols, self._input_shape, self.kernel_size, self.stride
        )

    def parameters(self) -> List[ParamTensor]:
        return [self.weight, self.bias]

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        channels, length = input_shape
        out_len = _out_length(length, self.kernel_size, self.stride)
        per_position = 2 * channels * self.kernel_size * self.out_channels
        return per_position * out_len + self.out_channels * out_len, (
            self.out_channels,
            out_len,
        )


class MaxPool1d(Module):
    """Non-overlapping 1-D max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int):
        if kernel_size <= 0:
            raise ShapeError("MaxPool1d kernel must be positive")
        self.kernel_size = kernel_size
        self._cache: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("MaxPool1d", inputs, 3)
        batch, channels, length = inputs.shape
        out_len = length // self.kernel_size
        if out_len == 0:
            raise ShapeError(
                f"MaxPool1d: length {length} < kernel {self.kernel_size}"
            )
        trimmed = inputs[:, :, : out_len * self.kernel_size]
        windows = trimmed.reshape(batch, channels, out_len, self.kernel_size)
        argmax = windows.argmax(axis=3)
        self._cache = (inputs.shape, out_len, argmax)
        return windows.max(axis=3)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("MaxPool1d.backward called before forward")
        input_shape, out_len, argmax = self._cache
        batch, channels, _ = input_shape
        grad = np.zeros(input_shape, dtype=np.float64)
        windows = grad.reshape(batch, channels, -1)[
            :, :, : out_len * self.kernel_size
        ].reshape(batch, channels, out_len, self.kernel_size)
        b_idx, c_idx, o_idx = np.ogrid[:batch, :channels, :out_len]
        windows[b_idx, c_idx, o_idx, argmax] = grad_output
        return grad

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        channels, length = input_shape
        out_len = length // self.kernel_size
        return channels * out_len * self.kernel_size, (channels, out_len)


class GlobalAvgPool1d(Module):
    """Average over the length axis: (N, C, L) -> (N, C)."""

    def __init__(self) -> None:
        self._input_shape: Optional[Tuple[int, int, int]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("GlobalAvgPool1d", inputs, 3)
        self._input_shape = inputs.shape
        return inputs.mean(axis=2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError("GlobalAvgPool1d.backward called before forward")
        batch, channels, length = self._input_shape
        return np.repeat(
            grad_output[:, :, None] / length, length, axis=2
        )

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        channels, length = input_shape
        return channels * length, (channels,)


def _im2col_2d(
    inputs: np.ndarray, kernel: int, stride: int
) -> Tuple[np.ndarray, int, int]:
    """(N, C, H, W) -> (N, Ho*Wo, C*K*K) patch matrix."""
    batch, channels, height, width = inputs.shape
    out_h = _out_length(height, kernel, stride)
    out_w = _out_length(width, kernel, stride)
    rows = (np.arange(out_h) * stride)[:, None] + np.arange(kernel)[None, :]
    cols = (np.arange(out_w) * stride)[:, None] + np.arange(kernel)[None, :]
    # Gather (N, C, Ho, K, Wo, K)
    patches = inputs[:, :, rows][:, :, :, :, cols]
    patches = patches.transpose(0, 2, 4, 1, 3, 5)  # (N, Ho, Wo, C, K, K)
    return (
        patches.reshape(batch, out_h * out_w, channels * kernel * kernel),
        out_h,
        out_w,
    )


class Conv2d(Module):
    """2-D convolution over (N, C, H, W) inputs (square kernels)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        rng: SeedLike = None,
    ):
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ShapeError("Conv2d dimensions must be positive")
        generator = make_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = ParamTensor(
            "weight", he_normal(generator, (fan_in, out_channels), fan_in)
        )
        self.bias = ParamTensor("bias", zeros((out_channels,)))
        self._cols: Optional[np.ndarray] = None
        self._geometry: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("Conv2d", inputs, 4)
        if inputs.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2d expected {self.in_channels} channels, "
                f"got {inputs.shape[1]}"
            )
        cols, out_h, out_w = _im2col_2d(inputs, self.kernel_size, self.stride)
        self._cols = cols
        self._geometry = (inputs.shape, out_h, out_w)
        out = cols @ self.weight.value + self.bias.value  # (N, Ho*Wo, C_out)
        batch = inputs.shape[0]
        return out.transpose(0, 2, 1).reshape(
            batch, self.out_channels, out_h, out_w
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._geometry is None:
            raise ShapeError("Conv2d.backward called before forward")
        input_shape, out_h, out_w = self._geometry
        batch, channels, height, width = input_shape
        grad_out = grad_output.reshape(
            batch, self.out_channels, out_h * out_w
        ).transpose(0, 2, 1)  # (N, Ho*Wo, C_out)
        flat_cols = self._cols.reshape(-1, self._cols.shape[-1])
        flat_grad = grad_out.reshape(-1, self.out_channels)
        self.weight.grad += flat_cols.T @ flat_grad
        self.bias.grad += flat_grad.sum(axis=0)
        grad_cols = grad_out @ self.weight.value.T  # (N, Ho*Wo, C*K*K)
        # Scatter-add back to the input tensor.
        grad = np.zeros(input_shape, dtype=np.float64)
        k = self.kernel_size
        patches = grad_cols.reshape(batch, out_h, out_w, channels, k, k)
        for dy in range(k):
            for dx in range(k):
                rows = np.arange(out_h) * self.stride + dy
                cols_idx = np.arange(out_w) * self.stride + dx
                np.add.at(
                    grad,
                    (slice(None), slice(None), rows[:, None], cols_idx[None, :]),
                    patches[:, :, :, :, dy, dx].transpose(0, 3, 1, 2),
                )
        return grad

    def parameters(self) -> List[ParamTensor]:
        return [self.weight, self.bias]

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        channels, height, width = input_shape
        out_h = _out_length(height, self.kernel_size, self.stride)
        out_w = _out_length(width, self.kernel_size, self.stride)
        per_position = (
            2 * channels * self.kernel_size * self.kernel_size * self.out_channels
        )
        total = per_position * out_h * out_w + self.out_channels * out_h * out_w
        return total, (self.out_channels, out_h, out_w)


class MaxPool2d(Module):
    """Non-overlapping 2-D max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int):
        if kernel_size <= 0:
            raise ShapeError("MaxPool2d kernel must be positive")
        self.kernel_size = kernel_size
        self._cache: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("MaxPool2d", inputs, 4)
        k = self.kernel_size
        batch, channels, height, width = inputs.shape
        out_h, out_w = height // k, width // k
        if out_h == 0 or out_w == 0:
            raise ShapeError(
                f"MaxPool2d: input {height}x{width} smaller than kernel {k}"
            )
        trimmed = inputs[:, :, : out_h * k, : out_w * k]
        windows = trimmed.reshape(batch, channels, out_h, k, out_w, k)
        windows = windows.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, out_h, out_w, k * k
        )
        argmax = windows.argmax(axis=4)
        self._cache = (inputs.shape, out_h, out_w, argmax)
        return windows.max(axis=4)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("MaxPool2d.backward called before forward")
        input_shape, out_h, out_w, argmax = self._cache
        batch, channels, height, width = input_shape
        k = self.kernel_size
        grad = np.zeros(input_shape, dtype=np.float64)
        flat_pos = argmax  # position within the k*k window
        dy, dx = flat_pos // k, flat_pos % k
        b_idx, c_idx, h_idx, w_idx = np.ogrid[:batch, :channels, :out_h, :out_w]
        rows = h_idx * k + dy
        cols = w_idx * k + dx
        np.add.at(grad, (b_idx, c_idx, rows, cols), grad_output)
        return grad

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        channels, height, width = input_shape
        k = self.kernel_size
        out_h, out_w = height // k, width // k
        return channels * out_h * out_w * k * k, (channels, out_h, out_w)


class GlobalAvgPool2d(Module):
    """Average over spatial axes: (N, C, H, W) -> (N, C)."""

    def __init__(self) -> None:
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("GlobalAvgPool2d", inputs, 4)
        self._input_shape = inputs.shape
        return inputs.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError("GlobalAvgPool2d.backward called before forward")
        batch, channels, height, width = self._input_shape
        area = height * width
        return np.broadcast_to(
            grad_output[:, :, None, None] / area, self._input_shape
        ).copy()

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        channels, height, width = input_shape
        return channels * height * width, (channels,)
