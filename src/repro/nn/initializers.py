"""Weight initializers.

All initializers take an explicit generator so model construction is
reproducible.  He initialization is the default for ReLU networks; Xavier for
tanh/linear paths (the RNN).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def he_normal(
    rng: np.random.Generator, shape: Tuple[int, ...], fan_in: int
) -> np.ndarray:
    """He (Kaiming) normal initialization: std = sqrt(2 / fan_in)."""
    std = math.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(
    rng: np.random.Generator, shape: Tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot uniform initialization on [-limit, limit]."""
    limit = math.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def orthogonal(rng: np.random.Generator, size: int) -> np.ndarray:
    """Orthogonal square matrix, the standard choice for recurrent weights."""
    matrix = rng.normal(0.0, 1.0, size=(size, size))
    q, r = np.linalg.qr(matrix)
    # Make the decomposition unique (and the matrix properly orthogonal)
    # by fixing the sign of the diagonal of R.
    return q * np.sign(np.diag(r))
