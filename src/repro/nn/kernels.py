"""Hot-path im2col/col2im and pooling kernels with switchable backends.

The convolution and pooling layers funnel all of their array-heavy work
through this module.  Two implementations of every kernel are kept:

``fast`` (the default)
    Strided-slice kernels.  ``im2col`` is a zero-copy
    :func:`numpy.lib.stride_tricks.sliding_window_view` gather (the only
    copy is the final reshape into the patch matrix, which the matmul
    needs contiguous anyway).  ``col2im`` accumulates one strided slice
    per kernel offset: for a fixed offset ``k`` the destination indices
    ``o * stride + k`` are strictly increasing, so the slice has **no
    duplicate indices** and a plain ``+=`` is exact — no scatter needed.

``reference``
    The original ``np.add.at`` / fancy-indexing implementations, kept
    verbatim.  They are numpy's slowest write path but trivially correct,
    which makes them the oracle for the gradient-equivalence tests in
    ``tests/test_nn_kernels.py`` and the baseline the perf harness
    (``benchmarks/perf/``) measures speedups against.

Equivalence contract (pinned by ``tests/test_nn_kernels.py``): the
gather/scatter and pooling kernels are **bit-identical** across backends
for every shape — they add the same contributions in the same
kernel-offset order, and IEEE-754 addition of an identical operand
sequence yields identical bits.  The conv input-gradient entry points
additionally run a gemm, whose flattened batching (see
:func:`scratch_matmul`) may differ by an ulp from the reference's
batched ``@`` at shapes where numpy dispatches the two layouts to
different inner kernels; the per-kernel contract there is agreement to
≤1e-10, while end-to-end seeded training on the repo's workloads stays
bit-identical across backends (the fingerprints do not move).  The
``benchmarks/perf`` harness and the property tests both rely on
:func:`use_backend` to flip the engine wholesale.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..errors import ConfigurationError

BACKENDS = ("fast", "reference")

_BACKEND = "fast"


def get_backend() -> str:
    """Name of the kernel backend currently in use."""
    return _BACKEND


def set_backend(name: str) -> None:
    """Select the kernel backend (``fast`` or ``reference``) globally."""
    global _BACKEND
    if name not in BACKENDS:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; expected one of {BACKENDS}"
        )
    _BACKEND = name


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily switch the kernel backend (used by tests and the perf
    harness to time ``fast`` against ``reference`` on identical inputs)."""
    previous = get_backend()
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def _zeroed(
    shape: Tuple[int, ...], out: Optional[np.ndarray]
) -> np.ndarray:
    """Return a zero-filled float64 buffer, reusing ``out`` when its shape
    matches — the layers keep their input-gradient buffer across steps so
    steady-state training allocates nothing here."""
    if out is not None and out.shape == shape:
        out.fill(0.0)
        return out
    return np.zeros(shape, dtype=np.float64)


def _scratch_zeroed(
    shape: Tuple[int, ...], scratch: dict, key: str
) -> np.ndarray:
    buf = _zeroed(shape, scratch.get(key))
    scratch[key] = buf
    return buf


def scratch_matmul(
    a: np.ndarray, b: np.ndarray, scratch: dict, key: str
) -> np.ndarray:
    """``a @ b`` into a buffer kept in ``scratch`` while shapes match.

    A batched ``(N, M, K) @ (K, P)`` product is computed as one flattened
    ``(N*M, K) @ (K, P)`` gemm: BLAS handles a single tall matrix far
    better than N small calls, and because gemm reduces over K in the
    same order regardless of M, the result is bit-identical (asserted by
    the property tests in ``tests/test_nn_kernels.py``).
    """
    shape = a.shape[:-1] + (b.shape[-1],)
    buf = scratch.get(key)
    if buf is None or buf.shape != shape:
        buf = np.empty(shape, dtype=np.result_type(a, b))
        scratch[key] = buf
    if a.ndim == 3 and b.ndim == 2 and a.flags.c_contiguous:
        np.matmul(
            a.reshape(-1, a.shape[-1]), b,
            out=buf.reshape(-1, shape[-1]),
        )
    else:
        np.matmul(a, b, out=buf)
    return buf


# ---------------------------------------------------------------------------
# 1-D convolution
# ---------------------------------------------------------------------------

def _im2col_1d_fast(
    inputs: np.ndarray, kernel: int, stride: int, out_len: int
) -> np.ndarray:
    """(N, C, L) -> (N, Lo, C*K) patch matrix via a sliding-window view."""
    batch, channels, _ = inputs.shape
    windows = sliding_window_view(inputs, kernel, axis=2)[:, :, ::stride]
    # (N, C, Lo, K) view -> (N, Lo, C, K) -> contiguous (N, Lo, C*K)
    return windows.transpose(0, 2, 1, 3).reshape(
        batch, out_len, channels * kernel
    )


def _im2col_1d_reference(
    inputs: np.ndarray, kernel: int, stride: int, out_len: int
) -> np.ndarray:
    """Fancy-indexing gather (one extra full copy before the reshape)."""
    batch, channels, _ = inputs.shape
    idx = (np.arange(out_len) * stride)[:, None] + np.arange(kernel)[None, :]
    patches = inputs[:, :, idx]  # (N, C, Lo, K)
    return patches.transpose(0, 2, 1, 3).reshape(
        batch, out_len, channels * kernel
    )


def im2col_1d(inputs: np.ndarray, kernel: int, stride: int, out_len: int) -> np.ndarray:
    if _BACKEND == "fast":
        return _im2col_1d_fast(inputs, kernel, stride, out_len)
    return _im2col_1d_reference(inputs, kernel, stride, out_len)


def _conv1d_input_grad_fast(
    grad_out: np.ndarray,
    weight: np.ndarray,
    input_shape: Tuple[int, int, int],
    kernel: int,
    stride: int,
    scratch: dict,
) -> np.ndarray:
    """Input gradient via an offset-major gemm and strided slice-adds.

    The weight matrix is permuted so the gemm emits the patch gradient
    with the kernel offset as the *outer* block axis: the slice for each
    offset ``k`` is then a contiguous ``(N, Lo, C)`` block instead of a
    K-strided gather.  Permuting gemm columns does not change any dot
    product, so the values are bit-identical to the reference layout.
    Per offset, the destinations ``o*stride + k`` are strictly increasing
    in ``o`` — no duplicate indices, so a plain ``+=`` on the strided
    slice is exact and ``np.add.at`` is unnecessary.
    """
    batch, channels, _ = input_shape
    out_len = grad_out.shape[1]
    out_channels = weight.shape[1]
    w_perm = weight.reshape(channels, kernel, out_channels).transpose(
        1, 0, 2
    ).reshape(kernel * channels, out_channels)
    grad_cols = scratch_matmul(
        grad_out, w_perm.T, scratch, "grad_cols"
    )  # (N, Lo, K*C)
    grad = _scratch_zeroed(input_shape, scratch, "grad_input")
    blocks = grad_cols.reshape(batch, out_len, kernel, channels)
    for k in range(kernel):
        end = k + (out_len - 1) * stride + 1
        grad[:, :, k:end:stride] += blocks[:, :, k, :].transpose(0, 2, 1)
    return grad


def _col2im_1d_reference(
    grad_cols: np.ndarray,
    input_shape: Tuple[int, int, int],
    kernel: int,
    stride: int,
    out: Optional[np.ndarray],
) -> np.ndarray:
    batch, channels, _ = input_shape
    out_len = grad_cols.shape[1]
    grad = _zeroed(input_shape, out)
    cols = grad_cols.reshape(batch, out_len, channels, kernel).transpose(
        0, 2, 1, 3
    )  # (N, C, Lo, K)
    for k in range(kernel):
        positions = np.arange(out_len) * stride + k
        np.add.at(grad, (slice(None), slice(None), positions), cols[:, :, :, k])
    return grad


def conv1d_input_grad(
    grad_out: np.ndarray,
    weight: np.ndarray,
    input_shape: Tuple[int, int, int],
    kernel: int,
    stride: int,
    scratch: dict,
) -> np.ndarray:
    """Gradient w.r.t. the conv input: ``grad_out`` (N, Lo, C_out) back
    through ``weight`` (C*K, C_out) and the im2col gather.

    ``scratch`` is a layer-owned dict the backend reuses for its gemm and
    gradient buffers across steps; the returned array aliases it and is
    only valid until the next call with the same dict.
    """
    if _BACKEND == "fast":
        return _conv1d_input_grad_fast(
            grad_out, weight, input_shape, kernel, stride, scratch
        )
    grad_cols = grad_out @ weight.T  # (N, Lo, C*K)
    return _col2im_1d_reference(grad_cols, input_shape, kernel, stride, None)


# ---------------------------------------------------------------------------
# 2-D convolution
# ---------------------------------------------------------------------------

def _im2col_2d_fast(
    inputs: np.ndarray, kernel: int, stride: int, out_h: int, out_w: int
) -> np.ndarray:
    batch, channels, _, _ = inputs.shape
    windows = sliding_window_view(inputs, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (N, C, Ho, Wo, K, K) view
    patches = windows.transpose(0, 2, 3, 1, 4, 5)  # (N, Ho, Wo, C, K, K)
    return patches.reshape(batch, out_h * out_w, channels * kernel * kernel)


def _im2col_2d_reference(
    inputs: np.ndarray, kernel: int, stride: int, out_h: int, out_w: int
) -> np.ndarray:
    batch, channels, _, _ = inputs.shape
    rows = (np.arange(out_h) * stride)[:, None] + np.arange(kernel)[None, :]
    cols = (np.arange(out_w) * stride)[:, None] + np.arange(kernel)[None, :]
    # Gather (N, C, Ho, K, Wo, K)
    patches = inputs[:, :, rows][:, :, :, :, cols]
    patches = patches.transpose(0, 2, 4, 1, 3, 5)  # (N, Ho, Wo, C, K, K)
    return patches.reshape(batch, out_h * out_w, channels * kernel * kernel)


def im2col_2d(
    inputs: np.ndarray, kernel: int, stride: int, out_h: int, out_w: int
) -> np.ndarray:
    """(N, C, H, W) -> (N, Ho*Wo, C*K*K) patch matrix."""
    if _BACKEND == "fast":
        return _im2col_2d_fast(inputs, kernel, stride, out_h, out_w)
    return _im2col_2d_reference(inputs, kernel, stride, out_h, out_w)


def _conv2d_input_grad_fast(
    grad_out: np.ndarray,
    weight: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    out_h: int,
    out_w: int,
    kernel: int,
    stride: int,
    scratch: dict,
) -> np.ndarray:
    """2-D analogue of :func:`_conv1d_input_grad_fast`: offset-major gemm
    so each (dy, dx) slice is a contiguous ``(N, Ho, Wo, C)`` block, then
    one exact strided slice-add per kernel offset."""
    batch, channels, _, _ = input_shape
    out_channels = weight.shape[1]
    k, s = kernel, stride
    w_perm = weight.reshape(channels, k * k, out_channels).transpose(
        1, 0, 2
    ).reshape(k * k * channels, out_channels)
    grad_cols = scratch_matmul(
        grad_out, w_perm.T, scratch, "grad_cols"
    )  # (N, Ho*Wo, K*K*C)
    grad = _scratch_zeroed(input_shape, scratch, "grad_input")
    blocks = grad_cols.reshape(batch, out_h, out_w, k * k, channels)
    for dy in range(k):
        row_end = dy + (out_h - 1) * s + 1
        for dx in range(k):
            col_end = dx + (out_w - 1) * s + 1
            grad[:, :, dy:row_end:s, dx:col_end:s] += blocks[
                :, :, :, dy * k + dx, :
            ].transpose(0, 3, 1, 2)
    return grad


def _col2im_2d_reference(
    grad_cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    out_h: int,
    out_w: int,
    kernel: int,
    stride: int,
    out: Optional[np.ndarray],
) -> np.ndarray:
    batch, channels, _, _ = input_shape
    grad = _zeroed(input_shape, out)
    k = kernel
    patches = grad_cols.reshape(batch, out_h, out_w, channels, k, k)
    for dy in range(k):
        for dx in range(k):
            rows = np.arange(out_h) * stride + dy
            cols_idx = np.arange(out_w) * stride + dx
            np.add.at(
                grad,
                (slice(None), slice(None), rows[:, None], cols_idx[None, :]),
                patches[:, :, :, :, dy, dx].transpose(0, 3, 1, 2),
            )
    return grad


def conv2d_input_grad(
    grad_out: np.ndarray,
    weight: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    out_h: int,
    out_w: int,
    kernel: int,
    stride: int,
    scratch: dict,
) -> np.ndarray:
    """Gradient w.r.t. the conv input: ``grad_out`` (N, Ho*Wo, C_out)
    back through ``weight`` (C*K*K, C_out) and the im2col gather."""
    if _BACKEND == "fast":
        return _conv2d_input_grad_fast(
            grad_out, weight, input_shape, out_h, out_w, kernel, stride,
            scratch,
        )
    grad_cols = grad_out @ weight.T  # (N, Ho*Wo, C*K*K)
    return _col2im_2d_reference(
        grad_cols, input_shape, out_h, out_w, kernel, stride, None
    )


# ---------------------------------------------------------------------------
# Max pooling (non-overlapping windows: kernel == stride)
# ---------------------------------------------------------------------------

def _maxpool_forward_fast(
    windows: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """(…, K) windows -> (max, argmax) in one pass over the data.

    ``argmax`` fully determines the max (``take_along_axis`` at the argmax
    *is* the window maximum, bit for bit), so the second full ``max``
    reduction of the reference implementation is redundant.  The ubiquitous
    kernel-2 case collapses further to a single vectorized comparison whose
    tie-breaking (first maximum wins) matches ``argmax`` exactly.
    """
    if windows.shape[-1] == 2:
        first, second = windows[..., 0], windows[..., 1]
        # maximum.reduce over two lanes IS np.maximum — bit-identical,
        # NaN-propagating.  Ties keep index 0, matching argmax; a NaN
        # window can misroute argmax, but a NaN maximum also NaNs the
        # loss, which aborts the trial before any backward consumes it.
        argmax = (second > first).astype(np.intp)
        return np.maximum(first, second), argmax
    if windows.shape[-1] == 4:
        # 2x2 pooling windows: a comparison tournament.  maximum() keeps
        # the later operand on ties exactly like maximum.reduce's left
        # fold, and the index selection keeps the first maximum exactly
        # like argmax, so both outputs stay bit-identical.
        w0, w1 = windows[..., 0], windows[..., 1]
        w2, w3 = windows[..., 2], windows[..., 3]
        front_idx = (w1 > w0).astype(np.intp)
        back_idx = (w3 > w2).astype(np.intp)
        back_idx += 2
        front = np.maximum(w0, w1)
        back = np.maximum(w2, w3)
        return np.maximum(front, back), np.where(
            back > front, back_idx, front_idx
        )
    argmax = windows.argmax(axis=-1)
    maxima = np.take_along_axis(windows, argmax[..., None], axis=-1)
    return maxima[..., 0], argmax


def _maxpool_forward_reference(
    windows: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Two full passes: one for the argmax, one for the max."""
    argmax = windows.argmax(axis=-1)
    return windows.max(axis=-1), argmax


def maxpool_forward(windows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce the trailing window axis to ``(max, argmax)``."""
    if _BACKEND == "fast":
        return _maxpool_forward_fast(windows)
    return _maxpool_forward_reference(windows)


def _maxpool2d_windows(trimmed: np.ndarray, kernel: int) -> np.ndarray:
    """(N, C, Ho*K, Wo*K) -> materialized (N, C, Ho, Wo, K*K) windows."""
    batch, channels, height, width = trimmed.shape
    k = kernel
    region = trimmed.reshape(batch, channels, height // k, k, width // k, k)
    return region.transpose(0, 1, 2, 4, 3, 5).reshape(
        batch, channels, height // k, width // k, k * k
    )


def maxpool2d_forward(
    trimmed: np.ndarray, kernel: int
) -> Tuple[np.ndarray, np.ndarray]:
    """2-D window reduction of a pre-trimmed (N, C, Ho*K, Wo*K) input to
    ``(max, argmax)``, with argmax numbered in row-major K*K lane order.

    The reference path materializes every window as a trailing axis (one
    full input copy) before reducing twice.  The fast K=2 path reduces the
    four strided lane views directly — no copy, one comparison tournament
    (bit-identical, see :func:`_maxpool_forward_fast`).
    """
    if _BACKEND == "fast" and kernel == 2:
        batch, channels, height, width = trimmed.shape
        region = trimmed.reshape(
            batch, channels, height // 2, 2, width // 2, 2
        )  # axis-splitting views even a sliced input; no copy
        w0, w1 = region[:, :, :, 0, :, 0], region[:, :, :, 0, :, 1]
        w2, w3 = region[:, :, :, 1, :, 0], region[:, :, :, 1, :, 1]
        front_idx = (w1 > w0).astype(np.intp)
        back_idx = (w3 > w2).astype(np.intp)
        back_idx += 2
        front = np.maximum(w0, w1)
        back = np.maximum(w2, w3)
        return np.maximum(front, back), np.where(
            back > front, back_idx, front_idx
        )
    windows = _maxpool2d_windows(trimmed, kernel)
    if _BACKEND == "fast":
        return _maxpool_forward_fast(windows)
    return _maxpool_forward_reference(windows)


def _maxpool1d_backward_fast(
    grad_output: np.ndarray,
    input_shape: Tuple[int, int, int],
    out_len: int,
    kernel: int,
    argmax: np.ndarray,
    out: Optional[np.ndarray],
) -> np.ndarray:
    batch, channels, _ = input_shape
    grad = _zeroed(input_shape, out)
    windows = grad[:, :, : out_len * kernel].reshape(
        batch, channels, out_len, kernel
    )
    # The reference write path (indexed assignment on disjoint windows)
    # was never the bottleneck here — the fast path's win is reusing the
    # zeroed gradient buffer instead of allocating it every step.
    b_idx, c_idx, o_idx = np.ogrid[:batch, :channels, :out_len]
    windows[b_idx, c_idx, o_idx, argmax] = grad_output
    return grad


def _maxpool1d_backward_reference(
    grad_output: np.ndarray,
    input_shape: Tuple[int, int, int],
    out_len: int,
    kernel: int,
    argmax: np.ndarray,
    out: Optional[np.ndarray],
) -> np.ndarray:
    batch, channels, _ = input_shape
    grad = _zeroed(input_shape, out)
    windows = grad.reshape(batch, channels, -1)[
        :, :, : out_len * kernel
    ].reshape(batch, channels, out_len, kernel)
    b_idx, c_idx, o_idx = np.ogrid[:batch, :channels, :out_len]
    windows[b_idx, c_idx, o_idx, argmax] = grad_output
    return grad


def maxpool1d_backward(
    grad_output: np.ndarray,
    input_shape: Tuple[int, int, int],
    out_len: int,
    kernel: int,
    argmax: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Route ``grad_output`` to each window's argmax position."""
    if _BACKEND == "fast":
        return _maxpool1d_backward_fast(
            grad_output, input_shape, out_len, kernel, argmax, out
        )
    return _maxpool1d_backward_reference(
        grad_output, input_shape, out_len, kernel, argmax, out
    )


def _maxpool2d_backward_fast(
    grad_output: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    out_h: int,
    out_w: int,
    kernel: int,
    argmax: np.ndarray,
    out: Optional[np.ndarray],
) -> np.ndarray:
    batch, channels, _, _ = input_shape
    k = kernel
    grad = _zeroed(input_shape, out)
    # Non-overlapping windows: every (window, argmax) pair targets a
    # distinct input cell, so a plain fancy assignment is an exact
    # replacement for the buffered np.add.at scatter.
    dy, dx = argmax // k, argmax % k
    b_idx, c_idx, h_idx, w_idx = np.ogrid[:batch, :channels, :out_h, :out_w]
    grad[b_idx, c_idx, h_idx * k + dy, w_idx * k + dx] = grad_output
    return grad


def _maxpool2d_backward_reference(
    grad_output: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    out_h: int,
    out_w: int,
    kernel: int,
    argmax: np.ndarray,
    out: Optional[np.ndarray],
) -> np.ndarray:
    batch, channels, _, _ = input_shape
    k = kernel
    grad = _zeroed(input_shape, out)
    flat_pos = argmax  # position within the k*k window
    dy, dx = flat_pos // k, flat_pos % k
    b_idx, c_idx, h_idx, w_idx = np.ogrid[:batch, :channels, :out_h, :out_w]
    rows = h_idx * k + dy
    cols = w_idx * k + dx
    np.add.at(grad, (b_idx, c_idx, rows, cols), grad_output)
    return grad


def maxpool2d_backward(
    grad_output: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    out_h: int,
    out_w: int,
    kernel: int,
    argmax: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Route ``grad_output`` to each window's argmax position."""
    if _BACKEND == "fast":
        return _maxpool2d_backward_fast(
            grad_output, input_shape, out_h, out_w, kernel, argmax, out
        )
    return _maxpool2d_backward_reference(
        grad_output, input_shape, out_h, out_w, kernel, argmax, out
    )
