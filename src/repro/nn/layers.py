"""Dense and utility layers: Linear, activations, Dropout, BatchNorm, etc."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..rng import SeedLike, make_rng
from .initializers import he_normal, zeros
from .module import Module, ParamTensor, Shape, check_ndim


class Linear(Module):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: SeedLike = None):
        if in_features <= 0 or out_features <= 0:
            raise ShapeError("Linear features must be positive")
        generator = make_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = ParamTensor(
            "weight", he_normal(generator, (in_features, out_features), in_features)
        )
        self.bias = ParamTensor("bias", zeros((out_features,)))
        self._inputs: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("Linear", inputs, 2)
        if inputs.shape[1] != self.in_features:
            raise ShapeError(
                f"Linear expected {self.in_features} features, "
                f"got {inputs.shape[1]}"
            )
        self._inputs = inputs
        return inputs @ self.weight.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise ShapeError("Linear.backward called before forward")
        self.weight.grad += self._inputs.T @ grad_output
        self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> List[ParamTensor]:
        return [self.weight, self.bias]

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        (features,) = input_shape
        # One multiply-add per weight, plus the bias add.
        return 2 * features * self.out_features + self.out_features, (
            self.out_features,
        )


class ReLU(Module):
    """Rectified linear unit.

    Keeps its mask/output/gradient buffers across steps so steady-state
    training allocates nothing here (activations are among the largest
    arrays in a step).  The returned arrays are therefore only valid
    until the next call — the same contract as the conv layers' reused
    gradient buffers.
    """

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None
        self._grad: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if self._mask is not None and self._mask.shape == inputs.shape:
            np.greater(inputs, 0, out=self._mask)
        else:
            self._mask = inputs > 0
        if self._out is not None and self._out.shape == inputs.shape:
            return np.multiply(inputs, self._mask, out=self._out)
        self._out = inputs * self._mask
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("ReLU.backward called before forward")
        if self._grad is not None and self._grad.shape == grad_output.shape:
            return np.multiply(grad_output, self._mask, out=self._grad)
        self._grad = grad_output * self._mask
        return self._grad

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        return int(np.prod(input_shape)), input_shape


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ShapeError("Tanh.backward called before forward")
        return grad_output * (1.0 - self._output**2)

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        # tanh is several flops per element; 4 is the conventional estimate.
        return 4 * int(np.prod(input_shape)), input_shape


class Dropout(Module):
    """Inverted dropout: active only while training.

    The YOLO-lite workload tunes this layer's ``rate`` (paper §5.1: dropout
    in [0.1, 0.5]).
    """

    def __init__(self, rate: float, rng: SeedLike = None):
        if not 0.0 <= rate < 1.0:
            raise ShapeError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = make_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        return int(np.prod(input_shape)), input_shape


class Flatten(Module):
    """Collapse all non-batch dimensions into one."""

    def __init__(self) -> None:
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError("Flatten.backward called before forward")
        return grad_output.reshape(self._input_shape)

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        return 0, (int(np.prod(input_shape)),)


class BatchNorm1d(Module):
    """Batch normalization over feature vectors (N, F).

    Uses batch statistics while training and exponential running statistics
    for inference, like the standard formulation.
    """

    def __init__(self, features: int, momentum: float = 0.1, eps: float = 1e-5):
        self.features = features
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = ParamTensor("gamma", np.ones((features,)))
        self.beta = ParamTensor("beta", zeros((features,)))
        self.running_mean = np.zeros((features,))
        self.running_var = np.ones((features,))
        self._cache: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("BatchNorm1d", inputs, 2)
        if self.training:
            mean = inputs.mean(axis=0)
            var = inputs.var(axis=0)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        normalized = (inputs - mean) / std
        self._cache = (normalized, std)
        return self.gamma.value * normalized + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("BatchNorm1d.backward called before forward")
        normalized, std = self._cache
        batch = grad_output.shape[0]
        self.gamma.grad += (grad_output * normalized).sum(axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        grad_normalized = grad_output * self.gamma.value
        if not self.training:
            return grad_normalized / std
        # Standard batch-norm backward through the batch statistics.
        return (
            grad_normalized
            - grad_normalized.mean(axis=0)
            - normalized * (grad_normalized * normalized).mean(axis=0)
        ) / std

    def parameters(self) -> List[ParamTensor]:
        return [self.gamma, self.beta]

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        return 4 * int(np.prod(input_shape)), input_shape


class Residual(Module):
    """Residual wrapper: ``y = inner(x) + x`` (shapes must match).

    The ResNet-like reproduction model stacks these blocks; the tunable
    ``num_layers`` hyperparameter controls how many.
    """

    def __init__(self, inner: Module):
        self.inner = inner

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return self.inner.forward(inputs) + inputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.inner.backward(grad_output) + grad_output

    def parameters(self) -> List[ParamTensor]:
        return self.inner.parameters()

    def children(self):
        return (self.inner,)

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        inner_flops, output_shape = self.inner.flops(input_shape)
        if tuple(output_shape) != tuple(input_shape):
            raise ShapeError(
                "Residual inner module must preserve shape: "
                f"{input_shape} -> {output_shape}"
            )
        return inner_flops + int(np.prod(input_shape)), input_shape


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        self.modules: List[Module] = list(modules)

    def append(self, module: Module) -> "Sequential":
        self.modules.append(module)
        return self

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = inputs
        for module in self.modules:
            output = module.forward(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad

    def parameters(self) -> List[ParamTensor]:
        result: List[ParamTensor] = []
        for module in self.modules:
            result.extend(module.parameters())
        return result

    def children(self):
        return tuple(self.modules)

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        total = 0
        shape = input_shape
        for module in self.modules:
            module_flops, shape = module.flops(shape)
            total += module_flops
        return total, shape
