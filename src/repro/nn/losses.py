"""Loss functions with analytic gradients."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class Loss:
    """Base class: ``forward`` returns a scalar, ``backward`` the gradient
    with respect to the predictions."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError


class CrossEntropyLoss(Loss):
    """Softmax cross entropy over integer class targets."""

    def __init__(self) -> None:
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ShapeError(f"expected 2-D logits, got {logits.shape}")
        targets = np.asarray(targets)
        if targets.shape != (logits.shape[0],):
            raise ShapeError(
                f"targets shape {targets.shape} does not match batch "
                f"{logits.shape[0]}"
            )
        probabilities = softmax(logits)
        self._cache = (probabilities, targets)
        rows = np.arange(logits.shape[0])
        clipped = np.clip(probabilities[rows, targets], 1e-12, None)
        return float(-np.log(clipped).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("CrossEntropyLoss.backward called before forward")
        probabilities, targets = self._cache
        grad = probabilities.copy()
        rows = np.arange(grad.shape[0])
        grad[rows, targets] -= 1.0
        return grad / grad.shape[0]


class MSELoss(Loss):
    """Mean squared error over arbitrary-shape targets."""

    def __init__(self) -> None:
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ShapeError(
                f"prediction shape {predictions.shape} != target shape "
                f"{targets.shape}"
            )
        self._cache = (predictions, targets)
        return float(((predictions - targets) ** 2).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("MSELoss.backward called before forward")
        predictions, targets = self._cache
        return 2.0 * (predictions - targets) / predictions.size


class DetectionLoss(Loss):
    """Simplified single-object detection loss for the YOLO-lite workload.

    Predictions are ``(N, 4 + num_classes)``: four box coordinates followed
    by class logits.  The loss is MSE on the box plus cross entropy on the
    class, weighted by ``box_weight`` — the same structure (localisation +
    classification) as the real YOLO objective, reduced to one object per
    image.
    """

    def __init__(self, num_classes: int, box_weight: float = 1.0):
        if num_classes <= 1:
            raise ShapeError("DetectionLoss needs at least 2 classes")
        self.num_classes = num_classes
        self.box_weight = float(box_weight)
        self._cache: Optional[tuple] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        expected = 4 + self.num_classes
        if predictions.ndim != 2 or predictions.shape[1] != expected:
            raise ShapeError(
                f"expected predictions (N, {expected}), got {predictions.shape}"
            )
        targets = np.asarray(targets, dtype=np.float64)
        if targets.shape != (predictions.shape[0], 5):
            raise ShapeError(
                "detection targets must be (N, 5): 4 box coords + class id"
            )
        boxes_pred = predictions[:, :4]
        logits = predictions[:, 4:]
        boxes_true = targets[:, :4]
        classes = targets[:, 4].astype(int)
        probabilities = softmax(logits)
        rows = np.arange(predictions.shape[0])
        box_loss = ((boxes_pred - boxes_true) ** 2).mean()
        clipped = np.clip(probabilities[rows, classes], 1e-12, None)
        class_loss = float(-np.log(clipped).mean())
        self._cache = (boxes_pred, boxes_true, probabilities, classes)
        return float(self.box_weight * box_loss + class_loss)

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("DetectionLoss.backward called before forward")
        boxes_pred, boxes_true, probabilities, classes = self._cache
        batch = boxes_pred.shape[0]
        grad = np.zeros((batch, 4 + self.num_classes))
        grad[:, :4] = (
            self.box_weight * 2.0 * (boxes_pred - boxes_true) / (batch * 4)
        )
        grad_class = probabilities.copy()
        rows = np.arange(batch)
        grad_class[rows, classes] -= 1.0
        grad[:, 4:] = grad_class / batch
        return grad
