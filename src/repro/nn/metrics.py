"""Evaluation metrics beyond plain top-1 accuracy.

Used by the examples and available to downstream users of the NN engine;
the tuning servers themselves only need the task-aware accuracy in
:mod:`repro.nn.trainer`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Fraction of rows whose true class is among the k largest logits."""
    if logits.ndim != 2:
        raise ShapeError(f"expected 2-D logits, got shape {logits.shape}")
    targets = np.asarray(targets)
    if targets.shape != (logits.shape[0],):
        raise ShapeError("targets must be 1-D matching the batch")
    if not 1 <= k <= logits.shape[1]:
        raise ShapeError(f"k must be in [1, {logits.shape[1]}], got {k}")
    top = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    hits = (top == targets[:, None]).any(axis=1)
    return float(hits.mean())


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, num_classes: int
) -> np.ndarray:
    """``matrix[i, j]`` = count of class-i samples predicted as class j."""
    predictions = np.asarray(predictions, dtype=int)
    targets = np.asarray(targets, dtype=int)
    if predictions.shape != targets.shape or predictions.ndim != 1:
        raise ShapeError("predictions and targets must be equal 1-D arrays")
    if ((predictions < 0) | (predictions >= num_classes)).any():
        raise ShapeError("prediction out of class range")
    if ((targets < 0) | (targets >= num_classes)).any():
        raise ShapeError("target out of class range")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix


def precision_recall(
    matrix: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-class precision and recall from a confusion matrix.

    Classes with no predictions (or no samples) get 0 rather than NaN.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ShapeError("confusion matrix must be square")
    true_positives = np.diag(matrix)
    predicted = matrix.sum(axis=0)
    actual = matrix.sum(axis=1)
    precision = np.divide(
        true_positives, predicted,
        out=np.zeros_like(true_positives), where=predicted > 0,
    )
    recall = np.divide(
        true_positives, actual,
        out=np.zeros_like(true_positives), where=actual > 0,
    )
    return precision, recall


def macro_f1(matrix: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores."""
    precision, recall = precision_recall(matrix)
    denominator = precision + recall
    f1 = np.divide(
        2 * precision * recall, denominator,
        out=np.zeros_like(precision), where=denominator > 0,
    )
    return float(f1.mean())


def box_iou(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Element-wise IoU of (cx, cy, w, h) normalised boxes.

    Used to evaluate the detection workload's localisation quality beyond
    the trainer's centre-distance criterion.
    """
    boxes_a = np.asarray(boxes_a, dtype=np.float64)
    boxes_b = np.asarray(boxes_b, dtype=np.float64)
    if boxes_a.shape != boxes_b.shape or boxes_a.shape[-1] != 4:
        raise ShapeError("boxes must be matching (N, 4) arrays")

    def corners(boxes):
        cx, cy, w, h = boxes[..., 0], boxes[..., 1], boxes[..., 2], boxes[..., 3]
        return cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2

    ax1, ay1, ax2, ay2 = corners(boxes_a)
    bx1, by1, bx2, by2 = corners(boxes_b)
    inter_w = np.clip(np.minimum(ax2, bx2) - np.maximum(ax1, bx1), 0, None)
    inter_h = np.clip(np.minimum(ay2, by2) - np.maximum(ay1, by1), 0, None)
    intersection = inter_w * inter_h
    area_a = np.clip(ax2 - ax1, 0, None) * np.clip(ay2 - ay1, 0, None)
    area_b = np.clip(bx2 - bx1, 0, None) * np.clip(by2 - by1, 0, None)
    union = area_a + area_b - intersection
    return np.divide(
        intersection, union,
        out=np.zeros_like(intersection), where=union > 0,
    )
