"""Reproduction model zoo: the paper's four workload architectures."""

from .m5 import M5_EMBEDDING_CHOICES, build_m5
from .registry import MODEL_FAMILIES, ModelFamily, get_model_family, model_names
from .resnet import (
    RESNET_LAYER_CHOICES,
    build_conv_resnet,
    build_resnet,
    residual_blocks_for,
)
from .textrnn import TEXTRNN_STRIDE_RANGE, build_textrnn
from .yolo import YOLO_DROPOUT_RANGE, build_yolo

__all__ = [
    "ModelFamily",
    "MODEL_FAMILIES",
    "get_model_family",
    "model_names",
    "build_resnet",
    "build_conv_resnet",
    "residual_blocks_for",
    "RESNET_LAYER_CHOICES",
    "build_m5",
    "M5_EMBEDDING_CHOICES",
    "build_textrnn",
    "TEXTRNN_STRIDE_RANGE",
    "build_yolo",
    "YOLO_DROPOUT_RANGE",
]
