"""M5-like 1-D convolutional network for the SR (speech) workload.

The paper tunes M5's *embedding dimension* in {32, 64, 128} (§5.1); here
that is the channel width of the convolutional trunk, exactly as in the
original M5 architecture (Dai et al.), scaled to the synthetic keyword
dataset.
"""

from __future__ import annotations

from ...errors import ConfigurationError
from ...rng import SeedLike, derive_seed, ensure_seed
from ..conv import Conv1d, GlobalAvgPool1d, MaxPool1d
from ..layers import Linear, ReLU, Sequential

#: Paper's tunable values for the M5 embedding dimension.
M5_EMBEDDING_CHOICES = (32, 64, 128)


def build_m5(
    sample_shape: tuple,
    num_classes: int,
    embedding_dim: int = 32,
    seed: SeedLike = None,
) -> Sequential:
    """Construct the M5-like audio classifier.

    ``sample_shape`` is ``(channels, length)``; the synthetic Speech
    Commands dataset uses ``(1, 128)``.
    """
    if embedding_dim <= 0:
        raise ConfigurationError(
            f"embedding_dim must be positive, got {embedding_dim}"
        )
    channels, length = sample_shape
    if length < 32:
        raise ConfigurationError(
            f"M5 needs input length >= 32, got {length}"
        )
    base_seed = ensure_seed(seed)
    return Sequential(
        Conv1d(channels, embedding_dim, kernel_size=8, stride=4,
               rng=derive_seed(base_seed, "conv1")),
        ReLU(),
        MaxPool1d(2),
        Conv1d(embedding_dim, embedding_dim, kernel_size=3,
               rng=derive_seed(base_seed, "conv2")),
        ReLU(),
        MaxPool1d(2),
        GlobalAvgPool1d(),
        Linear(embedding_dim, num_classes, rng=derive_seed(base_seed, "head")),
    )
