"""Model family registry.

A :class:`ModelFamily` bundles everything the tuning system needs to know
about an architecture family: how to build an instance from model
hyperparameters, which loss trains it, and the family's tunable
model-hyperparameter (paper §5.1: ResNet → num_layers, M5 → embedding_dim,
RNN → stride, YOLO → dropout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Tuple

from ...errors import WorkloadError
from ...rng import SeedLike
from ...space import Categorical, Float, Integer, Parameter
from ..losses import CrossEntropyLoss, DetectionLoss, Loss
from ..module import Module
from .m5 import M5_EMBEDDING_CHOICES, build_m5
from .resnet import RESNET_LAYER_CHOICES, build_resnet
from .textrnn import TEXTRNN_STRIDE_RANGE, build_textrnn
from .yolo import YOLO_DROPOUT_RANGE, build_yolo


@dataclass(frozen=True)
class ModelFamily:
    """Architecture family metadata used by workloads and tuning servers."""

    name: str
    build: Callable[..., Module]
    make_loss: Callable[[int], Loss]
    model_parameter: Parameter
    default_hyperparameters: Mapping[str, Any]
    task: str = "classification"
    #: Hyperparameters that change tensor *shapes* (layer widths/depths).
    #: Trials agreeing on these (plus budget and data) can be stacked into
    #: one batched training run; the remaining hyperparameters are scalars
    #: (lr, momentum, dropout) that batch along the lane axis.
    shape_hyperparameters: Tuple[str, ...] = ()
    #: Whether the family's layer tree has batched twins in
    #: :mod:`repro.nn.batched` (recurrent families do not).
    stackable: bool = False

    def instantiate(
        self,
        sample_shape: tuple,
        num_classes: int,
        hyperparameters: Mapping[str, Any] = None,
        seed: SeedLike = None,
    ) -> Module:
        """Build a model, overlaying ``hyperparameters`` on the defaults.

        Unknown keys are ignored so a full tuning configuration (which also
        carries training/system parameters) can be passed directly.
        """
        merged = dict(self.default_hyperparameters)
        if hyperparameters:
            merged.update(
                (k, v) for k, v in hyperparameters.items() if k in merged
            )
        return self.build(
            sample_shape=sample_shape,
            num_classes=num_classes,
            seed=seed,
            **merged,
        )


def _classification_loss(num_classes: int) -> Loss:
    return CrossEntropyLoss()


def _detection_loss(num_classes: int) -> Loss:
    return DetectionLoss(num_classes=num_classes)


MODEL_FAMILIES: Dict[str, ModelFamily] = {
    "resnet": ModelFamily(
        name="resnet",
        build=lambda sample_shape, num_classes, seed=None, num_layers=18, width=32:
            build_resnet(sample_shape, num_classes, num_layers=num_layers,
                         width=width, seed=seed),
        make_loss=_classification_loss,
        model_parameter=Categorical(
            "num_layers", RESNET_LAYER_CHOICES, kind="model"
        ),
        default_hyperparameters={"num_layers": 18, "width": 32},
        shape_hyperparameters=("num_layers", "width"),
        stackable=True,
    ),
    "m5": ModelFamily(
        name="m5",
        build=lambda sample_shape, num_classes, seed=None, embedding_dim=32:
            build_m5(sample_shape, num_classes, embedding_dim=embedding_dim,
                     seed=seed),
        make_loss=_classification_loss,
        model_parameter=Categorical(
            "embedding_dim", M5_EMBEDDING_CHOICES, kind="model"
        ),
        default_hyperparameters={"embedding_dim": 32},
        shape_hyperparameters=("embedding_dim",),
        stackable=True,
    ),
    "textrnn": ModelFamily(
        name="textrnn",
        build=lambda sample_shape, num_classes, seed=None, stride=1, hidden_size=32:
            build_textrnn(sample_shape, num_classes, stride=stride,
                          hidden_size=hidden_size, seed=seed),
        make_loss=_classification_loss,
        model_parameter=Integer(
            "stride", TEXTRNN_STRIDE_RANGE[0], TEXTRNN_STRIDE_RANGE[1],
            log=True, kind="model",
        ),
        default_hyperparameters={"stride": 1, "hidden_size": 32},
    ),
    "yolo": ModelFamily(
        name="yolo",
        build=lambda sample_shape, num_classes, seed=None, dropout=0.1,
                     trunk_channels=12:
            build_yolo(sample_shape, num_classes, dropout=dropout,
                       trunk_channels=trunk_channels, seed=seed),
        make_loss=_detection_loss,
        model_parameter=Float(
            "dropout", YOLO_DROPOUT_RANGE[0], YOLO_DROPOUT_RANGE[1],
            kind="model",
        ),
        default_hyperparameters={"dropout": 0.1, "trunk_channels": 12},
        task="detection",
        shape_hyperparameters=("trunk_channels",),
        stackable=True,
    ),
}


def model_names() -> list:
    return sorted(MODEL_FAMILIES)


def get_model_family(name: str) -> ModelFamily:
    try:
        return MODEL_FAMILIES[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown model family {name!r}; expected one of {model_names()}"
        ) from None
