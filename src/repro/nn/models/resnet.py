"""ResNet-like image classifier for the IC workload.

The paper tunes ResNet's *number of layers* in {18, 34, 50} (§5.1).  The
reproduction keeps the residual-network structure — a stem, a stack of
residual blocks whose depth scales with ``num_layers``, and a classifier
head — but builds the blocks from dense layers over flattened image
features so numpy training remains fast.  FLOPs and parameter counts grow
with ``num_layers`` just as in the original family, which is what the
hardware emulator and the tuning results depend on.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from ...rng import SeedLike, derive_seed, ensure_seed
from ..conv import Conv2d, GlobalAvgPool2d, MaxPool2d
from ..layers import Flatten, Linear, ReLU, Residual, Sequential

#: Paper's tunable values for the ResNet depth hyperparameter.
RESNET_LAYER_CHOICES = (18, 34, 50)


def residual_blocks_for(num_layers: int) -> int:
    """Map the nominal layer count to a stack depth.

    Real ResNet-18/34/50 have 8/16/16 blocks (the last with 3-layer
    bottlenecks); we use a simple proportional rule that preserves the
    compute ordering 18 < 34 < 50.
    """
    return max(1, num_layers // 6)


def build_resnet(
    sample_shape: tuple,
    num_classes: int,
    num_layers: int = 18,
    width: int = 32,
    seed: SeedLike = None,
) -> Sequential:
    """Construct the ResNet-like classifier.

    Parameters
    ----------
    sample_shape:
        Per-sample input shape, e.g. ``(3, 8, 8)``.
    num_layers:
        Nominal depth (18, 34 or 50 in the paper's search space; any
        positive integer is accepted).
    width:
        Hidden width of every residual block.
    """
    if num_layers <= 0:
        raise ConfigurationError(f"num_layers must be positive, got {num_layers}")
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    base_seed = ensure_seed(seed)
    input_features = int(np.prod(sample_shape))
    model = Sequential(
        Flatten(),
        Linear(input_features, width, rng=derive_seed(base_seed, "stem")),
        ReLU(),
    )
    for block in range(residual_blocks_for(num_layers)):
        exit_layer = Linear(
            width, width, rng=derive_seed(base_seed, "block", block, 1)
        )
        # Down-scale each block's exit layer so the identity path dominates
        # at initialization — the dense-layer analogue of zero-init'ing the
        # last batch-norm in real ResNets; keeps deep stacks trainable.
        exit_layer.weight.value *= 0.1
        inner = Sequential(
            Linear(width, width, rng=derive_seed(base_seed, "block", block, 0)),
            ReLU(),
            exit_layer,
        )
        model.append(Residual(inner))
        model.append(ReLU())
    model.append(Linear(width, num_classes, rng=derive_seed(base_seed, "head")))
    return model


def build_conv_resnet(
    sample_shape: tuple,
    num_classes: int,
    num_layers: int = 18,
    width: int = 32,
    seed: SeedLike = None,
) -> Sequential:
    """Convolutional variant of the ResNet-like classifier.

    A genuine conv stem (two 3x3 convolutions around a 2x2 max-pool,
    closed by global average pooling) feeding the same dense residual
    stack as :func:`build_resnet`.  :class:`~repro.nn.conv.Conv2d` has no
    padding and :class:`~repro.nn.layers.Residual` requires its inner
    module to preserve shape, so the residual blocks themselves stay
    dense; the convolutions are where the im2col/col2im kernels spend
    their time, which is what this variant exists to exercise.

    Not the default IC model (tuning results were produced with
    :func:`build_resnet` and must stay reproducible); used by the
    ``benchmarks/perf`` harness to stress the 2-D conv kernels at the
    paper's native 32x32 CIFAR-10 resolution.
    """
    if num_layers <= 0:
        raise ConfigurationError(f"num_layers must be positive, got {num_layers}")
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    base_seed = ensure_seed(seed)
    channels = int(sample_shape[0])
    model = Sequential(
        Conv2d(channels, width, 3, rng=derive_seed(base_seed, "conv-stem")),
        ReLU(),
        MaxPool2d(2),
        Conv2d(width, width, 3, rng=derive_seed(base_seed, "conv-stem", 1)),
        ReLU(),
        GlobalAvgPool2d(),
    )
    for block in range(residual_blocks_for(num_layers)):
        exit_layer = Linear(
            width, width, rng=derive_seed(base_seed, "block", block, 1)
        )
        exit_layer.weight.value *= 0.1
        inner = Sequential(
            Linear(width, width, rng=derive_seed(base_seed, "block", block, 0)),
            ReLU(),
            exit_layer,
        )
        model.append(Residual(inner))
        model.append(ReLU())
    model.append(Linear(width, num_classes, rng=derive_seed(base_seed, "head")))
    return model
