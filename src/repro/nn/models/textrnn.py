"""Recurrent text classifier for the NLP workload.

The paper tunes a *stride* hyperparameter for the RNN model, varying from 1
to 32 (§5.1).  We realise it as a subsampling stride on the token sequence
before the recurrence: larger strides shorten the unrolled RNN (cheaper to
train and serve) at the cost of discarding tokens.
"""

from __future__ import annotations

from ...errors import ConfigurationError
from ...rng import SeedLike, derive_seed, ensure_seed
from ..layers import Linear, Sequential
from ..recurrent import ElmanRNN, SequenceStride

#: Paper's stride range for the NLP workload.
TEXTRNN_STRIDE_RANGE = (1, 32)


def build_textrnn(
    sample_shape: tuple,
    num_classes: int,
    stride: int = 1,
    hidden_size: int = 32,
    seed: SeedLike = None,
) -> Sequential:
    """Construct the stride-subsampled RNN classifier.

    ``sample_shape`` is ``(sequence_length, embedding_dim)``.
    """
    if stride <= 0:
        raise ConfigurationError(f"stride must be positive, got {stride}")
    if hidden_size <= 0:
        raise ConfigurationError(
            f"hidden_size must be positive, got {hidden_size}"
        )
    sequence_length, embedding_dim = sample_shape
    base_seed = ensure_seed(seed)
    return Sequential(
        SequenceStride(stride),
        ElmanRNN(embedding_dim, hidden_size, rng=derive_seed(base_seed, "rnn")),
        Linear(hidden_size, num_classes, rng=derive_seed(base_seed, "head")),
    )
