"""YOLO-lite single-object detector for the OD workload.

The paper tunes YOLO's *dropout rate* in [0.1, 0.5] (§5.1).  The
reproduction keeps YOLO's essential output structure — a joint box-plus-
class prediction trained with a localisation + classification loss — on a
compact convolutional trunk suited to the synthetic COCO dataset.
"""

from __future__ import annotations

from ...errors import ConfigurationError
from ...rng import SeedLike, derive_seed, ensure_seed
from ..conv import Conv2d, MaxPool2d
from ..layers import Dropout, Flatten, Linear, ReLU, Sequential

#: Paper's dropout range for the OD workload.
YOLO_DROPOUT_RANGE = (0.1, 0.5)


def build_yolo(
    sample_shape: tuple,
    num_classes: int,
    dropout: float = 0.1,
    trunk_channels: int = 12,
    seed: SeedLike = None,
) -> Sequential:
    """Construct the YOLO-lite detector.

    Output is ``(N, 4 + num_classes)``: a normalised (cx, cy, w, h) box
    followed by class logits, consumed by
    :class:`~repro.nn.losses.DetectionLoss`.
    """
    if not 0.0 <= dropout < 1.0:
        raise ConfigurationError(f"dropout must be in [0, 1), got {dropout}")
    channels, height, width = sample_shape
    base_seed = ensure_seed(seed)
    pooled = (height - 2) // 2  # after 3x3 conv (valid) and 2x2 pool
    if pooled < 1:
        raise ConfigurationError(
            f"input {height}x{width} too small for the YOLO-lite trunk"
        )
    flat = trunk_channels * pooled * ((width - 2) // 2)
    return Sequential(
        Conv2d(channels, trunk_channels, kernel_size=3,
               rng=derive_seed(base_seed, "conv")),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Dropout(dropout, rng=derive_seed(base_seed, "dropout")),
        Linear(flat, 48, rng=derive_seed(base_seed, "fc1")),
        ReLU(),
        Linear(48, 4 + num_classes, rng=derive_seed(base_seed, "head")),
    )
