"""Module protocol for the from-scratch numpy NN engine.

The engine uses explicit forward/backward passes (no autodiff tape).  Each
:class:`Module` caches whatever it needs during ``forward`` and consumes it in
``backward``.  This keeps the implementation small, easy to verify with
numeric gradient checks, and fast enough to *really train* the reproduction
workloads on synthetic data — the tuning system then observes genuine
accuracy-versus-budget behaviour instead of a canned curve.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ShapeError

Shape = Tuple[int, ...]


class ParamTensor:
    """A trainable array together with its accumulated gradient."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray):
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def size(self) -> int:
        return int(self.value.size)

    def __repr__(self) -> str:
        return f"ParamTensor({self.name!r}, shape={self.value.shape})"


class Module:
    """Base class for layers and models."""

    #: Set by :meth:`train` / :meth:`eval`; Dropout and BatchNorm branch on it.
    training: bool = True

    # -- computation --------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and return the input gradient."""
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # -- parameters -----------------------------------------------------------
    def parameters(self) -> List[ParamTensor]:
        """All trainable tensors of this module (default: none)."""
        return []

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- mode ------------------------------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for child in self.children():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for child in self.children():
            child.eval()
        return self

    def children(self) -> Sequence["Module"]:
        return ()

    # -- cost model --------------------------------------------------------------
    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        """Per-sample forward FLOPs and the resulting output shape.

        ``input_shape`` excludes the batch dimension.  The hardware emulator
        multiplies these counts by batch size and device throughput to derive
        simulated runtime and energy.
        """
        raise NotImplementedError


def check_ndim(name: str, array: np.ndarray, ndim: int) -> None:
    """Raise :class:`ShapeError` unless ``array`` has ``ndim`` dimensions."""
    if array.ndim != ndim:
        raise ShapeError(
            f"{name} expected a {ndim}-D array, got shape {array.shape}"
        )


def as_batch(inputs: np.ndarray) -> np.ndarray:
    """Coerce to float64 ndarray, promoting a single sample to a batch."""
    array = np.asarray(inputs, dtype=np.float64)
    if array.ndim == 1:
        array = array[None, :]
    return array
