"""Optimizers and learning-rate schedules.

The paper's trials follow the standard stochastic gradient descent recipe
(mini-batch SGD with momentum and weight decay, §2.1), so that is the core
implementation; Adam is included because the tuner exposes the optimizer as a
tunable training hyperparameter in the extended examples.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from .module import ParamTensor


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, parameters: Sequence[ParamTensor], lr: float):
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = float(lr)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()


class SGD(Optimizer):
    """Mini-batch SGD with classical momentum and decoupled weight decay."""

    def __init__(
        self,
        parameters: Sequence[ParamTensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(
                f"momentum must be in [0, 1), got {momentum}"
            )
        if weight_decay < 0.0:
            raise ConfigurationError("weight decay must be non-negative")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: List[np.ndarray] = [
            np.zeros_like(p.value) for p in self.parameters
        ]
        # Per-parameter scratch for the effective-gradient temporary, so a
        # step allocates nothing.  The update below is bit-identical to the
        # textbook ``v = m*v - lr*(g + wd*w)`` form: IEEE-754 addition and
        # multiplication are commutative, so regrouping into in-place ops
        # does not change a single bit.
        self._scratch: List[np.ndarray] = [
            np.zeros_like(p.value) for p in self.parameters
        ]

    def state_dict(self) -> Dict[str, List[np.ndarray]]:
        """Copy of the mutable optimizer state (momentum buffers).

        Together with the model weights this is everything a warm-resumed
        trial needs to continue the SGD trajectory bit-for-bit.
        """
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: Dict[str, List[np.ndarray]]) -> None:
        """Restore momentum buffers captured by :meth:`state_dict`."""
        velocity = state["velocity"]
        if len(velocity) != len(self._velocity):
            raise ConfigurationError(
                f"optimizer state has {len(velocity)} velocity buffers, "
                f"expected {len(self._velocity)}"
            )
        for slot, value in zip(self._velocity, velocity):
            value = np.asarray(value, dtype=np.float64)
            if value.shape != slot.shape:
                raise ConfigurationError(
                    f"velocity shape {value.shape} does not match "
                    f"parameter shape {slot.shape}"
                )
            slot[...] = value

    def step(self) -> None:
        for parameter, velocity, scratch in zip(
            self.parameters, self._velocity, self._scratch
        ):
            if self.weight_decay:
                np.multiply(parameter.value, self.weight_decay, out=scratch)
                scratch += parameter.grad
            else:
                scratch[...] = parameter.grad
            scratch *= self.lr
            velocity *= self.momentum
            velocity -= scratch
            parameter.value += velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[ParamTensor],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ConfigurationError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._step_count = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        correction1 = 1.0 - self.beta1**self._step_count
        correction2 = 1.0 - self.beta2**self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            parameter.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LRSchedule:
    """Learning-rate schedule interface: rate as a function of epoch."""

    def rate(self, epoch: int, base_lr: float) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    def rate(self, epoch: int, base_lr: float) -> float:
        return base_lr


class StepDecayLR(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, step_size: int = 10, gamma: float = 0.5):
        if step_size <= 0:
            raise ConfigurationError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ConfigurationError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def rate(self, epoch: int, base_lr: float) -> float:
        return base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LRSchedule):
    """Cosine annealing from ``base_lr`` to ``min_lr`` over ``total_epochs``."""

    def __init__(self, total_epochs: int, min_lr: float = 0.0):
        if total_epochs <= 0:
            raise ConfigurationError("total_epochs must be positive")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def rate(self, epoch: int, base_lr: float) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (base_lr - self.min_lr) * (
            1 + math.cos(math.pi * progress)
        )


OPTIMIZERS: Dict[str, type] = {"sgd": SGD, "adam": Adam}


def build_optimizer(
    name: str, parameters: Sequence[ParamTensor], **kwargs
) -> Optimizer:
    """Construct an optimizer by registry name (``sgd`` or ``adam``)."""
    try:
        cls = OPTIMIZERS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown optimizer {name!r}; expected one of {sorted(OPTIMIZERS)}"
        ) from None
    return cls(parameters, **kwargs)
