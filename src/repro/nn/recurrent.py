"""Recurrent layer for the NLP workload.

A plain Elman RNN with tanh activation, unrolled with backpropagation
through time.  The reproduction's TextRNN model tunes a *stride* parameter
(paper §5.1): the input sequence is subsampled with that stride before being
fed to the recurrence, trading sequence resolution for compute.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..rng import SeedLike, make_rng
from .initializers import orthogonal, xavier_uniform, zeros
from .module import Module, ParamTensor, Shape, check_ndim


class ElmanRNN(Module):
    """Single-layer tanh RNN returning the final hidden state.

    Input: (N, T, F); output: (N, H).
    """

    def __init__(self, input_size: int, hidden_size: int, rng: SeedLike = None):
        if input_size <= 0 or hidden_size <= 0:
            raise ShapeError("RNN sizes must be positive")
        generator = make_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_in = ParamTensor(
            "w_in",
            xavier_uniform(
                generator, (input_size, hidden_size), input_size, hidden_size
            ),
        )
        self.w_rec = ParamTensor("w_rec", orthogonal(generator, hidden_size))
        self.bias = ParamTensor("bias", zeros((hidden_size,)))
        self._cache: Optional[tuple] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("ElmanRNN", inputs, 3)
        if inputs.shape[2] != self.input_size:
            raise ShapeError(
                f"ElmanRNN expected input size {self.input_size}, "
                f"got {inputs.shape[2]}"
            )
        batch, steps, _ = inputs.shape
        hidden = np.zeros((batch, self.hidden_size))
        states: List[np.ndarray] = [hidden]
        for t in range(steps):
            pre = (
                inputs[:, t, :] @ self.w_in.value
                + hidden @ self.w_rec.value
                + self.bias.value
            )
            hidden = np.tanh(pre)
            states.append(hidden)
        self._cache = (inputs, states)
        return hidden

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("ElmanRNN.backward called before forward")
        inputs, states = self._cache
        batch, steps, _ = inputs.shape
        grad_inputs = np.zeros_like(inputs)
        grad_hidden = grad_output
        for t in range(steps - 1, -1, -1):
            hidden = states[t + 1]
            previous = states[t]
            grad_pre = grad_hidden * (1.0 - hidden**2)
            self.w_in.grad += inputs[:, t, :].T @ grad_pre
            self.w_rec.grad += previous.T @ grad_pre
            self.bias.grad += grad_pre.sum(axis=0)
            grad_inputs[:, t, :] = grad_pre @ self.w_in.value.T
            grad_hidden = grad_pre @ self.w_rec.value.T
        return grad_inputs

    def parameters(self) -> List[ParamTensor]:
        return [self.w_in, self.w_rec, self.bias]

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        steps, features = input_shape
        per_step = (
            2 * features * self.hidden_size
            + 2 * self.hidden_size * self.hidden_size
            + 5 * self.hidden_size  # bias add + tanh
        )
        return per_step * steps, (self.hidden_size,)


class SequenceStride(Module):
    """Subsample the time axis with a fixed stride: (N, T, F) -> (N, ceil(T/s), F).

    This is the tunable *stride* model-hyperparameter of the NLP workload: a
    larger stride shortens the unrolled recurrence (cheaper) at the cost of
    dropping tokens (potentially less accurate).
    """

    def __init__(self, stride: int):
        if stride <= 0:
            raise ShapeError("stride must be positive")
        self.stride = int(stride)
        self._input_shape: Optional[Tuple[int, int, int]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        check_ndim("SequenceStride", inputs, 3)
        self._input_shape = inputs.shape
        return inputs[:, :: self.stride, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ShapeError("SequenceStride.backward called before forward")
        grad = np.zeros(self._input_shape, dtype=np.float64)
        grad[:, :: self.stride, :] = grad_output
        return grad

    def flops(self, input_shape: Shape) -> Tuple[int, Shape]:
        steps, features = input_shape
        kept = (steps + self.stride - 1) // self.stride
        return 0, (kept, features)
