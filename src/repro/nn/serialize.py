"""Model weight serialization.

EdgeTune's output includes the trained winning model (§3.1); this module
lets users persist and restore its weights with numpy's ``npz`` format.
Architecture is not serialized — rebuild the module graph first (model
builders are deterministic given their hyperparameters and seed), then
load the weights into it.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import ShapeError
from .module import Module


def state_dict(model: Module) -> Dict[str, np.ndarray]:
    """Flat mapping ``index.name -> value`` of all trainable tensors.

    Parameters are keyed by their position in ``model.parameters()`` plus
    their local name, which is stable for deterministically built models.
    """
    return {
        f"{index}.{parameter.name}": parameter.value.copy()
        for index, parameter in enumerate(model.parameters())
    }


def load_state_dict(model: Module, state: Dict[str, np.ndarray]) -> Module:
    """Load weights produced by :func:`state_dict` into ``model``.

    The model must have the same architecture (same parameter count,
    names and shapes); mismatches raise :class:`ShapeError`.
    """
    parameters = model.parameters()
    if len(state) != len(parameters):
        raise ShapeError(
            f"state has {len(state)} tensors, model has {len(parameters)}"
        )
    for index, parameter in enumerate(parameters):
        key = f"{index}.{parameter.name}"
        if key not in state:
            raise ShapeError(f"missing tensor {key!r} in state")
        value = np.asarray(state[key], dtype=np.float64)
        if value.shape != parameter.value.shape:
            raise ShapeError(
                f"tensor {key!r}: shape {value.shape} does not match "
                f"model shape {parameter.value.shape}"
            )
        parameter.value[...] = value
    return model


def save_model(model: Module, path: str) -> None:
    """Persist a model's weights to an ``.npz`` file."""
    np.savez(path, **state_dict(model))


def load_model(model: Module, path: str) -> Module:
    """Restore weights saved by :func:`save_model` into ``model``."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    return load_state_dict(model, state)
