"""Training loop with budgeted fidelity.

:func:`train_model` performs *real* mini-batch SGD on a
:class:`~repro.datasets.base.Dataset` and returns both learning outcomes
(accuracy, loss trajectory) and a compute tally (FLOPs, samples processed).
The compute tally — not wall-clock time — is what the hardware emulator
converts into simulated runtime and energy, so results are deterministic and
machine-independent.

Budgets enter through ``epochs`` and ``data_fraction``: the epoch-based,
dataset-based, and multi-budget strategies of the paper (§4.3) all reduce to
choosing these two numbers per trial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..datasets.base import Dataset
from ..errors import BudgetError
from ..faults import corrupt_nan
from ..rng import SeedLike, ensure_seed, spawn_rng
from .losses import Loss
from .module import Module
from .optimizers import ConstantLR, LRSchedule, SGD


@dataclass
class TrainingResult:
    """Outcome of one budgeted training run (one tuning trial's training)."""

    accuracy: float
    losses: List[float]
    #: Epochs actually *completed* — fewer than requested when training
    #: diverges mid-epoch.  FLOP/runtime accounting and the hardware
    #: emulator consume this, so it must reflect work done, not work asked.
    epochs_run: int
    data_fraction: float
    samples_seen: int
    batch_size: int
    #: Per-sample forward FLOPs of the trained architecture.
    forward_flops_per_sample: int
    #: Total forward FLOPs spent on training (forward passes only).
    train_forward_flops: int
    #: Total FLOPs including the backward pass (≈ 2x forward, the standard
    #: estimate for backprop through dense/conv layers).
    train_total_flops: int
    #: Number of trainable parameters (drives the memory model).
    parameter_count: int
    #: Training aborted early on a non-finite loss (NaN/Inf divergence);
    #: ``accuracy`` is the worst case 0.0 so the scheduler prunes the
    #: configuration instead of the run crashing.
    diverged: bool = False
    #: Final (weights, optimizer) state for warm-resuming a bigger-budget
    #: trial from this one — ``{"weights": ..., "velocity": ...}`` —
    #: captured only when requested (``capture_state=True``).
    resume_state: Optional[Dict[str, Any]] = None

    @property
    def final_loss(self) -> Optional[float]:
        """Mean loss of the last completed epoch; ``None`` when no epoch
        finished (zero-step runs) — explicit, rather than a silent NaN
        that poisons downstream objective math."""
        return self.losses[-1] if self.losses else None


#: Backward pass costs roughly twice the forward pass (one gradient w.r.t.
#: activations + one w.r.t. weights); total training step ≈ 3x forward.
BACKWARD_FLOPS_FACTOR = 2.0


def evaluate_accuracy(
    model: Module, dataset: Dataset, batch_size: int = 256,
    box_tolerance: float = 0.25,
) -> float:
    """Task-aware accuracy.

    Classification: top-1 accuracy.  Detection: a prediction counts as
    correct when the class is right *and* the box centre is within
    ``box_tolerance`` (normalised units) of the truth — a simplified IoU
    criterion suited to the single-object synthetic COCO.
    """
    model.eval()
    correct = 0
    try:
        for features, targets in dataset.batches(
            batch_size, shuffle=False
        ):
            outputs = model.forward(features)
            if dataset.task == "classification":
                predictions = outputs.argmax(axis=1)
                correct += int((predictions == targets).sum())
            else:
                classes_pred = outputs[:, 4:].argmax(axis=1)
                classes_true = targets[:, 4].astype(int)
                centre_error = np.sqrt(
                    ((outputs[:, :2] - targets[:, :2]) ** 2).sum(axis=1)
                )
                correct += int(
                    ((classes_pred == classes_true)
                     & (centre_error <= box_tolerance)).sum()
                )
    finally:
        model.train()
    return correct / len(dataset)


def train_model(
    model: Module,
    loss: Loss,
    train_set: Dataset,
    eval_set: Dataset,
    epochs: int,
    batch_size: int,
    lr: float = 0.05,
    momentum: float = 0.9,
    weight_decay: float = 1e-4,
    schedule: Optional[LRSchedule] = None,
    data_fraction: float = 1.0,
    seed: SeedLike = None,
    start_epoch: int = 0,
    init_state: Optional[Dict[str, Any]] = None,
    nested_subset: bool = False,
    capture_state: bool = False,
) -> TrainingResult:
    """Train ``model`` under an (epochs x data_fraction) budget.

    Returns a :class:`TrainingResult` whose accuracy is measured on
    ``eval_set`` (the held-out split, per paper §2.1).

    Warm-resume (the artifact cache's cross-rung tier) enters through
    four opt-in knobs, all default-off so the classic path is untouched
    bit-for-bit: ``init_state`` restores a parent trial's weights and
    momentum buffers, ``start_epoch`` skips the epochs the parent already
    ran (the compute tally counts only the incremental epochs, which is
    what the emulator charges), ``nested_subset`` draws the budget subset
    from the dataset's canonical permutation so the resumed trial sees a
    superset of its parent's data, and ``capture_state`` returns the
    final state so this trial can itself be resumed from.
    ``start_epoch == epochs`` is legal and runs zero epochs — the
    degenerate promotion where the grown budget adds no new epochs.
    """
    if epochs <= 0:
        raise BudgetError(f"epochs must be positive, got {epochs}")
    if not 0 <= start_epoch <= epochs:
        raise BudgetError(
            f"start_epoch must be in [0, {epochs}], got {start_epoch}"
        )
    base_seed = ensure_seed(seed)
    schedule = schedule or ConstantLR()
    if nested_subset:
        subset = train_set.subset(data_fraction)
    else:
        subset = train_set.subset(
            data_fraction, rng=spawn_rng(base_seed, "subset")
        )
    optimizer = SGD(
        model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay
    )
    if init_state is not None:
        from .serialize import load_state_dict

        load_state_dict(model, init_state["weights"])
        optimizer.load_state_dict({"velocity": init_state["velocity"]})
    forward_flops, _ = model.flops(train_set.sample_shape)
    model.train()
    losses: List[float] = []
    samples_seen = 0
    epochs_completed = 0
    diverged = False
    first_batch = True
    for epoch in range(start_epoch, epochs):
        optimizer.lr = schedule.rate(epoch, lr)
        epoch_loss = 0.0
        batches = 0
        for features, targets in subset.batches(
            batch_size, rng=spawn_rng(base_seed, "epoch", epoch)
        ):
            optimizer.zero_grad()
            outputs = model.forward(features)
            batch_loss = loss.forward(outputs, targets)
            if first_batch:
                # Fault site trainer.nan: corrupts exactly one loss per
                # trial (keyed by the trial's training seed) so the
                # numeric guard below is what contains it.
                batch_loss = corrupt_nan(
                    "trainer.nan", batch_loss, key=base_seed
                )
                first_batch = False
            if not np.isfinite(batch_loss):
                # NaN/Inf loss means the weights (or their gradients,
                # which surface as a NaN loss one step later) are
                # already corrupt: abort the trial early instead of
                # burning the rest of the budget or crashing the run.
                diverged = True
                break
            model.backward(loss.backward())
            optimizer.step()
            epoch_loss += batch_loss
            batches += 1
            samples_seen += len(features)
        if diverged:
            # The epoch was cut short, so it does not count as run and its
            # partial mean loss would be misleading — drop both.
            break
        epochs_completed += 1
        if batches == 0:
            # Empty subset (tiny data_fraction x small dataset): no steps
            # were taken, so there is no epoch loss to record.  Appending
            # 0.0 here would make ``final_loss`` report a perfect loss for
            # a model that never trained.
            continue
        losses.append(epoch_loss / batches)
    accuracy = 0.0 if diverged else evaluate_accuracy(model, eval_set)
    if not np.isfinite(accuracy):
        accuracy, diverged = 0.0, True
    resume_state: Optional[Dict[str, Any]] = None
    if capture_state:
        from .serialize import state_dict

        resume_state = {
            "weights": state_dict(model),
            "velocity": optimizer.state_dict()["velocity"],
        }
    train_forward = forward_flops * samples_seen
    return TrainingResult(
        accuracy=accuracy,
        losses=losses,
        epochs_run=epochs_completed,
        data_fraction=min(data_fraction, 1.0),
        samples_seen=samples_seen,
        batch_size=batch_size,
        forward_flops_per_sample=int(forward_flops),
        train_forward_flops=int(train_forward),
        train_total_flops=int(train_forward * (1.0 + BACKWARD_FLOPS_FACTOR)),
        parameter_count=model.parameter_count(),
        diverged=diverged,
        resume_state=resume_state,
    )
