"""Tuning and inference objective functions (paper §4.4)."""

from .base import (
    ACCURACY_FLOOR,
    INFERENCE_METRICS,
    TRAINING_METRICS,
    AccuracyObjective,
    InferenceObjective,
    PowerAwareObjective,
    RatioObjective,
    TuningObjective,
)

__all__ = [
    "TuningObjective",
    "RatioObjective",
    "AccuracyObjective",
    "PowerAwareObjective",
    "InferenceObjective",
    "ACCURACY_FLOOR",
    "TRAINING_METRICS",
    "INFERENCE_METRICS",
]
