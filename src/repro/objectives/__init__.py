"""Tuning and inference objective functions (paper §4.4).

Steady-state objectives live in :mod:`.base`; the SLO-aware objectives
scored under replayed :mod:`repro.traffic` load live in :mod:`.slo`.
"""

from .base import (
    ACCURACY_FLOOR,
    INFERENCE_METRICS,
    TRAINING_METRICS,
    WORST_SCORE,
    AccuracyObjective,
    InferenceObjective,
    PowerAwareObjective,
    RatioObjective,
    TuningObjective,
)
from .slo import TRAFFIC_METRICS, TrafficSLOObjective

__all__ = [
    "TuningObjective",
    "RatioObjective",
    "AccuracyObjective",
    "PowerAwareObjective",
    "InferenceObjective",
    "TrafficSLOObjective",
    "ACCURACY_FLOOR",
    "WORST_SCORE",
    "TRAINING_METRICS",
    "INFERENCE_METRICS",
    "TRAFFIC_METRICS",
]
