"""Tuning and inference objective functions (paper §4.4)."""

from .base import (
    ACCURACY_FLOOR,
    INFERENCE_METRICS,
    TRAINING_METRICS,
    WORST_SCORE,
    AccuracyObjective,
    InferenceObjective,
    PowerAwareObjective,
    RatioObjective,
    TuningObjective,
)

__all__ = [
    "TuningObjective",
    "RatioObjective",
    "AccuracyObjective",
    "PowerAwareObjective",
    "InferenceObjective",
    "ACCURACY_FLOOR",
    "WORST_SCORE",
    "TRAINING_METRICS",
    "INFERENCE_METRICS",
]
