"""Objective functions (paper §4.4).

The Model Tuning Server minimises a ratio of cost to accuracy:

* runtime objective:  (training_time x inference_time) / accuracy
* energy objective:   (training_energy x inference_energy) / accuracy

The Inference Tuning Server minimises inference cost alone (runtime or
energy), or maximises throughput.  Both are pluggable; scores are always
*minimised*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..telemetry import InferenceMeasurement, TrainingMeasurement

#: Accuracy floor guarding the ratio objectives against division by ~zero
#: for untrained/diverged models.
ACCURACY_FLOOR = 0.01

#: Score assigned to trials whose objective inputs are non-finite (NaN
#: loss, diverged training) or that failed outright: large enough to rank
#: strictly worse than any real trial — including infeasible-penalised
#: ones — yet finite, so scheduler model fitting never sees inf/NaN.
WORST_SCORE = 1e30


def _finite(value: Optional[float]) -> bool:
    return value is not None and math.isfinite(value)

TRAINING_METRICS = ("runtime", "energy")
INFERENCE_METRICS = ("runtime", "energy", "throughput")


class TuningObjective:
    """Scores one model-server trial (lower is better)."""

    name: str = "base"

    def score(
        self,
        accuracy: float,
        training: TrainingMeasurement,
        inference: Optional[InferenceMeasurement],
    ) -> float:
        raise NotImplementedError

    @staticmethod
    def _safe_accuracy(accuracy: float) -> float:
        if not _finite(accuracy):
            # Diverged training reports NaN/Inf accuracy; rank it at the
            # floor rather than crashing the scoring path.
            return ACCURACY_FLOOR
        if not 0.0 <= accuracy <= 1.0:
            raise ConfigurationError(
                f"accuracy must be in [0, 1], got {accuracy}"
            )
        return max(accuracy, ACCURACY_FLOOR)


class RatioObjective(TuningObjective):
    """The paper's ratio objectives (1) and (2) of §4.4.

    ``metric='runtime'``: (training_time * inference_time) / accuracy.
    ``metric='energy'``:  (training_energy * inference_energy) / accuracy.

    When no inference measurement is available (non-inference-aware
    baselines) the inference factor degenerates to 1, leaving a pure
    training-cost/accuracy objective.

    ``accuracy_target`` turns the ratio into the constrained form the
    tuning service exposes to users ("achieve the target model accuracy",
    §1): trials below the target rank strictly worse than any trial
    meeting it; among the infeasible ones the score still balances how far
    accuracy falls short against how expensive the trial was, so that
    low-fidelity rungs (where nothing meets the target yet) keep promoting
    configurations that are both promising *and* cheap.
    """

    #: Multiplier separating infeasible from feasible scores.  Larger than
    #: any realistic cost spread between configurations.
    _INFEASIBLE_PENALTY = 1e6

    #: Exponent weighting accuracy shortfall against cost for infeasible
    #: trials: a 10 % accuracy shortfall outweighs roughly a 4x cost gap.
    _SHORTFALL_EXPONENT = 16.0

    def __init__(self, metric: str = "runtime",
                 accuracy_target: Optional[float] = None):
        if metric not in TRAINING_METRICS:
            raise ConfigurationError(
                f"metric must be one of {TRAINING_METRICS}, got {metric!r}"
            )
        if accuracy_target is not None and not 0.0 < accuracy_target <= 1.0:
            raise ConfigurationError(
                f"accuracy_target must be in (0, 1], got {accuracy_target}"
            )
        self.metric = metric
        self.accuracy_target = accuracy_target
        self.name = f"ratio-{metric}"

    def score(
        self,
        accuracy: float,
        training: TrainingMeasurement,
        inference: Optional[InferenceMeasurement],
    ) -> float:
        accuracy = self._safe_accuracy(accuracy)
        if self.metric == "runtime":
            train_cost = training.runtime_s
            inference_cost = (
                inference.latency_per_sample_s if inference else 1.0
            )
        else:
            train_cost = training.energy_j
            inference_cost = (
                inference.energy_per_sample_j if inference else 1.0
            )
        if not (_finite(train_cost) and _finite(inference_cost)):
            return WORST_SCORE
        ratio = train_cost * inference_cost / accuracy
        if not _finite(ratio):
            return WORST_SCORE
        if (
            self.accuracy_target is not None
            and accuracy < self.accuracy_target
        ):
            shortfall = self.accuracy_target - accuracy
            return (
                self._INFEASIBLE_PENALTY
                * ratio
                * (1.0 + shortfall) ** self._SHORTFALL_EXPONENT
            )
        return ratio


class AccuracyObjective(TuningObjective):
    """Pure model-accuracy objective (the Tune baseline's view): ignores
    system cost and inference entirely."""

    name = "accuracy"

    def score(
        self,
        accuracy: float,
        training: TrainingMeasurement,
        inference: Optional[InferenceMeasurement],
    ) -> float:
        return 1.0 - self._safe_accuracy(accuracy)


class PowerAwareObjective(TuningObjective):
    """HyperPower-style objective: training energy divided by accuracy,
    inference-unaware (Stamoulis et al. 2017)."""

    name = "power-aware"

    def score(
        self,
        accuracy: float,
        training: TrainingMeasurement,
        inference: Optional[InferenceMeasurement],
    ) -> float:
        accuracy = self._safe_accuracy(accuracy)
        if not _finite(training.energy_j):
            return WORST_SCORE
        return training.energy_j / accuracy


class InferenceObjective:
    """Scores one inference-server trial (lower is better)."""

    def __init__(self, metric: str = "energy"):
        if metric not in INFERENCE_METRICS:
            raise ConfigurationError(
                f"metric must be one of {INFERENCE_METRICS}, got {metric!r}"
            )
        self.metric = metric
        self.name = f"inference-{metric}"

    def score(self, inference: InferenceMeasurement) -> float:
        if self.metric == "runtime":
            return inference.latency_per_sample_s
        if self.metric == "energy":
            return inference.energy_per_sample_j
        return -inference.throughput_sps
