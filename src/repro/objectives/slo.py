"""SLO-aware inference objectives scored under replayed serving load.

The steady-state :class:`~repro.objectives.base.InferenceObjective`
prices one batched inference call in isolation.  These objectives price a
*deployment*: the inference tuning server replays a
:mod:`repro.traffic` trace through each candidate configuration and the
objective scores the resulting :class:`~repro.traffic.replay.ReplayStats`
— tail latency, deadline misses and per-request energy as experienced
under load, queueing included.

Three metrics:

``p99``       minimise the 99th-percentile response latency;
``deadline``  minimise the deadline-miss rate (shed requests count as
              misses), tie-broken by p99;
``energy``    minimise energy per served request, idle draw included.

Every metric penalises divergent configurations (the replay engine shed
requests) far beyond any realistic score, so an overloaded deployment can
never beat one that keeps up — the property steady-state objectives lack
and the reason load-tuned configurations differ (see the
``traffic_slo`` experiment).

The objective ``name`` embeds the canonical scenario and SLO strings, so
the historical look-up in the trial database (§3.4) never serves a
steady-state result for a load query or mixes distinct traces.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import ConfigurationError
from ..traffic.replay import ReplayStats, SLOSpec
from .base import WORST_SCORE, InferenceObjective

TRAFFIC_METRICS = ("p99", "deadline", "energy")

#: Additive penalty applied once a replay diverges: larger than any
#: realistic latency/energy score, smaller than :data:`WORST_SCORE` so
#: divergent candidates still rank among themselves (fewer shed = better).
DIVERGENCE_PENALTY = 1e6

#: Weight of the miss rate against the p99 tie-breaker in the
#: ``deadline`` metric: one part per thousand of misses outweighs any
#: sub-kilosecond p99 difference.
MISS_RATE_WEIGHT = 1e3


class TrafficSLOObjective(InferenceObjective):
    """Scores inference configurations by replayed serving load."""

    #: Signals the tuning server to replay traffic per candidate and to
    #: derive per-request measurements (batch_size=1) for cache parity.
    under_load = True

    def __init__(
        self,
        metric: str = "p99",
        scenario: str = "",
        slo: Optional[SLOSpec] = None,
    ):
        if metric not in TRAFFIC_METRICS:
            raise ConfigurationError(
                f"metric must be one of {TRAFFIC_METRICS}, got {metric!r}"
            )
        self.metric = metric
        self.scenario = scenario
        self.slo = slo or SLOSpec()
        self.name = (
            f"traffic-{metric}[{scenario}|{self.slo.canonical()}]"
        )

    def score_stats(self, stats: ReplayStats) -> float:
        """Score one replay outcome (lower is better)."""
        shed_fraction = stats.shed / stats.requests if stats.requests else 1.0
        penalty = (
            DIVERGENCE_PENALTY * (1.0 + shed_fraction)
            if stats.diverged or stats.shed
            else 0.0
        )
        if self.metric == "p99":
            base = stats.p99_latency_s
        elif self.metric == "deadline":
            base = (
                MISS_RATE_WEIGHT * stats.deadline_miss_rate
                + stats.p99_latency_s
            )
        else:  # energy
            base = stats.energy_per_request_j
        if not math.isfinite(base):
            return WORST_SCORE
        return base + penalty

    def score(self, inference) -> float:
        """Score a load-derived measurement (cache-parity path).

        The tuning server stores the winning candidate's *derived*
        measurement — p99 as the per-request latency, energy per request
        — so scoring it again reproduces the replay-based ranking for the
        measurement the historical cache returns.
        """
        if self.metric == "energy":
            return inference.energy_per_sample_j
        return inference.latency_per_sample_s
