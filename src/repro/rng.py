"""Deterministic random-number utilities.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` that it receives explicitly (or builds from an
integer seed).  Nothing in the library touches the global numpy RNG state, so
two runs with the same seeds produce bit-identical results — a requirement for
the reproducible experiment harness.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Seed used whenever a caller does not provide one.  Chosen arbitrarily; the
#: value only matters in that it is fixed.
DEFAULT_SEED = 0xED6E


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned unchanged so
    state is shared deliberately), or ``None`` for the library default seed.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_seed(base: int, *names: Union[str, int]) -> int:
    """Derive a stable child seed from ``base`` and a path of names.

    Used to give independent-but-reproducible streams to subcomponents, e.g.
    ``derive_seed(seed, "dataset", "train")``.  The derivation hashes the
    inputs so that neighbouring seeds do not produce correlated streams.
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(base)).encode("ascii"))
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode("utf-8"))
    return int.from_bytes(digest.digest(), "big") % (2**63)


def spawn_rng(base: int, *names: Union[str, int]) -> np.random.Generator:
    """Shorthand for ``make_rng(derive_seed(base, *names))``."""
    return make_rng(derive_seed(base, *names))


def ensure_seed(seed: SeedLike, fallback: Optional[int] = None) -> int:
    """Coerce ``seed`` to a plain integer seed.

    Generators cannot be reduced to an integer; passing one raises
    ``TypeError`` so callers know to thread integers where persistence or
    child-seed derivation is required.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError("ensure_seed() needs an integer seed, not a Generator")
    if seed is None:
        return DEFAULT_SEED if fallback is None else int(fallback)
    return int(seed)
