"""Search algorithms: grid, random, TPE, SHA, ASHA, HyperBand, BOHB."""

from .asha import ASHAScheduler
from .base import (
    ScheduledTrial,
    Searcher,
    SearcherScheduler,
    TrialReport,
    TrialScheduler,
    coerce_warm_start_records,
)
from .bohb import BOHBScheduler
from .grid import GridSearcher
from .hyperband import HyperBandScheduler
from .median_stopping import MedianStoppingScheduler
from .random_search import RandomSearcher
from .registry import (
    SCHEDULER_NAMES,
    SEARCHER_NAMES,
    build_scheduler,
    build_searcher,
)
from .successive_halving import SuccessiveHalvingScheduler, rung_fidelities
from .tpe import ParzenEstimator, TPESampler

__all__ = [
    "Searcher",
    "TrialScheduler",
    "ScheduledTrial",
    "TrialReport",
    "SearcherScheduler",
    "GridSearcher",
    "RandomSearcher",
    "TPESampler",
    "ParzenEstimator",
    "SuccessiveHalvingScheduler",
    "ASHAScheduler",
    "rung_fidelities",
    "HyperBandScheduler",
    "MedianStoppingScheduler",
    "BOHBScheduler",
    "build_searcher",
    "build_scheduler",
    "SEARCHER_NAMES",
    "SCHEDULER_NAMES",
    "coerce_warm_start_records",
]
