"""Asynchronous successive halving (ASHA, Li et al. 2020).

Synchronous halving (:mod:`.successive_halving`) decides promotions only
when a rung is *full*, so one slow trial stalls every worker at the rung
barrier.  ASHA decides the moment a result lands: a trial is promoted to
the next rung when it sits in the top ``1/eta`` of the results *completed
so far* at its rung, and the freed worker immediately receives the next
runnable unit (a pending promotion, else a fresh bottom-rung trial).

The promotion rule is the standard "promotable" check, re-evaluated on
every landing result: at a rung with ``n`` completed results, the best
``floor(n / eta)`` of them (ties broken by trial id) may run at the next
fidelity.  A result that lands inside that frontier is promoted at once;
a result that lands outside it is *paused* — it may still be promoted
later, when enough worse results have landed to grow the frontier past
it.  Paused trials that never re-enter the frontier simply stay paused
(asha's aggressive-early-stopping semantics); top-rung results complete.

Determinism contract
--------------------

Given a fixed order of *completions* (which trial's report arrives at
which result index), every decision this scheduler makes — including the
trial ids it assigns to promotions — is a pure function of that order:

* fresh bottom-rung trials get ids ``first_trial_id + k`` for the k-th
  suggestion (the searcher's suggestion stream is seed-driven);
* promotions get ids ``first_trial_id + num_configs + j`` for the j-th
  promotion *decision*, and decisions happen only inside
  :meth:`report`;
* :attr:`decision_log` records ``(result_index, trial_id, rung,
  decision, child_id)`` per decision and is therefore bit-identical
  across runs — and across a :meth:`state_dict` save/restore — whenever
  the completion order is the same.

Out-of-order integration *changes* the frontier each decision sees, so
two different completion orders may promote different trials; the
replay-mode contract (pin the completion order) is what makes N-worker
runs comparable.  See DESIGN.md §8.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ..errors import SearchSpaceError, TuningError
from ..rng import SeedLike
from ..space import ParameterSpace
from .base import ScheduledTrial, Searcher, TrialReport, TrialScheduler
from .successive_halving import rung_fidelities

logger = logging.getLogger(__name__)

#: Decision kinds recorded in :attr:`ASHAScheduler.decision_log`.
PROMOTE = "promote"
PAUSE = "pause"
COMPLETE = "complete"


class ASHAScheduler(TrialScheduler):
    """One asynchronous halving bracket.

    ``num_configs`` configurations enter at ``min_fidelity``; every
    landing report re-evaluates its rung's promotion frontier (top
    ``floor(n/eta)`` of completed results) and promotes any frontier
    member not yet promoted.  There are no rung barriers: the driver
    should keep calling :meth:`next_trial` whenever a worker is free.
    """

    #: Drivers branch on this: no rung barriers, results may integrate
    #: out of issue order (see ``SessionCoordinator._drive_async``).
    asynchronous = True

    def __init__(
        self,
        space: ParameterSpace,
        searcher: Searcher,
        num_configs: Optional[int] = None,
        eta: int = 2,
        min_fidelity: int = 1,
        max_fidelity: int = 16,
        seed: SeedLike = None,
        bracket: int = 0,
        first_trial_id: int = 0,
    ):
        super().__init__(space, max_fidelity, seed)
        self.searcher = searcher
        self.eta = eta
        self.min_fidelity = min_fidelity
        self.bracket = bracket
        self.fidelities = rung_fidelities(min_fidelity, max_fidelity, eta)
        if num_configs is None:
            num_configs = eta ** (len(self.fidelities) - 1)
        if num_configs < 1:
            raise SearchSpaceError("num_configs must be >= 1")
        self.num_configs = num_configs
        self.first_trial_id = first_trial_id
        #: Fresh bottom-rung suggestions issued so far (id = first + k).
        self._fresh_issued = 0
        #: Promotion decisions made so far (child id = first + n + j).
        self._promotions_issued = 0
        #: Searcher returned ``None`` (finite space drained early).
        self._searcher_drained = False
        #: Promoted children waiting for a worker, in decision order.
        self._runnable: List[ScheduledTrial] = []
        #: Issued trials whose report has not landed yet.
        self._awaiting: Dict[int, ScheduledTrial] = {}
        #: rung -> completed results, as (score, trial_id, trial) tuples.
        self._rung_results: Dict[int, List[Tuple[float, int, ScheduledTrial]]] = {}
        #: rung -> trial ids already promoted out of that rung.
        self._promoted: Dict[int, Set[int]] = {}
        #: Monotone index of the next report to land.
        self._result_index = 0
        #: (result_index, trial_id, rung, decision, child_id) per decision.
        self.decision_log: List[Tuple[int, int, int, str, Optional[int]]] = []

    # -- TrialScheduler interface -------------------------------------------
    def next_trial(self) -> Optional[ScheduledTrial]:
        """A pending promotion first, else a fresh bottom-rung trial.

        Returns ``None`` when nothing is runnable *right now*; unlike
        the synchronous scheduler this is not a stall — more work
        usually appears once an outstanding report lands.
        """
        if self._runnable:
            trial = self._runnable.pop(0)
            self._awaiting[trial.trial_id] = trial
            return trial
        if self._fresh_issued < self.num_configs and not self._searcher_drained:
            configuration = self.searcher.suggest()
            if configuration is None:
                self._searcher_drained = True
                if self._fresh_issued == 0:
                    raise TuningError("searcher produced no configurations")
                return None
            trial = ScheduledTrial(
                trial_id=self.first_trial_id + self._fresh_issued,
                configuration=configuration,
                fidelity=self.fidelities[0],
                bracket=self.bracket,
                rung=0,
            )
            self._fresh_issued += 1
            self._awaiting[trial.trial_id] = trial
            return trial
        return None

    def report(self, report: TrialReport) -> None:
        trial = self._awaiting.pop(report.trial.trial_id, None)
        if trial is None:
            # A report the restored scheduler never issued (checkpoint
            # taken before the trial, or a duplicate delivery): skip it
            # rather than corrupting the rung bookkeeping.
            logger.warning(
                "ignoring report for unknown trial %d "
                "(issued before a checkpoint restore, or duplicate)",
                report.trial.trial_id,
            )
            return
        index = self._result_index
        self._result_index += 1
        self.searcher.observe(report.trial.configuration, report.score)
        rung = trial.rung
        if rung >= len(self.fidelities) - 1:
            self.decision_log.append(
                (index, trial.trial_id, rung, COMPLETE, None)
            )
            return
        results = self._rung_results.setdefault(rung, [])
        results.append((float(report.score), trial.trial_id, trial))
        promoted = self._promoted.setdefault(rung, set())
        # The promotion frontier: best floor(n/eta) completed results at
        # this rung, ties broken by trial id (pure function of the
        # completed set, never of arrival order within it).
        keep = len(results) // self.eta
        frontier = sorted(results, key=lambda r: (r[0], r[1]))[:keep]
        landing_promoted = any(
            tid == trial.trial_id for _, tid, _ in frontier
        )
        # The landing trial's own decision is logged first; trials the
        # grown frontier reaches back to promote follow in rank order.
        if landing_promoted:
            self._promote(index, trial, rung)
        else:
            self.decision_log.append(
                (index, trial.trial_id, rung, PAUSE, None)
            )
        for _, tid, parent in frontier:
            if tid not in promoted and tid != trial.trial_id:
                self._promote(index, parent, rung)

    def _promote(self, index: int, parent: ScheduledTrial, rung: int) -> None:
        """Issue ``parent``'s next-rung child and log the decision."""
        child_id = (
            self.first_trial_id + self.num_configs + self._promotions_issued
        )
        self._promotions_issued += 1
        self._runnable.append(
            ScheduledTrial(
                trial_id=child_id,
                configuration=parent.configuration,
                fidelity=self.fidelities[rung + 1],
                bracket=self.bracket,
                rung=rung + 1,
                parent_id=parent.trial_id,
                parent_fidelity=self.fidelities[rung],
            )
        )
        self._promoted.setdefault(rung, set()).add(parent.trial_id)
        self.decision_log.append(
            (index, parent.trial_id, rung, PROMOTE, child_id)
        )

    def warm_start(self, records: List[Mapping[str, Any]]) -> int:
        return self.searcher.warm_start(records)

    @property
    def finished(self) -> bool:
        fresh_done = (
            self._fresh_issued >= self.num_configs or self._searcher_drained
        )
        return fresh_done and not self._runnable and not self._awaiting

    @property
    def total_trials_issued(self) -> int:
        return self._fresh_issued + self._promotions_issued
