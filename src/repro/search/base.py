"""Search-algorithm interfaces.

Two layers, mirroring how Ray Tune (and the paper) organise tuning:

* a :class:`Searcher` proposes configurations and learns from observed
  scores (grid, random, TPE);
* a :class:`TrialScheduler` additionally decides *fidelities* — how much
  budget each proposed trial receives and which trials continue — the home
  of successive halving, HyperBand and BOHB.

Scores are **minimised** throughout (objective functions already encode
"maximise accuracy" as a ratio to be minimised, paper §4.4).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from ..errors import ConfigurationError, SearchSpaceError, TuningError
from ..rng import SeedLike, ensure_seed
from ..space import Configuration, ParameterSpace


def coerce_warm_start_records(
    space: ParameterSpace, records: List[Mapping[str, Any]]
) -> List[Dict[str, Any]]:
    """Validate raw warm-start records against ``space``.

    A record is a mapping with ``configuration`` (name → value dict),
    ``score`` and optionally ``fidelity``; the returned dicts carry the
    validated :class:`Configuration` instead of the raw dict.  Records
    whose configuration does not fit the space — stale columns from an
    older release, a different workload's parameters — are silently
    dropped: warm starting is best-effort by design, never a reason to
    fail a session.
    """
    coerced: List[Dict[str, Any]] = []
    for record in records:
        values = record.get("configuration")
        score = record.get("score")
        if not isinstance(values, Mapping) or score is None:
            continue
        try:
            configuration = space.configuration(**values)
            score = float(score)
        except (ConfigurationError, TypeError, ValueError):
            continue
        if score != score:  # NaN never helps a model
            continue
        coerced.append(
            {
                "configuration": configuration,
                "score": score,
                "fidelity": int(record.get("fidelity", 0) or 0),
            }
        )
    return coerced


class _Snapshottable:
    """Opaque state snapshot/restore, shared by searchers and schedulers.

    The service layer checkpoints a tuning session after every completed
    trial; the searcher/scheduler contribution to that checkpoint is this
    pair of hooks.  The default implementation captures the full mutable
    state (``__dict__``) — including RNG generators, pending rungs and
    observation histories — in one pickle blob, so a restored object
    continues the search bit-for-bit where the snapshot was taken.
    Subclasses with unpicklable state must override both hooks.
    """

    def state_dict(self) -> bytes:
        """Serialized snapshot of all mutable search state."""
        return pickle.dumps(self.__dict__, protocol=pickle.HIGHEST_PROTOCOL)

    def load_state_dict(self, blob: bytes) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        The snapshot must come from an instance constructed with the same
        arguments (space, seed, ...); only *mutable* state is carried.
        """
        self.__dict__.update(pickle.loads(blob))


class Searcher(_Snapshottable):
    """Proposes configurations over a fixed space."""

    #: Whether :meth:`suggest` depends on prior :meth:`observe` calls.
    #: Adaptive searchers (TPE) must see each report before the next
    #: suggestion, so drivers may not issue their trials ahead in waves.
    adaptive = False

    def __init__(self, space: ParameterSpace, seed: SeedLike = None):
        if len(space) == 0:
            raise SearchSpaceError("cannot search an empty space")
        self.space = space
        self.seed = ensure_seed(seed)

    def suggest(self) -> Optional[Configuration]:
        """Next configuration to try, or ``None`` when exhausted."""
        raise NotImplementedError

    def observe(self, configuration: Configuration, score: float) -> None:
        """Feed back an observed score (lower is better). Default: ignore."""

    def warm_start(self, records: List[Mapping[str, Any]]) -> int:
        """Seed the searcher from prior-session trial records.

        ``records`` are raw dicts (``configuration``/``score``/optional
        ``fidelity``) as stored in the trial database; implementations
        validate them against their space and fold the survivors into
        their model *before* the first :meth:`suggest`.  Returns how many
        records were actually absorbed.  The default absorbs nothing —
        memoryless searchers (grid) have no model to seed.
        """
        return 0

    def reset(self) -> None:
        """Restore the initial state (used by repeated experiments)."""
        raise NotImplementedError


@dataclass
class ScheduledTrial:
    """A unit of work issued by a scheduler: configuration + fidelity.

    ``fidelity`` is the iteration level ``it`` of the paper's Algorithm 2 —
    the budget strategies translate it into concrete epochs / dataset
    fractions.  ``rung``/``bracket`` locate the trial inside successive
    halving; plain searchers issue everything at ``max_fidelity``.

    ``parent_id``/``parent_fidelity`` record rung lineage: a trial
    promoted by successive halving names the lower-fidelity trial whose
    configuration it continues, which is what lets the artifact cache
    warm-resume the promotion from the parent's checkpoint instead of
    retraining from scratch.  ``None`` for first-rung trials and plain
    searchers.
    """

    trial_id: int
    configuration: Configuration
    fidelity: int
    bracket: int = 0
    rung: int = 0
    parent_id: Optional[int] = None
    parent_fidelity: Optional[int] = None


@dataclass
class TrialReport:
    """Observed outcome of a scheduled trial."""

    trial: ScheduledTrial
    score: float
    accuracy: float = float("nan")

    def __post_init__(self) -> None:
        if self.score != self.score:  # NaN guard
            raise TuningError(
                f"trial {self.trial.trial_id} reported a NaN score"
            )


class TrialScheduler(_Snapshottable):
    """Issues :class:`ScheduledTrial`s and consumes :class:`TrialReport`s."""

    #: Whether draining a whole wave of trials before reporting any of
    #: them yields the same issuance stream as strict issue-report
    #: alternation.  True for the halving/median schedulers (each rung's
    #: configurations are suggested up front, so report *timing* never
    #: reaches the searcher mid-rung); overridden by adapters around
    #: adaptive searchers.  Gates the batched in-process driver.
    wave_safe = True

    def __init__(
        self,
        space: ParameterSpace,
        max_fidelity: int,
        seed: SeedLike = None,
    ):
        if len(space) == 0:
            raise SearchSpaceError("cannot schedule over an empty space")
        if max_fidelity < 1:
            raise SearchSpaceError(
                f"max_fidelity must be >= 1, got {max_fidelity}"
            )
        self.space = space
        self.max_fidelity = int(max_fidelity)
        self.seed = ensure_seed(seed)

    def next_trial(self) -> Optional[ScheduledTrial]:
        """The next trial to run, or ``None`` when the schedule is done."""
        raise NotImplementedError

    def report(self, report: TrialReport) -> None:
        """Record the outcome of a trial previously issued."""
        raise NotImplementedError

    def warm_start(self, records: List[Mapping[str, Any]]) -> int:
        """Seed the scheduler's search model from prior trials (see
        :meth:`Searcher.warm_start`).  Default: absorb nothing."""
        return 0

    @property
    def finished(self) -> bool:
        raise NotImplementedError


class SearcherScheduler(TrialScheduler):
    """Adapter: run a plain :class:`Searcher` for ``num_trials`` trials,
    all at maximum fidelity (the "fixed budget" strawman of §2.2)."""

    def __init__(
        self,
        searcher: Searcher,
        num_trials: int,
        max_fidelity: int = 1,
        seed: SeedLike = None,
    ):
        super().__init__(searcher.space, max_fidelity, seed)
        if num_trials < 1:
            raise SearchSpaceError(f"num_trials must be >= 1, got {num_trials}")
        self.searcher = searcher
        self.num_trials = num_trials
        self._issued = 0
        self._reported = 0

    @property
    def wave_safe(self) -> bool:
        """Issue-ahead changes an adaptive searcher's suggestion stream
        (it would suggest blind instead of from accumulated reports)."""
        return not self.searcher.adaptive

    def next_trial(self) -> Optional[ScheduledTrial]:
        if self._issued >= self.num_trials:
            return None
        configuration = self.searcher.suggest()
        if configuration is None:
            return None
        trial = ScheduledTrial(
            trial_id=self._issued,
            configuration=configuration,
            fidelity=self.max_fidelity,
        )
        self._issued += 1
        return trial

    def report(self, report: TrialReport) -> None:
        self._reported += 1
        self.searcher.observe(report.trial.configuration, report.score)

    def warm_start(self, records: List[Mapping[str, Any]]) -> int:
        return self.searcher.warm_start(records)

    @property
    def finished(self) -> bool:
        next_possible = self._issued < self.num_trials
        return not next_possible and self._reported >= self._issued
