"""BOHB: Bayesian Optimisation + HyperBand (Falkner et al. 2018).

HyperBand's bracket structure decides *budgets*; a TPE model shared across
brackets decides *which configurations* to start, replacing HyperBand's
uniform sampling once enough observations exist.  This is the paper's
default search algorithm (§4.2) and the one its multi-budget strategy
plugs into.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..rng import SeedLike, derive_seed
from ..space import Configuration, ParameterSpace
from .base import Searcher, TrialReport, coerce_warm_start_records
from .hyperband import HyperBandScheduler
from .tpe import DEFAULT_STARTUP_TRIALS, TPESampler


class _BudgetAwareTPE(Searcher):
    """TPE that models the highest fidelity with enough observations.

    BOHB's key detail: scores from different budgets are not directly
    comparable, so the density model is fitted on the single largest
    fidelity that has accumulated ``startup_trials`` points; lower-fidelity
    data only guides sampling until then.
    """

    adaptive = True

    def __init__(
        self,
        space: ParameterSpace,
        seed: SeedLike = None,
        startup_trials: int = DEFAULT_STARTUP_TRIALS,
    ):
        super().__init__(space, seed)
        self.startup_trials = startup_trials
        self._samplers: Dict[int, TPESampler] = {}
        self._counts: Dict[int, int] = {}
        self._fallback = TPESampler(
            space, seed=derive_seed(self.seed, "fallback"),
            startup_trials=startup_trials,
        )
        self._current_fidelity: Optional[int] = None

    def _sampler_for(self, fidelity: int) -> TPESampler:
        if fidelity not in self._samplers:
            self._samplers[fidelity] = TPESampler(
                self.space,
                seed=derive_seed(self.seed, "tpe", fidelity),
                startup_trials=self.startup_trials,
            )
            self._counts[fidelity] = 0
        return self._samplers[fidelity]

    def observe_at(self, fidelity: int, configuration: Configuration,
                   score: float) -> None:
        self._sampler_for(fidelity).observe(configuration, score)
        self._counts[fidelity] += 1
        self._fallback.observe(configuration, score)

    # -- Searcher interface ---------------------------------------------------
    def observe(self, configuration: Configuration, score: float) -> None:
        # No-op: the bracket machinery reports through this generic hook,
        # but BOHB already records every report with its fidelity via
        # :meth:`observe_at`; recording here again would double-count.
        return None

    def suggest(self) -> Optional[Configuration]:
        modelled = [
            fidelity
            for fidelity, count in self._counts.items()
            if count >= self.startup_trials
        ]
        if modelled:
            return self._samplers[max(modelled)].suggest()
        return self._fallback.suggest()

    def warm_start(self, records: List[Mapping[str, Any]]) -> int:
        """Seed the per-budget models from prior-session trials.

        Records are registered under their original fidelity, preserving
        BOHB's rule that only same-budget scores are compared; records
        without a fidelity (from plain searchers) inform the fallback
        sampler only.
        """
        coerced = coerce_warm_start_records(self.space, records)
        for record in coerced:
            fidelity = record["fidelity"]
            if fidelity > 0:
                self.observe_at(
                    fidelity, record["configuration"], record["score"]
                )
            else:
                self._fallback.observe(
                    record["configuration"], record["score"]
                )
        return len(coerced)

    def reset(self) -> None:
        for sampler in self._samplers.values():
            sampler.reset()
        self._samplers.clear()
        self._counts.clear()
        self._fallback.reset()


class BOHBScheduler(HyperBandScheduler):
    """HyperBand brackets sampled by a shared budget-aware TPE."""

    def __init__(
        self,
        space: ParameterSpace,
        eta: int = 2,
        min_fidelity: int = 1,
        max_fidelity: int = 16,
        seed: SeedLike = None,
        startup_trials: int = DEFAULT_STARTUP_TRIALS,
    ):
        tpe = _BudgetAwareTPE(
            space, seed=derive_seed(seed if seed is not None else 0, "bohb"),
            startup_trials=startup_trials,
        )
        super().__init__(
            space,
            eta=eta,
            min_fidelity=min_fidelity,
            max_fidelity=max_fidelity,
            seed=seed,
            shared_searcher=tpe,
        )
        self.tpe = tpe

    def report(self, report: TrialReport) -> None:
        # Register the observation under its fidelity for the per-budget
        # model before the bracket's generic bookkeeping runs.
        self.tpe.observe_at(
            report.trial.fidelity, report.trial.configuration, report.score
        )
        super().report(report)

    def warm_start(self, records: List[Mapping[str, Any]]) -> int:
        return self.tpe.warm_start(records)
