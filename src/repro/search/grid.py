"""Exhaustive grid search (paper §4.2, Fig 10 left).

Enumerates the cartesian grid in a deterministic order.  For continuous or
wide integer parameters, each axis is discretised to ``resolution`` points.
"""

from __future__ import annotations

from typing import List, Optional

from ..rng import SeedLike
from ..space import Configuration, ParameterSpace
from .base import Searcher


class GridSearcher(Searcher):
    """Tries every grid point exactly once, in row-major order."""

    def __init__(
        self,
        space: ParameterSpace,
        resolution: int = 10,
        seed: SeedLike = None,
    ):
        super().__init__(space, seed)
        self.resolution = resolution
        self._grid: List[Configuration] = space.grid(resolution)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._grid)

    def suggest(self) -> Optional[Configuration]:
        if self._cursor >= len(self._grid):
            return None
        configuration = self._grid[self._cursor]
        self._cursor += 1
        return configuration

    def reset(self) -> None:
        self._cursor = 0
