"""HyperBand (Li et al. 2017).

Runs a sequence of successive-halving brackets that trade off the number
of configurations against the starting fidelity, hedging against workloads
where low-fidelity scores are (or are not) predictive.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from ..errors import SearchSpaceError
from ..rng import SeedLike, derive_seed
from ..space import ParameterSpace
from .base import ScheduledTrial, Searcher, TrialReport, TrialScheduler
from .random_search import RandomSearcher
from .successive_halving import SuccessiveHalvingScheduler

SearcherFactory = Callable[[ParameterSpace, int], Searcher]


def _default_searcher_factory(space: ParameterSpace, seed: int) -> Searcher:
    return RandomSearcher(space, seed=seed)


class HyperBandScheduler(TrialScheduler):
    """Sequential HyperBand over successive-halving brackets.

    ``searcher_factory`` builds the sampler used inside each bracket
    (random for vanilla HyperBand; BOHB passes a shared TPE).
    """

    def __init__(
        self,
        space: ParameterSpace,
        eta: int = 2,
        min_fidelity: int = 1,
        max_fidelity: int = 16,
        seed: SeedLike = None,
        searcher_factory: Optional[SearcherFactory] = None,
        shared_searcher: Optional[Searcher] = None,
    ):
        super().__init__(space, max_fidelity, seed)
        if eta < 2:
            raise SearchSpaceError(f"eta must be >= 2, got {eta}")
        self.eta = eta
        self.min_fidelity = min_fidelity
        self.searcher_factory = searcher_factory or _default_searcher_factory
        self.shared_searcher = shared_searcher
        self.s_max = int(
            math.floor(math.log(max_fidelity / min_fidelity, eta))
        )
        self._bracket_plan = self._plan_brackets()
        self._bracket_index = 0
        self._active: Optional[SuccessiveHalvingScheduler] = None
        self._trials_issued = 0

    def _plan_brackets(self) -> List[dict]:
        """Bracket parameters per Li et al., Alg. 1."""
        plan = []
        for s in range(self.s_max, -1, -1):
            num_configs = int(
                math.ceil((self.s_max + 1) / (s + 1) * self.eta**s)
            )
            start_fidelity = max(
                self.min_fidelity,
                int(self.max_fidelity * self.eta ** (-s)),
            )
            plan.append(
                {
                    "s": s,
                    "num_configs": num_configs,
                    "min_fidelity": start_fidelity,
                }
            )
        return plan

    def _open_next_bracket(self) -> Optional[SuccessiveHalvingScheduler]:
        while self._bracket_index < len(self._bracket_plan):
            spec = self._bracket_plan[self._bracket_index]
            self._bracket_index += 1
            searcher = self.shared_searcher or self.searcher_factory(
                self.space, derive_seed(self.seed, "bracket", spec["s"])
            )
            bracket = SuccessiveHalvingScheduler(
                space=self.space,
                searcher=searcher,
                num_configs=spec["num_configs"],
                eta=self.eta,
                min_fidelity=spec["min_fidelity"],
                max_fidelity=self.max_fidelity,
                seed=derive_seed(self.seed, "sha", spec["s"]),
                bracket=spec["s"],
                first_trial_id=self._trials_issued,
            )
            if not bracket.finished:
                return bracket
        return None

    # -- TrialScheduler interface ------------------------------------------
    def next_trial(self) -> Optional[ScheduledTrial]:
        while True:
            if self._active is None:
                self._active = self._open_next_bracket()
                if self._active is None:
                    return None
            trial = self._active.next_trial()
            if trial is not None:
                self._trials_issued = max(
                    self._trials_issued, trial.trial_id + 1
                )
                return trial
            if self._active.finished:
                self._active = None
                continue
            return None  # bracket waiting on outstanding reports

    def report(self, report: TrialReport) -> None:
        if self._active is None:
            raise SearchSpaceError("report received with no active bracket")
        self._active.report(report)

    @property
    def finished(self) -> bool:
        if self._active is not None and not self._active.finished:
            return False
        return self._bracket_index >= len(self._bracket_plan) and (
            self._active is None or self._active.finished
        )
