"""Median stopping rule (Golovin et al. 2017, Google Vizier).

A lighter-weight early-termination scheduler than successive halving,
included because the paper situates EdgeTune among tuning services
(Vizier, SageMaker) that use it: trials run rung by rung through the
fidelity ladder, and a trial is stopped as soon as its score is worse
than the median of all completed scores at the same fidelity.
"""

from __future__ import annotations

import logging
import statistics
from typing import Dict, List, Optional

from ..errors import SearchSpaceError, TuningError
from ..rng import SeedLike
from ..space import ParameterSpace
from .base import ScheduledTrial, Searcher, TrialReport, TrialScheduler
from .successive_halving import rung_fidelities

logger = logging.getLogger(__name__)


class MedianStoppingScheduler(TrialScheduler):
    """Run ``num_trials`` configurations up the fidelity ladder, pruning
    any trial that falls below the per-fidelity median."""

    def __init__(
        self,
        space: ParameterSpace,
        searcher: Searcher,
        num_trials: int = 16,
        eta: int = 2,
        min_fidelity: int = 1,
        max_fidelity: int = 16,
        seed: SeedLike = None,
        #: number of completed scores required before pruning activates
        grace_trials: int = 3,
    ):
        super().__init__(space, max_fidelity, seed)
        if num_trials < 1:
            raise SearchSpaceError("num_trials must be >= 1")
        if grace_trials < 1:
            raise SearchSpaceError("grace_trials must be >= 1")
        self.searcher = searcher
        self.num_trials = num_trials
        self.grace_trials = grace_trials
        self.fidelities = rung_fidelities(min_fidelity, max_fidelity, eta)
        #: configurations still alive, by trial id
        self._alive: Dict[int, object] = {}
        self._rung_of: Dict[int, int] = {}
        self._scores_at: Dict[int, List[float]] = {}
        self._pending: List[ScheduledTrial] = []
        self._awaiting: Dict[int, ScheduledTrial] = {}
        self._next_id = 0
        self._seeded = False

    def _seed_trials(self) -> None:
        for _ in range(self.num_trials):
            configuration = self.searcher.suggest()
            if configuration is None:
                break
            trial = ScheduledTrial(
                trial_id=self._next_id,
                configuration=configuration,
                fidelity=self.fidelities[0],
                rung=0,
            )
            self._alive[trial.trial_id] = configuration
            self._rung_of[trial.trial_id] = 0
            self._pending.append(trial)
            self._next_id += 1
        if not self._pending:
            raise TuningError("searcher produced no configurations")
        self._seeded = True

    # -- TrialScheduler interface ------------------------------------------
    def next_trial(self) -> Optional[ScheduledTrial]:
        if not self._seeded:
            self._seed_trials()
        if not self._pending:
            return None
        trial = self._pending.pop(0)
        self._awaiting[trial.trial_id] = trial
        return trial

    def report(self, report: TrialReport) -> None:
        trial = self._awaiting.pop(report.trial.trial_id, None)
        if trial is None:
            # Same tolerance as the halving schedulers: a completion for
            # a trial issued past a checkpoint restore is skipped, not a
            # crash (the restored scheduler re-issues it itself).
            logger.warning(
                "ignoring report for unknown trial %d "
                "(issued before a checkpoint restore, or duplicate)",
                report.trial.trial_id,
            )
            return
        self.searcher.observe(trial.configuration, report.score)
        rung = self._rung_of[trial.trial_id]
        scores = self._scores_at.setdefault(rung, [])
        scores.append(report.score)
        # Median rule: prune if strictly worse than the median of
        # completed scores at this fidelity (once enough are in).
        if (
            len(scores) >= self.grace_trials
            and report.score > statistics.median(scores)
        ):
            del self._alive[trial.trial_id]
            return
        # Otherwise promote to the next fidelity (if any remains).
        next_rung = rung + 1
        if next_rung >= len(self.fidelities):
            del self._alive[trial.trial_id]
            return
        self._rung_of[trial.trial_id] = next_rung
        self._pending.append(
            ScheduledTrial(
                trial_id=trial.trial_id,
                configuration=trial.configuration,
                fidelity=self.fidelities[next_rung],
                rung=next_rung,
            )
        )

    @property
    def finished(self) -> bool:
        if not self._seeded:
            return False
        return not self._pending and not self._awaiting
