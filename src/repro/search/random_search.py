"""Random search (Bergstra & Bengio 2012; paper §4.2, Fig 10 middle).

Samples configurations independently and uniformly; deduplicates exact
repeats in finite spaces until the space is exhausted.
"""

from __future__ import annotations

import math
from typing import Any, List, Mapping, Optional, Set

from ..rng import SeedLike, make_rng
from ..space import Configuration, ParameterSpace
from .base import Searcher, coerce_warm_start_records

#: Resample attempts before giving up on finding an unseen configuration.
MAX_DEDUP_ATTEMPTS = 64


class RandomSearcher(Searcher):
    """Uniform random sampling with exact-duplicate avoidance."""

    def __init__(self, space: ParameterSpace, seed: SeedLike = None):
        super().__init__(space, seed)
        self._rng = make_rng(self.seed)
        self._seen: Set[Configuration] = set()

    def suggest(self) -> Optional[Configuration]:
        finite = math.isfinite(self.space.cardinality)
        if finite and len(self._seen) >= self.space.cardinality:
            return None
        for _ in range(MAX_DEDUP_ATTEMPTS):
            configuration = self.space.sample(self._rng)
            if configuration not in self._seen:
                self._seen.add(configuration)
                return configuration
        # Dense finite space: fall back to returning a duplicate rather
        # than stalling the tuning loop.
        return self.space.sample(self._rng)

    def warm_start(self, records: List[Mapping[str, Any]]) -> int:
        """Mark prior-session configurations as already seen.

        Random search has no score model; what transfer buys it is *not
        re-proposing* configurations whose outcome is already known, so
        every fresh sample explores new ground.
        """
        coerced = coerce_warm_start_records(self.space, records)
        self._seen.update(record["configuration"] for record in coerced)
        return len(coerced)

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        self._seen.clear()
