"""Construct searchers and schedulers by name.

The paper lets users pick a different algorithm per server (§3.1 "Tuning
algorithm"), e.g. BOHB for the Model Tuning Server and grid search for the
Inference Tuning Server; this registry is that selection surface.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import SearchSpaceError
from ..rng import SeedLike
from ..space import ParameterSpace
from .asha import ASHAScheduler
from .base import Searcher, SearcherScheduler, TrialScheduler
from .bohb import BOHBScheduler
from .grid import GridSearcher
from .hyperband import HyperBandScheduler
from .median_stopping import MedianStoppingScheduler
from .random_search import RandomSearcher
from .successive_halving import SuccessiveHalvingScheduler
from .tpe import TPESampler

SEARCHER_NAMES = ("grid", "random", "tpe")
SCHEDULER_NAMES = (
    "grid", "random", "tpe", "sha", "asha", "hyperband", "bohb", "median",
)


def build_searcher(
    name: str, space: ParameterSpace, seed: SeedLike = None, **kwargs
) -> Searcher:
    """Build a plain searcher: ``grid``, ``random`` or ``tpe``."""
    key = name.lower()
    if key == "grid":
        return GridSearcher(space, seed=seed, **kwargs)
    if key == "random":
        return RandomSearcher(space, seed=seed, **kwargs)
    if key == "tpe":
        return TPESampler(space, seed=seed, **kwargs)
    raise SearchSpaceError(
        f"unknown searcher {name!r}; expected one of {SEARCHER_NAMES}"
    )


def build_scheduler(
    name: str,
    space: ParameterSpace,
    seed: SeedLike = None,
    max_fidelity: int = 16,
    min_fidelity: int = 1,
    eta: int = 2,
    num_trials: Optional[int] = None,
    **kwargs,
) -> TrialScheduler:
    """Build a trial scheduler by name.

    ``grid``/``random``/``tpe`` wrap the searcher to run ``num_trials``
    full-fidelity trials (fixed-budget tuning); ``sha``, ``asha``,
    ``hyperband`` and ``bohb`` are the multi-fidelity schedulers
    (``asha`` is the barrier-free asynchronous variant).
    """
    key = name.lower()
    if key in SEARCHER_NAMES:
        searcher = build_searcher(key, space, seed=seed, **kwargs)
        if num_trials is None:
            num_trials = (
                len(searcher) if isinstance(searcher, GridSearcher) else 16
            )
        return SearcherScheduler(
            searcher, num_trials=num_trials, max_fidelity=max_fidelity,
            seed=seed,
        )
    if key == "sha":
        searcher = build_searcher("random", space, seed=seed)
        return SuccessiveHalvingScheduler(
            space, searcher, eta=eta, min_fidelity=min_fidelity,
            max_fidelity=max_fidelity, seed=seed, **kwargs,
        )
    if key == "asha":
        # A random (observation-independent) searcher keeps the asha
        # determinism contract: the suggestion stream depends only on
        # the seed, never on the order observations arrive in.  An
        # adaptive searcher (TPE) would make suggestions a function of
        # integration order — see DESIGN.md §8.
        searcher = build_searcher("random", space, seed=seed)
        return ASHAScheduler(
            space, searcher, eta=eta, min_fidelity=min_fidelity,
            max_fidelity=max_fidelity, seed=seed, **kwargs,
        )
    if key == "hyperband":
        return HyperBandScheduler(
            space, eta=eta, min_fidelity=min_fidelity,
            max_fidelity=max_fidelity, seed=seed, **kwargs,
        )
    if key == "bohb":
        return BOHBScheduler(
            space, eta=eta, min_fidelity=min_fidelity,
            max_fidelity=max_fidelity, seed=seed, **kwargs,
        )
    if key == "median":
        searcher = build_searcher("random", space, seed=seed)
        return MedianStoppingScheduler(
            space, searcher, num_trials=num_trials or 16, eta=eta,
            min_fidelity=min_fidelity, max_fidelity=max_fidelity,
            seed=seed, **kwargs,
        )
    raise SearchSpaceError(
        f"unknown scheduler {name!r}; expected one of {SCHEDULER_NAMES}"
    )
