"""Synchronous successive halving (Jamieson & Talwalkar 2016).

The multi-fidelity core of HyperBand and BOHB, and the paper's §2.2
budget example: start many trials on the minimum budget, keep the best
``1/eta`` fraction at each rung, multiply the budget by ``eta``, repeat
until one trial runs at full fidelity.
"""

from __future__ import annotations

import logging
import math
from typing import Dict, List, Optional, Tuple

from ..errors import SearchSpaceError, TuningError
from ..rng import SeedLike
from ..space import Configuration, ParameterSpace
from .base import ScheduledTrial, Searcher, TrialReport, TrialScheduler

logger = logging.getLogger(__name__)


def rung_fidelities(min_fidelity: int, max_fidelity: int, eta: int) -> List[int]:
    """The fidelity ladder: min, min*eta, ... capped at max (inclusive)."""
    if min_fidelity < 1 or max_fidelity < min_fidelity:
        raise SearchSpaceError(
            f"invalid fidelity range [{min_fidelity}, {max_fidelity}]"
        )
    if eta < 2:
        raise SearchSpaceError(f"eta must be >= 2, got {eta}")
    ladder = []
    fidelity = min_fidelity
    while fidelity < max_fidelity:
        ladder.append(fidelity)
        fidelity *= eta
    ladder.append(max_fidelity)
    return ladder


class SuccessiveHalvingScheduler(TrialScheduler):
    """One halving bracket.

    ``num_configs`` trials start at ``min_fidelity``; each rung promotes
    the best ``ceil(n/eta)`` of its reports to the next fidelity.
    """

    def __init__(
        self,
        space: ParameterSpace,
        searcher: Searcher,
        num_configs: Optional[int] = None,
        eta: int = 2,
        min_fidelity: int = 1,
        max_fidelity: int = 16,
        seed: SeedLike = None,
        bracket: int = 0,
        first_trial_id: int = 0,
    ):
        super().__init__(space, max_fidelity, seed)
        self.searcher = searcher
        self.eta = eta
        self.min_fidelity = min_fidelity
        self.bracket = bracket
        self.fidelities = rung_fidelities(min_fidelity, max_fidelity, eta)
        if num_configs is None:
            num_configs = eta ** (len(self.fidelities) - 1)
        if num_configs < 1:
            raise SearchSpaceError("num_configs must be >= 1")
        self.num_configs = num_configs
        self._next_trial_id = first_trial_id
        self._rung = 0
        #: (configuration, parent trial id, parent fidelity) per slot;
        #: first-rung entries carry (config, None, None).
        self._pending: List[
            Tuple[Configuration, Optional[int], Optional[int]]
        ] = []
        self._awaiting: Dict[int, ScheduledTrial] = {}
        self._reports: List[TrialReport] = []
        self._exhausted = False
        self._populate_first_rung()

    # -- internals ---------------------------------------------------------
    def _populate_first_rung(self) -> None:
        for _ in range(self.num_configs):
            configuration = self.searcher.suggest()
            if configuration is None:  # finite space exhausted
                break
            self._pending.append((configuration, None, None))
        if not self._pending:
            raise TuningError("searcher produced no configurations")

    def _promote(self) -> None:
        """Close the current rung and seed the next with the survivors."""
        survivors = max(1, int(math.ceil(len(self._reports) / self.eta)))
        # Ties break by trial id, so the survivor set is a pure function
        # of the *set* of reports, never of their arrival order (reports
        # arrive in issue order under the wave coordinator, where the
        # stable sort produced the same ranking; this keeps the rung
        # outcome order-independent for any driver).
        ordered = sorted(
            self._reports, key=lambda r: (r.score, r.trial.trial_id)
        )
        self._rung += 1
        if self._rung >= len(self.fidelities):
            self._exhausted = True
            return
        # Survivors carry their lineage: the promoted trial's parent is
        # the report it grew out of (the warm-resume chain).
        self._pending = [
            (
                report.trial.configuration,
                report.trial.trial_id,
                report.trial.fidelity,
            )
            for report in ordered[:survivors]
        ]
        self._reports = []

    # -- TrialScheduler interface ---------------------------------------------
    def next_trial(self) -> Optional[ScheduledTrial]:
        if self._exhausted:
            return None
        if not self._pending:
            if self._awaiting:
                return None  # waiting for outstanding reports
            self._promote()
            if self._exhausted or not self._pending:
                return None
        entry = self._pending.pop(0)
        if isinstance(entry, tuple):
            configuration, parent_id, parent_fidelity = entry
        else:  # pre-lineage checkpoint restored into this release
            configuration, parent_id, parent_fidelity = entry, None, None
        trial = ScheduledTrial(
            trial_id=self._next_trial_id,
            configuration=configuration,
            fidelity=self.fidelities[self._rung],
            bracket=self.bracket,
            rung=self._rung,
            parent_id=parent_id,
            parent_fidelity=parent_fidelity,
        )
        self._next_trial_id += 1
        self._awaiting[trial.trial_id] = trial
        return trial

    def report(self, report: TrialReport) -> None:
        trial = self._awaiting.pop(report.trial.trial_id, None)
        if trial is None:
            # After a mid-rung state_dict restore, completions for trials
            # issued past the snapshot are not in ``_awaiting``; they must
            # neither KeyError nor silently restart the rung.  The restored
            # scheduler re-issues the same trials deterministically, so
            # skipping the stray report loses nothing.
            logger.warning(
                "ignoring report for unknown trial %d "
                "(issued before a checkpoint restore, or duplicate)",
                report.trial.trial_id,
            )
            return
        self._reports.append(report)
        self.searcher.observe(report.trial.configuration, report.score)
        # Promote eagerly when a rung completes so `next_trial` never has
        # to guess.
        if not self._pending and not self._awaiting:
            self._promote()

    @property
    def finished(self) -> bool:
        return self._exhausted

    @property
    def total_trials_issued(self) -> int:
        return self._next_trial_id
