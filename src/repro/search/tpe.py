"""Tree-structured Parzen Estimator sampler (Bergstra et al. 2011).

The Bayesian-optimisation half of BOHB (Falkner et al. 2018): observations
are split into a *good* quantile and the rest; two kernel-density
estimators l(x) and g(x) are fitted over the unit hypercube, and new
candidates maximise the density ratio l(x)/g(x).

Implemented with per-dimension Gaussian Parzen windows over the unit-cube
embedding of configurations, so categorical/integer/float parameters are
handled uniformly.
"""

from __future__ import annotations

import math
from typing import Any, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import SearchSpaceError
from ..rng import SeedLike, make_rng
from ..space import Configuration, ParameterSpace
from .base import Searcher, coerce_warm_start_records

#: Fraction of observations treated as "good".
DEFAULT_GAMMA = 0.25

#: Random configurations evaluated before the model kicks in.
DEFAULT_STARTUP_TRIALS = 8

#: Candidates scored by the density ratio per suggestion.
DEFAULT_CANDIDATES = 24

#: Minimum Parzen bandwidth (keeps the KDE proper with few points).
MIN_BANDWIDTH = 0.08


class ParzenEstimator:
    """Product of 1-D Gaussian mixture densities over the unit cube."""

    def __init__(self, points: np.ndarray):
        if points.ndim != 2 or len(points) == 0:
            raise SearchSpaceError("ParzenEstimator needs an (n, d) array")
        self.points = points
        count, dims = points.shape
        # Scott's rule per dimension, floored for stability.
        spread = points.std(axis=0)
        scott = spread * count ** (-1.0 / (dims + 4))
        self.bandwidths = np.maximum(scott, MIN_BANDWIDTH)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one point: pick a kernel, perturb, reflect into [0, 1]."""
        index = int(rng.integers(len(self.points)))
        draw = self.points[index] + rng.normal(0.0, self.bandwidths)
        # Reflect at the boundaries to keep the proposal inside the cube.
        draw = np.abs(draw)
        draw = 1.0 - np.abs(1.0 - draw)
        return np.clip(draw, 0.0, 1.0)

    def log_density(self, x: np.ndarray) -> float:
        """Log of the mixture density at ``x`` (up to the same constant for
        every estimator of equal dimension, which ratios cancel)."""
        z = (x[None, :] - self.points) / self.bandwidths[None, :]
        per_kernel = -0.5 * (z**2).sum(axis=1) - np.log(
            self.bandwidths
        ).sum()
        peak = per_kernel.max()
        return float(
            peak + math.log(np.exp(per_kernel - peak).mean())
        )


class TPESampler(Searcher):
    """TPE searcher over a :class:`ParameterSpace`."""

    adaptive = True

    def __init__(
        self,
        space: ParameterSpace,
        seed: SeedLike = None,
        gamma: float = DEFAULT_GAMMA,
        startup_trials: int = DEFAULT_STARTUP_TRIALS,
        candidates: int = DEFAULT_CANDIDATES,
    ):
        super().__init__(space, seed)
        if not 0.0 < gamma < 1.0:
            raise SearchSpaceError(f"gamma must be in (0, 1), got {gamma}")
        if startup_trials < 2:
            raise SearchSpaceError("startup_trials must be >= 2")
        self.gamma = gamma
        self.startup_trials = startup_trials
        self.candidates = candidates
        self._rng = make_rng(self.seed)
        self._observations: List[Tuple[np.ndarray, float]] = []

    # -- observation -----------------------------------------------------
    def observe(self, configuration: Configuration, score: float) -> None:
        self._observations.append(
            (configuration.to_unit_vector(), float(score))
        )

    def warm_start(self, records: List[Mapping[str, Any]]) -> int:
        """Seed the Parzen model with prior-session observations.

        Absorbed records count toward ``startup_trials``, so a searcher
        warm-started with enough history skips the random-exploration
        phase entirely and models from the first suggestion.
        """
        coerced = coerce_warm_start_records(self.space, records)
        for record in coerced:
            self.observe(record["configuration"], record["score"])
        return len(coerced)

    def reset(self) -> None:
        self._rng = make_rng(self.seed)
        self._observations.clear()

    # -- suggestion ---------------------------------------------------------
    def _split(self) -> Tuple[np.ndarray, np.ndarray]:
        ordered = sorted(self._observations, key=lambda item: item[1])
        n_good = max(2, int(math.ceil(self.gamma * len(ordered))))
        good = np.array([vector for vector, _ in ordered[:n_good]])
        bad_items = ordered[n_good:]
        if len(bad_items) < 2:
            bad_items = ordered  # degenerate split: reuse everything
        bad = np.array([vector for vector, _ in bad_items])
        return good, bad

    def suggest(self) -> Optional[Configuration]:
        if len(self._observations) < self.startup_trials:
            return self.space.sample(self._rng)
        good, bad = self._split()
        good_kde = ParzenEstimator(good)
        bad_kde = ParzenEstimator(bad)
        best_vector: Optional[np.ndarray] = None
        best_ratio = -math.inf
        for _ in range(self.candidates):
            candidate = good_kde.sample(self._rng)
            ratio = good_kde.log_density(candidate) - bad_kde.log_density(
                candidate
            )
            if ratio > best_ratio:
                best_ratio = ratio
                best_vector = candidate
        assert best_vector is not None
        return self.space.from_unit_vector(best_vector)
