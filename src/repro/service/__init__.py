"""Persistent tuning service: job queue, worker pool, crash-safe resume.

The service decomposes a tuning run along the seam built into
:class:`~repro.core.model_server.ModelTuningServer`:

* :mod:`repro.service.spec` — what a session runs (serializable spec);
* :mod:`repro.service.queue` — persistent job queue with leases,
  heartbeats and capped-backoff retries (``jobs`` table);
* :mod:`repro.service.sessions` — session lifecycle + checkpoints
  (``sessions`` table);
* :mod:`repro.service.worker` — processes doing the real numpy training;
* :mod:`repro.service.pool` — multiprocessing worker-pool supervisor;
* :mod:`repro.service.coordinator` — wave scheduling and the ordered
  merge that keeps N-worker runs bit-identical to 1-worker runs.

CLI: ``python -m repro.service submit|status|workers|resume|gc``.
"""

from .coordinator import SessionCoordinator, serve
from .failures import run_with_deadline
from .pool import WorkerPool
from .queue import DeadLetter, Job, JobQueue, backoff_delay
from .sessions import SessionRecord, SessionStore
from .spec import SERVICE_SYSTEMS, SessionSpec, build_server
from .worker import TrialWorker, worker_main

__all__ = [
    "SessionSpec",
    "SERVICE_SYSTEMS",
    "build_server",
    "DeadLetter",
    "Job",
    "JobQueue",
    "backoff_delay",
    "run_with_deadline",
    "SessionRecord",
    "SessionStore",
    "TrialWorker",
    "worker_main",
    "WorkerPool",
    "SessionCoordinator",
    "serve",
]
