"""Tuning-service command-line interface.

Operate the persistent tuning service against a shared sqlite file::

    python -m repro.service submit IC --db tuning.sqlite --target 0.8
    python -m repro.service workers --db tuning.sqlite -n 4 --drain
    python -m repro.service status --db tuning.sqlite [SESSION]
    python -m repro.service resume --db tuning.sqlite SESSION
    python -m repro.service deadletter list --db tuning.sqlite
    python -m repro.service scrub --db tuning.sqlite
    python -m repro.service gc --db tuning.sqlite

``submit`` only records the session; ``workers`` (long-running) or
``resume`` (one session, inline by default) execute it.  Because every
state transition lives in sqlite, any of these commands may be killed at
any time and re-run.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings

from ..artifacts import ArtifactStore
from ..errors import ServiceError
from ..storage import TrialDatabase
from .coordinator import SessionCoordinator, serve
from .queue import DEFAULT_LEASE_TTL_S, JobQueue
from .sessions import SessionStore
from .spec import SERVICE_SYSTEMS, SessionSpec


def _database(args) -> TrialDatabase:
    """Open the shared database; ``TrialDatabase`` is a context manager,
    so every command below holds it in a ``with`` block — the connection
    (and its WAL sidecar files) is released on *every* exit path,
    including argparse/``ServiceError`` failures mid-command."""
    return TrialDatabase(args.db)


def _cmd_submit(args) -> int:
    with _database(args) as database:
        spec = SessionSpec(
            system=args.system,
            workload=args.workload,
            device=args.device,
            budget=args.budget,
            tuning_metric=args.metric,
            seed=args.seed,
            samples=args.samples,
            max_trials=args.max_trials,
            target_accuracy=args.target,
            warm_start=args.warm_start,
            reuse_checkpoints=args.reuse_checkpoints,
            scheduler=args.scheduler,
            num_configs=args.num_configs,
            traffic=args.traffic,
            traffic_metric=args.traffic_metric,
            slo_p99_s=args.slo_p99,
            slo_deadline_s=args.slo_deadline,
            trial_batch=args.trial_batch,
        )
        session_id = SessionStore(database).create(spec)
    print(session_id)
    return 0


def _machines_info(database) -> dict:
    """Per-machine registry view plus the fleet counters.

    Machines are what ``status``/``workers`` report instead of bare
    worker PIDs: hostname, backend fingerprint, shard, heartbeat age.
    """
    import time as _time

    from ..fleet.registry import HubState, MachineRegistry

    registry = MachineRegistry(database)
    now = _time.time()
    return {
        # Epoch 0 = no fleet hub has ever run against this database.
        "hub": {"epoch": HubState(database).current_epoch()},
        "machines": [
            {
                "id": machine.id,
                "hostname": machine.hostname,
                "shard": machine.shard,
                "state": machine.state,
                "jobs_done": machine.jobs_done,
                "heartbeat_age_s": round(machine.heartbeat_age_s(now), 3),
                "fingerprint": machine.capabilities.get("fingerprint"),
                "cores": machine.capabilities.get("cores"),
            }
            for machine in registry.list()
        ],
        # Traffic, batching and dataset-cache counters share the
        # fleet_stats table but are reported in their own status
        # sections, not among the fleet meters.
        "fleet": {
            key: value
            for key, value in registry.stats().items()
            if not key.startswith(("traffic.", "batch.", "dataset_cache."))
        },
        "batching": _batching_info(registry.stats()),
    }


def _batching_info(stats: dict) -> dict:
    """The ``batching`` status section: fleet-wide group occupancy."""
    groups = stats.get("batch.groups", 0.0)
    members = stats.get("batch.members", 0.0)
    return {
        "groups": groups,
        "members": members,
        "mean_k": (members / groups) if groups else 0.0,
        "max_k": stats.get("batch.max_k", 0.0),
        "serial_fallback": stats.get("batch.serial_fallback", 0.0),
        "dataset_cache": {
            "hits": stats.get("dataset_cache.hits", 0.0),
            "misses": stats.get("dataset_cache.misses", 0.0),
            "evictions": stats.get("dataset_cache.evictions", 0.0),
        },
    }


def _traffic_info(database, spec) -> dict:
    """The ``traffic`` status section: active scenario + replay counters."""
    from ..traffic import traffic_stats

    counters = traffic_stats(database)
    violations = {
        key[len("slo_violations."):]: value
        for key, value in counters.items()
        if key.startswith("slo_violations.")
    }
    scenario = getattr(spec, "traffic", None)
    return {
        "scenario": scenario,
        "metric": (
            getattr(spec, "traffic_metric", None) if scenario else None
        ),
        "replays": counters.get("replays", 0.0),
        "requests_replayed": counters.get("requests_replayed", 0.0),
        "requests_shed": counters.get("requests_shed", 0.0),
        "replays_diverged": counters.get("replays_diverged", 0.0),
        "storm_injected": counters.get("storm_injected", 0.0),
        "slo_violations": violations,
    }


def _print_machines(info: dict) -> None:
    if info["hub"]["epoch"]:
        print(f"hub:       epoch {info['hub']['epoch']}")
    for machine in info["machines"]:
        fingerprint = machine["fingerprint"] or "?"
        if len(fingerprint) > 48:
            fingerprint = fingerprint[:45] + "..."
        print(f"machine:   {machine['id']} on {machine['hostname']} "
              f"shard {machine['shard']} [{machine['state']}] "
              f"{machine['jobs_done']} jobs, "
              f"hb {machine['heartbeat_age_s']:.1f}s ago, "
              f"backend {fingerprint}")
    if info["fleet"]:
        print("fleet:     " + " ".join(
            f"{key}={value:g}"
            for key, value in sorted(info["fleet"].items())
        ))


def _session_status(
    record, queue, artifacts=None, machines=None, traffic=None
) -> dict:
    """Machine-readable status for one session (the ``--json`` shape)."""
    return {
        "session": record.id,
        "state": record.state,
        "spec": record.spec.to_dict(),
        "jobs": queue.depths(record.id),
        "dead_letter": queue.dead_letter_count(record.id),
        "last_error": queue.last_error(record.id),
        "resumable": record.has_checkpoint,
        "error": record.error,
        "result": record.result,
        "workers": queue.worker_stats(record.id),
        "artifact_cache": artifacts.stats() if artifacts else None,
        "machines": machines["machines"] if machines else [],
        "fleet": machines["fleet"] if machines else {},
        "hub": machines["hub"] if machines else {},
        "batching": machines["batching"] if machines else {},
        "traffic": traffic or {},
    }


def _cmd_status(args) -> int:
    with _database(args) as database:
        store = SessionStore(database)
        queue = JobQueue(database)
        artifacts = ArtifactStore(database)
        machines = _machines_info(database)
        if args.session:
            record = store.get(args.session)
            traffic = _traffic_info(database, record.spec)
            if args.json:
                print(json.dumps(
                    _session_status(
                        record, queue, artifacts, machines, traffic
                    ),
                    sort_keys=True, indent=2))
                return 0
            depths = queue.depths(record.id)
            print(f"session:   {record.id}")
            print(f"state:     {record.state}")
            print(f"spec:      {json.dumps(record.spec.to_dict(), sort_keys=True)}")
            print(f"jobs:      " + ", ".join(
                f"{state}={count}" for state, count in sorted(depths.items())
            ))
            dead = queue.dead_letter_count(record.id)
            if dead:
                print(f"dead:      {dead} job(s) quarantined "
                      f"(service deadletter list --db ...)")
            last_error = queue.last_error(record.id)
            if last_error:
                print(f"last err:  {last_error.strip().splitlines()[-1]}")
            print(f"resumable: {'yes' if record.has_checkpoint else 'no'}")
            cache = artifacts.stats()
            print(f"artifacts: {cache['entries']} entries, "
                  f"{cache['bytes']} bytes, {cache['hits']} hits / "
                  f"{cache['misses']} misses")
            if record.error:
                print(f"error:     {record.error.strip().splitlines()[-1]}")
            if record.result:
                print("result:    "
                      + json.dumps(record.result, sort_keys=True, indent=2))
            for stats in queue.worker_stats(record.id):
                print(f"worker:    {stats['worker']}: "
                      f"{stats['jobs_done']} jobs, "
                      f"{stats['busy_s']:.1f}s busy")
            batching = machines["batching"]
            if batching["groups"]:
                print(f"batching:  {batching['groups']:g} groups, "
                      f"mean K {batching['mean_k']:.1f}, "
                      f"max K {batching['max_k']:g}, "
                      f"{batching['serial_fallback']:g} serial fallbacks")
            if traffic["scenario"] or traffic["replays"]:
                violations = " ".join(
                    f"{name}={count:g}"
                    for name, count in sorted(
                        traffic["slo_violations"].items()
                    )
                ) or "none"
                print(f"traffic:   scenario "
                      f"{traffic['scenario'] or '(steady-state)'}, "
                      f"{traffic['requests_replayed']:g} requests over "
                      f"{traffic['replays']:g} replays, "
                      f"slo violations: {violations}")
            _print_machines(machines)
        else:
            records = store.list()
            if args.json:
                print(json.dumps(
                    [_session_status(
                        record, queue, artifacts, machines,
                        _traffic_info(database, record.spec),
                    ) for record in records],
                    sort_keys=True, indent=2,
                ))
                return 0
            if not records:
                print("no sessions")
            for record in records:
                depths = queue.depths(record.id)
                done = depths["done"]
                total = sum(depths.values())
                print(f"{record.id}  {record.state:8s} "
                      f"{record.spec.system}:{record.spec.workload}  "
                      f"jobs {done}/{total}")
            _print_machines(machines)
    return 0


def _cmd_workers(args) -> int:
    warnings.filterwarnings("ignore", category=RuntimeWarning)
    if args.faults:
        # Export to REPRO_FAULTS too, so spawned workers inherit the
        # exact same deterministic fault schedule.
        from .. import faults

        faults.configure(args.faults)
    with _database(args) as database:
        results = serve(
            database,
            workers=args.num,
            lease_ttl_s=args.lease_ttl,
            drain=args.drain,
            idle_timeout_s=args.idle_timeout,
            trial_timeout_s=args.trial_timeout,
            heartbeat_interval_s=args.heartbeat_interval,
            trial_batch=args.trial_batch,
        )
        machines = _machines_info(database)
    for result in results:
        print(f"done: {result.system}:{result.workload_id} "
              f"{len(result.trials)} trials, "
              f"best accuracy {result.best_accuracy:.3f}")
    _print_machines(machines)
    return 0


def _cmd_resume(args) -> int:
    from ..__main__ import print_result

    warnings.filterwarnings("ignore", category=RuntimeWarning)
    with _database(args) as database:
        try:
            coordinator = SessionCoordinator(
                database, args.session, workers=args.workers
            )
            result = coordinator.run()
        except ServiceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    print_result(result)
    return 0


def _cmd_deadletter(args) -> int:
    with _database(args) as database:
        queue = JobQueue(database)
        if args.action == "list":
            letters = queue.dead_letters(args.session)
            if args.json:
                print(json.dumps(
                    [
                        {
                            "session": letter.session_id,
                            "trial": letter.trial_id,
                            "attempts": letter.attempts,
                            "error": letter.error,
                            "history": letter.error_history,
                            "quarantined_at": letter.quarantined_at,
                        }
                        for letter in letters
                    ],
                    sort_keys=True, indent=2,
                ))
                return 0
            if not letters:
                print("dead-letter queue is empty")
            for letter in letters:
                last = (letter.error or "").strip().splitlines()
                print(f"{letter.session_id}  trial {letter.trial_id}  "
                      f"{letter.attempts} attempts  "
                      f"{last[-1] if last else '?'}")
            return 0
        if args.action == "retry":
            if not args.session:
                print("error: retry needs --session", file=sys.stderr)
                return 2
            released = queue.retry_dead(args.session, trial_id=args.trial)
            print(f"released {released} job(s) back to the queue")
            return 0 if released else 1
        purged = queue.purge_dead(args.session)
        print(f"purged {purged} dead-letter row(s)")
        return 0


def _cmd_scrub(args) -> int:
    """Sweep the artifact store end to end, verifying every checksum.

    Mismatched blobs are quarantined (the next trial that wants one
    falls back to a cold run — strictly safer than training from
    damaged state), rows whose sidecar file vanished are dropped,
    pre-checksum rows are backfilled, and orphaned files are pruned.
    """
    with _database(args) as database:
        report = ArtifactStore(database).scrub(repair=not args.no_repair)
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print(f"scanned:         {report['scanned']}")
        print(f"verified:        {report['verified']}")
        print(f"quarantined:     {report['quarantined']}")
        print(f"missing blobs:   {report['missing']}")
        print(f"repaired:        {report['repaired']}")
        print(f"orphans removed: {report['orphans_removed']}")
    if not args.no_repair:
        return 0  # damage found was also contained
    return 1 if report["quarantined"] or report["missing"] else 0


def _cmd_gc(args) -> int:
    with _database(args) as database:
        counts = SessionStore(database).gc(max_age_s=args.max_age)
        pruned = ArtifactStore(database).gc(
            max_age_s=args.max_age, max_bytes=args.max_cache_bytes
        )
    print(f"sessions deleted:  {counts['sessions_deleted']}")
    print(f"jobs deleted:      {counts['jobs_deleted']}")
    print(f"leases reclaimed:  {counts['leases_reclaimed']}")
    print(f"artifacts deleted: {pruned['artifacts_deleted']}")
    print(f"bytes freed:       {pruned['bytes_freed']}")
    print(f"orphans removed:   {pruned['orphans_removed']}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="EdgeTune persistent tuning service",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    submit = subparsers.add_parser("submit", help="queue a tuning session")
    submit.add_argument("workload", choices=["IC", "SR", "NLP", "OD"])
    submit.add_argument("--db", required=True, help="sqlite database path")
    submit.add_argument("--system", default="edgetune",
                        choices=list(SERVICE_SYSTEMS))
    submit.add_argument("--device", default="armv7")
    submit.add_argument("--budget", default="multi-budget")
    submit.add_argument("--metric", default="runtime",
                        choices=["runtime", "energy"])
    submit.add_argument("--target", type=float, default=None,
                        help="target accuracy (e.g. 0.8)")
    submit.add_argument("--seed", type=int, default=7)
    submit.add_argument("--samples", type=int, default=600)
    submit.add_argument("--max-trials", type=int, default=None)
    submit.add_argument("--warm-start", action="store_true",
                        help="seed the session's search model from prior "
                             "trials of the same experiment in --db")
    submit.add_argument("--reuse-checkpoints", action="store_true",
                        help="warm-resume promoted trials from their "
                             "parent rung's checkpoint (changes scores vs. "
                             "retrain-from-scratch; exact memoization is "
                             "always on)")
    submit.add_argument("--scheduler", default=None,
                        help="override the edgetune search algorithm "
                             "(e.g. 'asha' for asynchronous successive "
                             "halving; default: the system's own, bohb)")
    submit.add_argument("--num-configs", type=int, default=None,
                        help="bracket width for --scheduler sha/asha: how "
                             "many fresh configurations enter the bottom "
                             "rung (default: eta ** num_rungs)")
    submit.add_argument("--traffic", default=None,
                        help="serving-load scenario to tune under, e.g. "
                             "'flash:rate=30,mult=8,duration=60,seed=7' "
                             "(edgetune only)")
    submit.add_argument("--traffic-metric", default="p99",
                        choices=["p99", "deadline", "energy"],
                        help="SLO metric scored against the replayed trace")
    submit.add_argument("--slo-p99", type=float, default=None,
                        help="p99 latency target in seconds")
    submit.add_argument("--slo-deadline", type=float, default=None,
                        help="per-request deadline in seconds")
    submit.add_argument("--trial-batch", type=int, default=None,
                        help="stack up to K shape-compatible trials into "
                             "one vectorized training run per worker "
                             "(bit-identical to serial; default: auto via "
                             "$REPRO_TRIAL_BATCH or 8; 1 disables)")
    submit.set_defaults(func=_cmd_submit)

    status = subparsers.add_parser("status",
                                   help="show sessions / one session")
    status.add_argument("session", nargs="?", default=None)
    status.add_argument("--db", required=True)
    status.add_argument("--json", action="store_true",
                        help="machine-readable output")
    status.set_defaults(func=_cmd_status)

    workers = subparsers.add_parser(
        "workers", help="run queued sessions with a worker pool"
    )
    workers.add_argument("--db", required=True)
    workers.add_argument("-n", "--num", type=int, default=0,
                         help="worker processes (0 = inline execution)")
    workers.add_argument("--drain", action="store_true",
                         help="exit once no queued session remains")
    workers.add_argument("--idle-timeout", type=float, default=None,
                         help="exit after this many idle seconds")
    workers.add_argument("--lease-ttl", type=float,
                         default=DEFAULT_LEASE_TTL_S,
                         help="job lease duration in seconds (also "
                              "honoured from $REPRO_LEASE_TTL_S)")
    workers.add_argument("--heartbeat-interval", type=float, default=None,
                         help="lease renewal period in seconds (default: "
                              "a quarter of the lease TTL; also honoured "
                              "from $REPRO_HEARTBEAT_INTERVAL_S)")
    workers.add_argument("--trial-timeout", type=float, default=None,
                         help="wall-clock deadline per trial in seconds "
                              "(overruns fail the job instead of hanging "
                              "the worker)")
    workers.add_argument("--trial-batch", type=int, default=None,
                         help="stacking width K for batched-trial "
                              "execution (overrides the session spec; "
                              "1 disables grouping)")
    workers.add_argument("--faults", default=None, metavar="SPEC",
                         help="fault-injection spec, e.g. "
                              "'seed=7;worker.crash=0.2' (chaos testing; "
                              "also honoured from $REPRO_FAULTS)")
    workers.set_defaults(func=_cmd_workers)

    resume = subparsers.add_parser(
        "resume", help="resume an interrupted session from its checkpoint"
    )
    resume.add_argument("session")
    resume.add_argument("--db", required=True)
    resume.add_argument("-n", "--workers", type=int, default=0,
                        help="worker processes (default: inline)")
    resume.set_defaults(func=_cmd_resume)

    deadletter = subparsers.add_parser(
        "deadletter", help="inspect / retry / purge quarantined jobs"
    )
    deadletter.add_argument("action", choices=["list", "retry", "purge"])
    deadletter.add_argument("--db", required=True)
    deadletter.add_argument("--session", default=None,
                            help="restrict to one session (required for "
                                 "retry)")
    deadletter.add_argument("--trial", type=int, default=None,
                            help="retry only this trial id")
    deadletter.add_argument("--json", action="store_true",
                            help="machine-readable list output")
    deadletter.set_defaults(func=_cmd_deadletter)

    scrub = subparsers.add_parser(
        "scrub", help="verify every cached artifact's checksum; "
                      "quarantine corrupt blobs, prune orphans"
    )
    scrub.add_argument("--db", required=True)
    scrub.add_argument("--json", action="store_true",
                       help="machine-readable report")
    scrub.add_argument("--no-repair", action="store_true",
                       help="report only; exit 1 if damage is found")
    scrub.set_defaults(func=_cmd_scrub)

    gc = subparsers.add_parser(
        "gc", help="purge old finished sessions, reclaim expired leases"
    )
    gc.add_argument("--db", required=True)
    gc.add_argument("--max-age", type=float, default=7 * 24 * 3600.0,
                    help="age threshold in seconds for done/failed sessions "
                         "and unused cached artifacts")
    gc.add_argument("--max-cache-bytes", type=int, default=None,
                    help="evict least-recently-used artifacts until the "
                         "cache is under this many bytes")
    gc.set_defaults(func=_cmd_gc)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
