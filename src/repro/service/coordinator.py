"""The session coordinator: deterministic merge of parallel trial results.

One coordinator drives one tuning session to completion:

1. build the :class:`~repro.core.model_server.ModelTuningServer` the
   session's spec describes and :meth:`prepare` a run state (restoring the
   latest checkpoint if one exists — the crash-resume path);
2. drain a **wave** of trials from the scheduler (one rung's worth for
   halving schedulers) and enqueue each as a persistent job;
3. while workers chew through the wave in *any* order, integrate finished
   evaluations strictly in wave order — scoring, inference tuning, virtual
   timeline, scheduler reports are all order-sensitive, so pinning the
   integration order makes an N-worker run bit-identical to a 1-worker
   run;
4. checkpoint the scheduler + run state after **every** integrated trial,
   so a ``kill -9`` at any point loses at most in-flight work (which the
   queue retries) and never re-runs a finished trial.

With ``workers=0`` the coordinator executes jobs inline (still through the
queue, so results persist identically) — the mode used by ``resume`` and
by tests that need single-process determinism.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from typing import Any, Dict, List, Optional

from .. import faults
from ..core.model_server import (
    ModelTuningServer, RunState, _plain, failure_evaluation,
)
from ..core.results import TuningRunResult
from ..errors import ServiceError, TuningError
from ..telemetry.meters import FAILURES_SUBSTITUTED
from ..search import ScheduledTrial
from ..storage import TrialDatabase
from ..telemetry import MeterRegistry
from .pool import WorkerPool
from .queue import DEFAULT_LEASE_TTL_S, FAILED, JobQueue
from .sessions import S_DONE, SessionRecord, SessionStore
from .spec import build_server
from .worker import TrialWorker

#: How long the coordinator sleeps between result polls, seconds.
COORDINATOR_POLL_S = 0.05

#: Issue lookahead of the asynchronous merge loop: at most this many
#: trials in flight at once.  A *constant* (never derived from the
#: worker count) on purpose — the issue schedule is part of what makes
#: pinned-order decision logs bit-identical across worker counts — and
#: big enough to keep the default pools saturated while leaving
#: ``max_trials`` headroom for the promotions each result unlocks
#: (greedy issuance would spend a capped session's whole budget on
#: bottom-rung trials before the first promotion could claim a slot).
ASYNC_MAX_IN_FLIGHT = 8


class SessionCoordinator:
    """Runs one session: wave scheduling, ordered merge, checkpoints."""

    def __init__(
        self,
        database: TrialDatabase,
        session_id: str,
        workers: int = 0,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        poll_interval_s: float = COORDINATOR_POLL_S,
        pool: Optional[WorkerPool] = None,
        meters: Optional[MeterRegistry] = None,
        trial_timeout_s: Optional[float] = None,
        heartbeat_interval_s: Optional[float] = None,
        shard: int = 0,
        remote: bool = False,
        pin_order: bool = False,
        trial_batch: Optional[int] = None,
    ):
        if workers > 0 and pool is None and database.path == ":memory:":
            raise ServiceError(
                "worker processes need a file-backed database, "
                "got ':memory:'"
            )
        self.database = database
        self.session_id = session_id
        self.workers = workers
        self.lease_ttl_s = lease_ttl_s
        self.poll_interval_s = poll_interval_s
        self.queue = JobQueue(database)
        self.sessions = SessionStore(database)
        self.meters = meters or MeterRegistry()
        self.trial_timeout_s = trial_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        #: Fleet shard the session's jobs are routed to (0 = local).
        self.shard = int(shard)
        #: Remote mode: the fleet's machines execute the jobs, so this
        #: coordinator spawns no workers of its own — it only enqueues,
        #: polls, and merges (the wave-ordered integration is identical,
        #: which is what keeps fleet runs bit-identical to local ones).
        self.remote = remote
        #: Replay mode for asynchronous schedulers: integrate results
        #: strictly in issue order (waiting for the earliest pending
        #: trial), which pins the completion order the scheduler sees —
        #: decision logs become identical for any worker count.  Also
        #: settable per deployment via ``$REPRO_PIN_COMPLETION_ORDER``.
        #: The synchronous wave path is always pinned; this flag only
        #: changes the async merge.
        pin_env = os.environ.get("REPRO_PIN_COMPLETION_ORDER", "")
        self.pin_order = bool(pin_order) or pin_env.lower() not in (
            "", "0", "false",
        )
        #: Stacking width K for batched-trial execution; ``None`` defers
        #: to the session spec (then ``$REPRO_TRIAL_BATCH``/auto).
        self.trial_batch = trial_batch
        self._pool = pool
        self._owns_pool = pool is None and workers > 0 and not remote
        self._inline: Optional[TrialWorker] = None
        #: The finished session's scheduler decision log (asynchronous
        #: schedulers only), surfaced in the session result summary.
        self._decision_log: Optional[List[List[Any]]] = None

    # -- main entry ---------------------------------------------------------
    def run(self) -> TuningRunResult:
        """Drive the session to completion (fresh or resumed)."""
        record = self.sessions.get(self.session_id)
        if record.state == S_DONE:
            raise ServiceError(
                f"session {self.session_id!r} is already done"
            )
        server = build_server(record.spec, self.database)
        trial_batch = (
            self.trial_batch if self.trial_batch is not None
            else getattr(record.spec, "trial_batch", None)
        )
        try:
            if self._owns_pool:
                self._pool = WorkerPool(
                    self.database.path,
                    self.workers,
                    lease_ttl_s=self.lease_ttl_s,
                    trial_timeout_s=self.trial_timeout_s,
                    heartbeat_interval_s=self.heartbeat_interval_s,
                    trial_batch=trial_batch,
                ).start()
            elif self.workers == 0 and not self.remote:
                self._inline = TrialWorker(
                    database=self.database,
                    worker_id="inline",
                    lease_ttl_s=self.lease_ttl_s,
                    trial_timeout_s=self.trial_timeout_s,
                    trial_batch=trial_batch,
                )
            result = self._run(server, record)
        except Exception:
            self.sessions.fail(
                self.session_id, traceback.format_exc(limit=8)
            )
            raise
        finally:
            if self._owns_pool and self._pool is not None:
                self._pool.stop()
                self._pool = None
            if self._inline is not None:
                self._inline.close()
                self._inline = None
        return result

    def _run(
        self, server: ModelTuningServer, record: SessionRecord
    ) -> TuningRunResult:
        state = server.prepare()
        wave: List[ScheduledTrial] = []
        blob = self.sessions.load_checkpoint(self.session_id)
        if blob is not None:
            wave = server.restore_run(state, blob)
            self.meters.counter("trials.resumed").inc(len(state.records))
        self.sessions.set_state(self.session_id, "running")

        if getattr(state.scheduler, "asynchronous", False):
            self._drive_async(server, state, wave)
        else:
            while True:
                if not wave:
                    wave = server.next_wave(state)
                    if not wave:
                        break
                    self.meters.meter("wave.size").record(len(wave))
                    for trial in wave:
                        self.queue.enqueue(
                            self.session_id,
                            trial.trial_id,
                            server.make_task(trial, state).to_json(),
                            shard=self.shard,
                        )
                    self._checkpoint(server, state, wave)
                wave_started = time.time()
                self._drain_wave(server, state, wave)
                self.meters.meter("wave.latency_s").record(
                    time.time() - wave_started
                )
                if state.stopped:
                    break

        log = getattr(state.scheduler, "decision_log", None)
        if log is not None:
            self._decision_log = [list(entry) for entry in log]
        result = server.finalize(state)
        self.sessions.finish(
            self.session_id, self._summarize(server, result)
        )
        self._index_knowledge(record, result)
        return result

    def _index_knowledge(self, record: SessionRecord, result) -> None:
        """Distill the finished session into the advisor knowledge base.

        Import is deferred (and failures swallowed) so the tuning path
        never depends on — or breaks because of — the advisor subsystem.
        """
        try:
            from ..advisor import KnowledgeBase

            KnowledgeBase(self.database).index_result(
                workload=record.spec.workload,
                device=record.spec.device,
                objective=record.spec.tuning_metric,
                target_accuracy=record.spec.target_accuracy,
                system=record.spec.system,
                session_id=self.session_id,
                result=result,
            )
            self.meters.counter("advisor.indexed").inc()
        except Exception:  # pragma: no cover - best-effort enrichment
            pass

    # -- wave draining -------------------------------------------------------
    def _drain_wave(
        self,
        server: ModelTuningServer,
        state: RunState,
        wave: List[ScheduledTrial],
    ) -> None:
        """Integrate every trial of ``wave`` in order (mutates ``wave``).

        Workers may finish out of order; only the *head* of the wave is
        ever integrated, so the merge order — and therefore the run's
        result — is independent of worker count and timing.
        """
        while wave:
            results = self.queue.results_for(
                self.session_id, [t.trial_id for t in wave]
            )
            progressed = False
            while wave and wave[0].trial_id in results:
                trial = wave.pop(0)
                evaluation = pickle.loads(results[trial.trial_id])
                # One transaction per integration: the trial/inference
                # rows and the checkpoint that says "this trial is
                # merged" must land together, or a crash between them
                # would leave a warm inference cache the restored
                # checkpoint has never seen — and the resumed run's
                # stall accounting would diverge from an uninterrupted
                # one.
                with self.database.transaction():
                    server.integrate(state, trial, evaluation)
                    self._checkpoint(server, state, wave)
                self.meters.counter("trials.integrated").inc()
                progressed = True
                if state.stopped:
                    # Target reached mid-wave: the serial driver would
                    # never have issued the remaining trials, so drop
                    # them unintegrated to keep results identical.
                    del wave[:]
                    return
            if not wave or progressed:
                continue
            if self._substitute_failure(server, state, wave):
                continue
            self._pump(wave)

    def _substitute_failure(
        self,
        server: ModelTuningServer,
        state: RunState,
        wave: List[ScheduledTrial],
    ) -> bool:
        """Integrate a failure record for a dead-lettered wave head.

        A poison trial (fails every attempt) used to abort the whole
        session; now its quarantined job is *substituted* with a
        deterministic worst-case evaluation and the wave keeps draining.
        Substitution happens only at the wave head, so it preserves the
        strict integration order that makes N-worker runs bit-identical.
        """
        head = wave[0]
        job = self.queue.get(self.session_id, head.trial_id)
        if job is None or job.state != FAILED:
            return False
        trial = wave.pop(0)
        with self.database.transaction():
            server.integrate(
                state, trial, failure_evaluation(trial.trial_id, job.error)
            )
            self._checkpoint(server, state, wave)
        self.meters.counter(FAILURES_SUBSTITUTED).inc()
        self.meters.counter("trials.integrated").inc()
        if state.stopped:
            del wave[:]
        return True

    # -- asynchronous merge (ASHA) -------------------------------------------
    def _drive_async(
        self,
        server: ModelTuningServer,
        state: RunState,
        pending: List[ScheduledTrial],
    ) -> None:
        """Barrier-free merge loop for asynchronous schedulers.

        Every turn: drain whatever the scheduler can issue *right now*
        (promotions decided by the latest result, or fresh bottom-rung
        trials) and enqueue it — freed workers pick the jobs up
        immediately — then integrate **one** ready result so any
        promotion it triggers reaches the queue before the next merge.

        ``pending`` holds issued-but-unintegrated trials in issue order.
        Ready results integrate earliest-issued-first (a deterministic
        tie-break, not a barrier); under :attr:`pin_order` only the
        earliest pending trial ever integrates, which fixes the
        completion order the scheduler observes and makes decision logs
        bit-identical across worker counts (the async "replay mode").

        Checkpoint discipline matches the wave path: scheduler state is
        snapshotted after enqueueing (a crash in between re-issues the
        same trials; ``enqueue`` is idempotent) and inside the same
        transaction as every integration.
        """
        while True:
            fresh = server.next_trials(
                state,
                in_flight=len(pending),
                limit=max(0, ASYNC_MAX_IN_FLIGHT - len(pending)),
            )
            if fresh:
                for trial in fresh:
                    self.queue.enqueue(
                        self.session_id,
                        trial.trial_id,
                        server.make_task(trial, state).to_json(),
                        shard=self.shard,
                    )
                pending.extend(fresh)
                self._checkpoint(server, state, pending)
            if not pending:
                capped = (
                    server.max_trials is not None
                    and len(state.records) >= server.max_trials
                )
                if not (
                    state.stopped or capped or state.scheduler.finished
                ):
                    raise TuningError(
                        "asynchronous scheduler stalled with no "
                        "runnable or in-flight trials"
                    )
                return
            results = self.queue.results_for(
                self.session_id, [t.trial_id for t in pending]
            )
            scan = pending[:1] if self.pin_order else list(pending)
            integrated = False
            for trial in scan:
                if trial.trial_id not in results:
                    continue
                pending.remove(trial)
                evaluation = pickle.loads(results[trial.trial_id])
                with self.database.transaction():
                    server.integrate(state, trial, evaluation)
                    self._checkpoint(server, state, pending)
                self.meters.counter("trials.integrated").inc()
                integrated = True
                break
            if integrated:
                if state.stopped:
                    # Target reached: drop in-flight work unintegrated,
                    # exactly like the wave path mid-wave.
                    del pending[:]
                    return
                continue
            if self._substitute_failure_async(server, state, pending):
                continue
            self._pump(pending)

    def _substitute_failure_async(
        self,
        server: ModelTuningServer,
        state: RunState,
        pending: List[ScheduledTrial],
    ) -> bool:
        """Integrate a failure record for a dead-lettered pending trial.

        The async twin of :meth:`_substitute_failure`: scanned in issue
        order (head-only under :attr:`pin_order`, preserving the pinned
        completion order even for substitutions).
        """
        scan = pending[:1] if self.pin_order else list(pending)
        for trial in scan:
            job = self.queue.get(self.session_id, trial.trial_id)
            if job is None or job.state != FAILED:
                continue
            pending.remove(trial)
            with self.database.transaction():
                server.integrate(
                    state, trial,
                    failure_evaluation(trial.trial_id, job.error),
                )
                self._checkpoint(server, state, pending)
            self.meters.counter(FAILURES_SUBSTITUTED).inc()
            self.meters.counter("trials.integrated").inc()
            if state.stopped:
                del pending[:]
            return True
        return False

    def _pump(self, wave: List[ScheduledTrial]) -> None:
        """Make progress while the wave head's result is not ready yet."""
        if self._inline is not None:
            leased = self._inline.queue.lease(
                self._inline.worker_id,
                ttl_s=self.lease_ttl_s,
                session_id=self.session_id,
            )
            if leased is not None:
                self._inline.run_leased(leased)
                return
        else:
            self.meters.counter("workers.respawned").inc(
                self._pool.ensure_alive() if self._pool else 0
            )
        self.meters.counter("leases.reclaimed").inc(
            self.queue.reclaim_expired()
        )
        depths = self.queue.depths(self.session_id)
        self.meters.gauge("queue.queued").set(depths["queued"])
        self.meters.meter("queue.depth").record(
            depths["queued"] + depths["leased"]
        )
        time.sleep(self.poll_interval_s)

    # -- checkpoints / summaries ---------------------------------------------
    def _checkpoint(
        self,
        server: ModelTuningServer,
        state: RunState,
        wave: List[ScheduledTrial],
    ) -> None:
        self.sessions.save_checkpoint(
            self.session_id, server.snapshot_run(state, wave)
        )
        self.meters.counter("checkpoints.written").inc()

    def _summarize(
        self, server: ModelTuningServer, result: TuningRunResult
    ) -> Dict[str, Any]:
        """JSON-safe result summary stored on the session row."""
        inference: Optional[Dict[str, Any]] = None
        if result.inference is not None:
            rec = result.inference
            inference = {
                "configuration": {
                    name: _plain(value)
                    for name, value in rec.configuration.items()
                },
                "device": rec.device,
                "objective": rec.objective,
                "tuning_runtime_s": float(rec.tuning_runtime_s),
                "tuning_energy_j": float(rec.tuning_energy_j),
                "cache_hit": bool(rec.cache_hit),
                "measurement": {
                    "batch_latency_s": rec.measurement.batch_latency_s,
                    "throughput_sps": rec.measurement.throughput_sps,
                    "energy_per_sample_j":
                        rec.measurement.energy_per_sample_j,
                    "power_w": rec.measurement.power_w,
                    "batch_size": rec.measurement.batch_size,
                    "cores": rec.measurement.cores,
                },
            }
        plan = faults.get_plan()
        if plan is not None:
            self.meters.counter("faults.injected").inc(plan.fired_total())
        artifact_cache: Optional[Dict[str, int]] = None
        if getattr(server, "artifacts", None) is not None:
            artifact_cache = server.artifacts.stats()
            self.meters.gauge("artifacts.entries").set(
                artifact_cache["entries"]
            )
            self.meters.gauge("artifacts.bytes").set(artifact_cache["bytes"])
            self.meters.gauge("artifacts.hits").set(artifact_cache["hits"])
        return {
            "system": result.system,
            "workload": result.workload_id,
            "num_trials": len(result.trials),
            "failed_trials": sum(
                1 for record in result.trials
                if getattr(record, "failure", None) is not None
            ),
            "dead_letter": self.queue.dead_letter_count(self.session_id),
            "best_accuracy": float(result.best_accuracy),
            "best_score": float(result.best_score),
            "best_configuration": {
                name: _plain(value)
                for name, value in result.best_configuration.items()
            },
            "tuning_runtime_s": float(result.tuning_runtime_s),
            "tuning_energy_j": float(result.tuning_energy_j),
            "stall_s": float(result.stall_s),
            "workers": self.workers,
            "warm_started_trials": int(server.warm_started_trials),
            "reuse_checkpoints": bool(
                getattr(server, "reuse_checkpoints", False)
            ),
            "artifact_cache": artifact_cache,
            "decision_log": self._decision_log,
            "inference": inference,
            "meters": self.meters.snapshot(),
            "worker_stats": self.queue.worker_stats(self.session_id),
        }


def serve(
    database: TrialDatabase,
    workers: int = 0,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_interval_s: float = COORDINATOR_POLL_S,
    drain: bool = False,
    idle_timeout_s: Optional[float] = None,
    trial_timeout_s: Optional[float] = None,
    heartbeat_interval_s: Optional[float] = None,
    trial_batch: Optional[int] = None,
) -> List[TuningRunResult]:
    """Claim and run queued sessions until stopped.

    ``drain=True`` returns once no queued session remains (the mode used
    by ``service workers --drain`` and the tests); otherwise the loop
    idles waiting for new submissions until ``idle_timeout_s`` (if any)
    elapses.  A session failure is recorded on its row and does not take
    the service down.
    """
    sessions = SessionStore(database)
    pool: Optional[WorkerPool] = None
    if workers > 0:
        pool = WorkerPool(
            database.path, workers, lease_ttl_s=lease_ttl_s,
            trial_timeout_s=trial_timeout_s,
            heartbeat_interval_s=heartbeat_interval_s,
            trial_batch=trial_batch,
        ).start()
    results: List[TuningRunResult] = []
    idle_since = time.time()
    try:
        while True:
            record = sessions.claim_next_queued()
            if record is None:
                if drain:
                    break
                if (
                    idle_timeout_s is not None
                    and time.time() - idle_since > idle_timeout_s
                ):
                    break
                time.sleep(poll_interval_s)
                continue
            coordinator = SessionCoordinator(
                database,
                record.id,
                workers=workers,
                lease_ttl_s=lease_ttl_s,
                poll_interval_s=poll_interval_s,
                pool=pool,
                trial_timeout_s=trial_timeout_s,
                heartbeat_interval_s=heartbeat_interval_s,
                trial_batch=trial_batch,
            )
            try:
                results.append(coordinator.run())
            except ServiceError:
                pass  # recorded on the session row by the coordinator
            idle_since = time.time()
    finally:
        if pool is not None:
            pool.stop()
    return results
