"""Trial deadline enforcement.

A hung trial (infinite loop, injected ``worker.hang``, pathological
configuration) would otherwise pin its worker forever: the heartbeat
thread keeps renewing the lease, so the job never gets reclaimed and the
wave never drains.  :func:`run_with_deadline` bounds a trial's wall-clock
time and turns an overrun into a structured :class:`TrialTimeoutError`
that the worker reports through the normal ``fail`` path — the job is
retried (or dead-lettered) like any other failure.

The overrun trial's thread is a daemon and cannot be force-killed from
Python; it is *abandoned*, not stopped.  That is acceptable here because
trials are CPU-bound numpy work with no external side effects — the
abandoned thread finishes (or spins) in the background and its result is
discarded, while the worker process moves on to the next job.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..errors import TrialTimeoutError


def run_with_deadline(
    fn: Callable[[], Any], timeout_s: float, name: str = "trial"
) -> Any:
    """Run ``fn()`` with a wall-clock deadline.

    Returns ``fn``'s result, re-raises its exception, or raises
    :class:`TrialTimeoutError` when it does not finish in ``timeout_s``
    seconds.
    """
    box: dict = {}

    def target() -> None:
        try:
            box["value"] = fn()
        except BaseException as error:  # noqa: BLE001 — re-raised below
            box["error"] = error

    thread = threading.Thread(
        target=target, name=f"deadline-{name}", daemon=True
    )
    thread.start()
    thread.join(timeout=timeout_s)
    if thread.is_alive():
        raise TrialTimeoutError(
            f"{name} exceeded its {timeout_s:.1f}s deadline; abandoning it"
        )
    if "error" in box:
        raise box["error"]
    return box["value"]
