"""The parallel worker pool: N OS processes pulling from one queue.

``multiprocessing.Process`` rather than a thread pool because the trial
workload is pure-numpy compute — real parallel speed-up needs separate
interpreters.  The pool is supervision-light by design: workers share
nothing with the parent but the database path, crashes are tolerated (the
queue reclaims their leases), and :meth:`WorkerPool.ensure_alive` simply
respawns replacements.
"""

from __future__ import annotations

import logging
import multiprocessing
from typing import List, Optional

from .queue import DEFAULT_LEASE_TTL_S
from .worker import IDLE_POLL_S, worker_main

logger = logging.getLogger(__name__)


class WorkerPool:
    """Spawns and supervises trial-evaluation worker processes."""

    def __init__(
        self,
        db_path: str,
        workers: int,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        poll_interval_s: float = IDLE_POLL_S,
        name_prefix: str = "worker",
        trial_timeout_s: Optional[float] = None,
        heartbeat_interval_s: Optional[float] = None,
        trial_batch: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError(f"worker pool needs >= 1 workers, got {workers}")
        self.db_path = db_path
        self.workers = workers
        self.lease_ttl_s = lease_ttl_s
        self.poll_interval_s = poll_interval_s
        self.name_prefix = name_prefix
        self.trial_timeout_s = trial_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.trial_batch = trial_batch
        self._spawned = 0
        self._processes: List[multiprocessing.Process] = []

    # -- lifecycle ----------------------------------------------------------
    def _spawn_one(self) -> multiprocessing.Process:
        self._spawned += 1
        worker_id = f"{self.name_prefix}-{self._spawned}"
        process = multiprocessing.Process(
            target=worker_main,
            args=(self.db_path, worker_id),
            kwargs={
                "lease_ttl_s": self.lease_ttl_s,
                "poll_interval_s": self.poll_interval_s,
                "trial_timeout_s": self.trial_timeout_s,
                "heartbeat_interval_s": self.heartbeat_interval_s,
                "trial_batch": self.trial_batch,
            },
            name=worker_id,
            daemon=True,
        )
        process.start()
        return process

    def start(self) -> "WorkerPool":
        while len(self._processes) < self.workers:
            self._processes.append(self._spawn_one())
        return self

    def ensure_alive(self) -> int:
        """Replace dead workers; returns how many were respawned."""
        respawned = 0
        for index, process in enumerate(self._processes):
            if not process.is_alive():
                self._processes[index] = self._spawn_one()
                respawned += 1
        return respawned

    def alive(self) -> int:
        return sum(1 for p in self._processes if p.is_alive())

    def stop(self, timeout_s: float = 5.0) -> None:
        """Terminate all workers (leases they held will be reclaimed).

        Idempotent: the process list is detached up front, so a second
        ``stop`` (coordinator teardown racing ``__exit__``, for example)
        is a no-op — and an exception mid-shutdown can never terminate
        the same process twice.

        Escalates SIGTERM -> SIGKILL; a process that survives even the
        kill (unkillable D-state) is logged and abandoned rather than
        blocking shutdown forever — its lease expires and the job is
        retried elsewhere.
        """
        processes, self._processes = self._processes, []
        if not processes:
            return
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=timeout_s)
            if process.is_alive():
                process.kill()
                process.join(timeout=timeout_s)
            if process.is_alive():
                logger.warning(
                    "worker %s (pid %s) survived SIGKILL; abandoning it",
                    process.name, process.pid,
                )

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def pids(self) -> List[Optional[int]]:
        return [p.pid for p in self._processes]
