"""The persistent trial-evaluation job queue (``jobs`` table).

Ownership protocol:

* a worker **leases** the oldest runnable queued job inside a single
  ``BEGIN IMMEDIATE`` transaction — at most one worker can win a job;
* while executing, the worker **heartbeats** to extend its lease; a worker
  that dies (``kill -9``, OOM) simply stops heartbeating;
* anyone (coordinator or other workers) may **reclaim** expired leases:
  the job returns to ``queued`` with exponentially backed-off
  ``next_retry_at``, or moves to ``failed`` once ``max_attempts`` is
  spent;
* **complete**/**fail** only succeed while the lease is still held, so a
  reclaimed-and-reassigned job cannot be double-completed by a zombie.

All timestamps are wall-clock seconds (``time.time()``) so they stay
comparable across processes; determinism of *results* is unaffected
because job execution itself is seed-driven.  The janitor's expiry
*judgement*, however, is hardened against wall-clock steps (NTP
step/regression) with a monotonic-clock cross-check — see
:meth:`JobQueue._janitor_now`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..storage import TrialDatabase

#: Job lifecycle states.
QUEUED = "queued"
LEASED = "leased"
DONE = "done"
FAILED = "failed"

JOB_STATES = (QUEUED, LEASED, DONE, FAILED)


def _env_float(name: str, default: float) -> float:
    """A float from the environment, falling back on garbage values (a
    misconfigured deployment should degrade to defaults, not crash)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


#: Default lease duration; heartbeats renew it well before expiry.
#: Overridable per deployment via ``$REPRO_LEASE_TTL_S`` (and per run via
#: the ``--lease-ttl`` CLI flags).
DEFAULT_LEASE_TTL_S = _env_float("REPRO_LEASE_TTL_S", 10.0)

#: Divergence between the wall clock and the monotonic extrapolation
#: beyond which the janitor treats ``time.time()`` as having stepped
#: (NTP slew stays far below this; only a step/regression trips it).
CLOCK_SKEW_TOLERANCE_S = 2.0

#: After detecting a step, how long the janitor keeps judging expiry on
#: the pre-step (monotonic) timeline before adopting the new wall clock.
#: One grace window is enough for every live worker to re-stamp its
#: lease (heartbeats run at a quarter TTL) under the stepped clock.
SKEW_GRACE_S = 2.0 * DEFAULT_LEASE_TTL_S

#: Clock sources, module-level so the skew tests can substitute both
#: coherently (patching ``time.time`` itself would leak into sqlite
#: timestamps and every other subsystem).
_wall_clock = time.time
_mono_clock = time.monotonic

#: Retry backoff: ``base * 2**(attempt-1)`` capped at ``cap`` seconds.
BACKOFF_BASE_S = 0.25
BACKOFF_CAP_S = 30.0

DEFAULT_MAX_ATTEMPTS = 3

#: Per-attempt error text cap inside ``error_history`` (full text of the
#: *last* error still lives in ``jobs.error``).
_HISTORY_ERROR_CHARS = 2000

#: ``error_history`` keeps only the most recent attempts: a hot-looping
#: poison job (operator keeps ``deadletter retry``-ing it, or a huge
#: ``max_attempts``) must not grow its row without bound.
MAX_HISTORY_ENTRIES = 20

_JOB_COLUMNS = (
    "id, session_id, trial_id, payload, state, attempts, max_attempts, "
    "lease_owner, lease_expires_at, next_retry_at, result, error, "
    "created_at, started_at, finished_at, error_history, shard, "
    "lease_epoch"
)


@dataclass
class Job:
    """One row of the ``jobs`` table."""

    id: int
    session_id: str
    trial_id: int
    payload: str
    state: str
    attempts: int
    max_attempts: int
    lease_owner: Optional[str]
    lease_expires_at: Optional[float]
    next_retry_at: float
    result: Optional[bytes]
    error: Optional[str]
    created_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    #: JSON list of ``{"attempt", "error", "at"}`` — one entry per failed
    #: attempt, in order, capped to the most recent
    #: :data:`MAX_HISTORY_ENTRIES`.
    error_history: str = "[]"
    #: Fleet shard the job is routed to (0 for single-host sessions).
    shard: int = 0
    #: Hub incarnation epoch that granted the current lease (0 for local
    #: pool leases — fencing applies only to fleet dispatch).
    lease_epoch: int = 0

    @classmethod
    def from_row(cls, row: tuple) -> "Job":
        return cls(*row)

    def history(self) -> List[Dict[str, Any]]:
        return json.loads(self.error_history or "[]")


@dataclass
class DeadLetter:
    """One quarantined (poison) job: exhausted every retry."""

    id: int
    session_id: str
    trial_id: int
    payload: str
    attempts: int
    error: Optional[str]
    error_history: List[Dict[str, Any]] = field(default_factory=list)
    created_at: float = 0.0
    quarantined_at: float = 0.0


def _appended_history(raw: Optional[str], attempt: int, error: str,
                      now: float) -> str:
    history = json.loads(raw or "[]")
    history.append({
        "attempt": int(attempt),
        "error": str(error)[:_HISTORY_ERROR_CHARS],
        "at": float(now),
    })
    return json.dumps(history[-MAX_HISTORY_ENTRIES:])


def backoff_delay(attempt: int, base: float = BACKOFF_BASE_S,
                  cap: float = BACKOFF_CAP_S) -> float:
    """Capped exponential backoff before retry ``attempt`` re-runs."""
    return min(cap, base * (2.0 ** max(0, attempt - 1)))


class JobQueue:
    """Persistent, crash-safe job queue over a :class:`TrialDatabase`."""

    def __init__(self, database: TrialDatabase):
        self.database = database
        # Wall/monotonic anchor pair for the janitor's skew detector:
        # lease stamps must stay wall-clock (comparable across
        # processes), but expiry *judgement* must survive a clock step.
        self._wall_anchor = _wall_clock()
        self._mono_anchor = _mono_clock()
        self._skew_grace_until: Optional[float] = None

    # -- producer side ------------------------------------------------------
    def enqueue(
        self,
        session_id: str,
        trial_id: int,
        payload: str,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        now: Optional[float] = None,
        shard: int = 0,
    ) -> bool:
        """Queue one trial-evaluation job.

        Idempotent per ``(session_id, trial_id)``: re-enqueueing after a
        coordinator crash leaves finished jobs (and their results) alone.
        Returns ``True`` when a new row was inserted.  ``shard`` routes
        the job to one of the fleet's per-shard queues (0, the default,
        is also where single-host sessions live).
        """
        cursor = self.database.execute(
            "INSERT OR IGNORE INTO jobs (session_id, trial_id, payload, "
            "state, max_attempts, created_at, shard) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                session_id,
                int(trial_id),
                payload,
                QUEUED,
                int(max_attempts),
                time.time() if now is None else now,
                int(shard),
            ),
        )
        return cursor.rowcount > 0

    # -- worker side ---------------------------------------------------------
    def lease(
        self,
        worker_id: str,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        session_id: Optional[str] = None,
        now: Optional[float] = None,
        shard: Optional[int] = None,
        epoch: int = 0,
    ) -> Optional[Job]:
        """Atomically claim the oldest runnable queued job, if any.

        ``shard`` restricts the claim to one per-shard queue (fleet
        machines only serve their own shard); ``None`` leases across all
        shards (local pool workers).  ``epoch`` stamps the lease with the
        granting hub's incarnation (0 for local pool leases).
        """
        now = time.time() if now is None else now
        with self.database.transaction() as connection:
            query = (
                f"SELECT {_JOB_COLUMNS} FROM jobs "
                "WHERE state = ? AND next_retry_at <= ?"
            )
            args: List[Any] = [QUEUED, now]
            if session_id is not None:
                query += " AND session_id = ?"
                args.append(session_id)
            if shard is not None:
                query += " AND shard = ?"
                args.append(int(shard))
            query += " ORDER BY id LIMIT 1"
            row = connection.execute(query, tuple(args)).fetchone()
            if row is None:
                return None
            job = Job.from_row(row)
            connection.execute(
                "UPDATE jobs SET state = ?, lease_owner = ?, "
                "lease_expires_at = ?, attempts = attempts + 1, "
                "started_at = ?, lease_epoch = ? "
                "WHERE id = ? AND state = ?",
                (LEASED, worker_id, now + ttl_s, now, int(epoch),
                 job.id, QUEUED),
            )
        job.state = LEASED
        job.lease_owner = worker_id
        job.lease_expires_at = now + ttl_s
        job.attempts += 1
        job.started_at = now
        job.lease_epoch = int(epoch)
        return job

    def peek_queued(
        self,
        session_id: Optional[str] = None,
        shard: Optional[int] = None,
        limit: int = 16,
        now: Optional[float] = None,
    ) -> List[Job]:
        """Snapshot the oldest runnable queued jobs without claiming them.

        The batched-trial worker uses this to find stackable groupmates
        for a job it already holds; each candidate is then claimed
        individually via :meth:`lease_by_id` (which re-checks state, so a
        stale snapshot only costs a missed groupmate, never a double
        claim).
        """
        now = time.time() if now is None else now
        query = (
            f"SELECT {_JOB_COLUMNS} FROM jobs "
            "WHERE state = ? AND next_retry_at <= ?"
        )
        args: List[Any] = [QUEUED, now]
        if session_id is not None:
            query += " AND session_id = ?"
            args.append(session_id)
        if shard is not None:
            query += " AND shard = ?"
            args.append(int(shard))
        query += " ORDER BY id LIMIT ?"
        args.append(int(limit))
        rows = self.database.execute(query, tuple(args)).fetchall()
        return [Job.from_row(row) for row in rows]

    def lease_by_id(
        self,
        job_id: int,
        worker_id: str,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        now: Optional[float] = None,
        epoch: int = 0,
        fresh_only: bool = False,
    ) -> Optional[Job]:
        """Atomically claim one specific queued job (group formation).

        Returns ``None`` when the job is no longer runnable — already
        leased by a sibling, finished, or backed off.  ``fresh_only``
        additionally refuses jobs that have been attempted before, which
        keeps retries out of batch groups (a retried member must run
        serially so its fault-injection and dead-letter accounting follow
        the pinned serial semantics).
        """
        now = time.time() if now is None else now
        with self.database.transaction() as connection:
            row = connection.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs "
                "WHERE id = ? AND state = ? AND next_retry_at <= ?",
                (int(job_id), QUEUED, now),
            ).fetchone()
            if row is None:
                return None
            job = Job.from_row(row)
            if fresh_only and job.attempts != 0:
                return None
            connection.execute(
                "UPDATE jobs SET state = ?, lease_owner = ?, "
                "lease_expires_at = ?, attempts = attempts + 1, "
                "started_at = ?, lease_epoch = ? "
                "WHERE id = ? AND state = ?",
                (LEASED, worker_id, now + ttl_s, now, int(epoch),
                 job.id, QUEUED),
            )
        job.state = LEASED
        job.lease_owner = worker_id
        job.lease_expires_at = now + ttl_s
        job.attempts += 1
        job.started_at = now
        job.lease_epoch = int(epoch)
        return job

    def heartbeat(
        self,
        job_id: int,
        worker_id: str,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        now: Optional[float] = None,
    ) -> bool:
        """Extend a held lease; ``False`` means the lease was lost."""
        now = time.time() if now is None else now
        cursor = self.database.execute(
            "UPDATE jobs SET lease_expires_at = ? "
            "WHERE id = ? AND lease_owner = ? AND state = ?",
            (now + ttl_s, int(job_id), worker_id, LEASED),
        )
        return cursor.rowcount > 0

    def complete(
        self,
        job_id: int,
        worker_id: str,
        result: bytes,
        now: Optional[float] = None,
    ) -> bool:
        """Mark a leased job done with its result blob.

        Rejected (returns ``False``) when the lease has been reclaimed —
        the retry's result wins and the zombie's is discarded.
        ``lease_owner`` is kept as the record of who finished the job
        (feeds the per-worker meters).
        """
        now = time.time() if now is None else now
        cursor = self.database.execute(
            "UPDATE jobs SET state = ?, result = ?, finished_at = ?, "
            "lease_expires_at = NULL, error = NULL "
            "WHERE id = ? AND lease_owner = ? AND state = ?",
            (DONE, result, now, int(job_id), worker_id, LEASED),
        )
        return cursor.rowcount > 0

    def is_done_by(self, job_id: int, worker_id: str) -> bool:
        """Whether ``worker_id``'s completion of this job already landed.

        The idempotent-replay check: a worker that sent ``complete`` just
        as the hub crashed cannot know whether the write committed, so it
        resends after reconnecting.  If the job is already ``done`` with
        this worker on record, the replay is a duplicate of its *own*
        accepted result — safe to acknowledge without writing (first
        write wins; result blobs are deterministic anyway).
        """
        row = self.database.execute(
            "SELECT 1 FROM jobs WHERE id = ? AND lease_owner = ? "
            "AND state = ?",
            (int(job_id), worker_id, DONE),
        ).fetchone()
        return row is not None

    def resync_leases(
        self,
        worker_ids: Dict[int, str],
        epoch: int,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
        now: Optional[float] = None,
    ) -> List[int]:
        """Re-adopt held leases under a new hub incarnation epoch.

        ``worker_ids`` maps job id → the owner claiming it.  Each job
        still leased to that owner gets its expiry renewed and its
        ``lease_epoch`` bumped to the new incarnation; jobs that were
        reclaimed in the meantime are simply absent from the returned
        list and the host must drop them (their retry now owns the
        outcome).
        """
        now = time.time() if now is None else now
        renewed: List[int] = []
        with self.database.transaction() as connection:
            for job_id, owner in sorted(worker_ids.items()):
                cursor = connection.execute(
                    "UPDATE jobs SET lease_expires_at = ?, "
                    "lease_epoch = ? "
                    "WHERE id = ? AND lease_owner = ? AND state = ?",
                    (now + ttl_s, int(epoch), int(job_id), owner, LEASED),
                )
                if cursor.rowcount > 0:
                    renewed.append(int(job_id))
        return renewed

    def fail(
        self,
        job_id: int,
        worker_id: str,
        error: str,
        now: Optional[float] = None,
    ) -> bool:
        """Record a job failure: requeue with backoff or quarantine.

        A no-op (returns ``False``) when the lease was reclaimed *or has
        already expired* — in both cases the reclaim path owns the job's
        fate and a zombie worker's verdict must not race it.  Terminal
        failures land the job in ``failed`` and copy it — with its full
        per-attempt error history — into the ``dead_letter`` quarantine.
        """
        now = time.time() if now is None else now
        with self.database.transaction() as connection:
            row = connection.execute(
                "SELECT attempts, max_attempts, lease_expires_at, "
                "error_history FROM jobs "
                "WHERE id = ? AND lease_owner = ? AND state = ?",
                (int(job_id), worker_id, LEASED),
            ).fetchone()
            if row is None:
                return False
            attempts, max_attempts, lease_expires_at, raw_history = row
            if lease_expires_at is not None and lease_expires_at < now:
                return False
            history = _appended_history(raw_history, attempts, error, now)
            if attempts >= max_attempts:
                connection.execute(
                    "UPDATE jobs SET state = ?, error = ?, finished_at = ?, "
                    "lease_owner = NULL, lease_expires_at = NULL, "
                    "error_history = ? WHERE id = ?",
                    (FAILED, error, now, history, int(job_id)),
                )
                self._quarantine(connection, int(job_id), now)
            else:
                connection.execute(
                    "UPDATE jobs SET state = ?, error = ?, "
                    "lease_owner = NULL, lease_expires_at = NULL, "
                    "next_retry_at = ?, error_history = ? WHERE id = ?",
                    (QUEUED, error, now + backoff_delay(attempts),
                     history, int(job_id)),
                )
        return True

    @staticmethod
    def _quarantine(connection, job_id: int, now: float) -> None:
        """Copy a terminally-failed job into ``dead_letter`` (idempotent:
        the UNIQUE key makes a job quarantine exactly once)."""
        connection.execute(
            "INSERT OR IGNORE INTO dead_letter (session_id, trial_id, "
            "payload, attempts, error, error_history, created_at, "
            "quarantined_at) "
            "SELECT session_id, trial_id, payload, attempts, error, "
            "error_history, created_at, ? FROM jobs WHERE id = ?",
            (now, int(job_id)),
        )

    # -- janitor side --------------------------------------------------------
    def _janitor_now(self) -> float:
        """Wall-clock "now" for lease-expiry checks, hardened against
        clock steps.

        Lease stamps use ``time.time()`` — a forward NTP step would make
        every healthy lease look expired (the janitor would mass-reclaim
        live workers' jobs) and a backward step would keep a dead
        worker's lease alive for the step duration.  The janitor
        therefore extrapolates "now" from the monotonic clock anchored
        at queue construction; while the wall clock agrees with that
        extrapolation it is used directly, and when they diverge past
        :data:`CLOCK_SKEW_TOLERANCE_S` the pre-step timeline is held for
        :data:`SKEW_GRACE_S` — long enough for live workers to
        re-stamp their leases under the stepped clock — before the new
        wall clock is adopted as the anchor.

        Known (safe-direction) limitation: a lease stamped *after* a
        forward step is judged late by up to the step size during the
        grace window, delaying — never hastening — its reclaim.
        """
        wall = _wall_clock()
        mono = _mono_clock()
        steady = self._wall_anchor + (mono - self._mono_anchor)
        if abs(wall - steady) > CLOCK_SKEW_TOLERANCE_S:
            if self._skew_grace_until is None:
                self._skew_grace_until = mono + SKEW_GRACE_S
            if mono < self._skew_grace_until:
                return steady
            self._wall_anchor = wall
            self._mono_anchor = mono
            self._skew_grace_until = None
            return wall
        # Clocks agree again (step reverted, or grace adopted it): track
        # the wall clock so slow monotonic-vs-NTP drift never
        # accumulates into a false skew detection.
        self._wall_anchor = wall
        self._mono_anchor = mono
        self._skew_grace_until = None
        return wall

    def reclaim_expired(self, now: Optional[float] = None) -> int:
        """Requeue (or terminally fail) jobs whose lease ran out.

        This is how a ``kill -9``'d worker's in-flight trials get retried:
        its leases stop being renewed and any surviving process reclaims
        them here.  The real-time path judges expiry via
        :meth:`_janitor_now` (clock-step hardened); an explicit ``now``
        bypasses the skew detector — it is the simulated-time hook the
        tests and operators use deliberately.
        """
        now = self._janitor_now() if now is None else now
        with self.database.transaction() as connection:
            rows = connection.execute(
                "SELECT id, attempts, max_attempts, lease_owner, "
                "error_history FROM jobs "
                "WHERE state = ? AND lease_expires_at < ?",
                (LEASED, now),
            ).fetchall()
            return self._release_rows(
                connection, rows, now,
                lambda owner, attempts:
                    f"lease expired (owner {owner!r}, attempt {attempts})",
            )

    def reclaim_owner(
        self, owner: str, now: Optional[float] = None
    ) -> int:
        """Immediately release every lease held by ``owner`` (or by one
        of its workers, ``owner/<name>``).

        The fleet janitor's dead-host drain: when a machine stops
        heartbeating, its orphaned jobs go back to the queue right away
        instead of idling until each lease times out on its own.
        """
        now = time.time() if now is None else now
        with self.database.transaction() as connection:
            rows = connection.execute(
                "SELECT id, attempts, max_attempts, lease_owner, "
                "error_history FROM jobs "
                "WHERE state = ? AND (lease_owner = ? "
                "OR lease_owner LIKE ? || '/%')",
                (LEASED, owner, owner),
            ).fetchall()
            return self._release_rows(
                connection, rows, now,
                lambda who, attempts:
                    f"host declared dead (owner {who!r}, "
                    f"attempt {attempts})",
            )

    def _release_rows(self, connection, rows, now, describe) -> int:
        """Requeue-or-quarantine the given leased rows (shared by the
        expiry and dead-host reclaim paths)."""
        for job_id, attempts, max_attempts, owner, raw_history in rows:
            error = describe(owner, attempts)
            history = _appended_history(raw_history, attempts, error, now)
            if attempts >= max_attempts:
                connection.execute(
                    "UPDATE jobs SET state = ?, error = ?, "
                    "finished_at = ?, lease_owner = NULL, "
                    "lease_expires_at = NULL, error_history = ? "
                    "WHERE id = ?",
                    (FAILED, error, now, history, job_id),
                )
                self._quarantine(connection, int(job_id), now)
            else:
                connection.execute(
                    "UPDATE jobs SET state = ?, error = ?, "
                    "lease_owner = NULL, lease_expires_at = NULL, "
                    "next_retry_at = ?, error_history = ? WHERE id = ?",
                    (QUEUED, error, now + backoff_delay(attempts),
                     history, job_id),
                )
        return len(rows)

    def delete_for_sessions(self, session_ids: Iterable[str]) -> int:
        """Drop all jobs belonging to the given sessions (``service gc``)."""
        deleted = 0
        for session_id in session_ids:
            cursor = self.database.execute(
                "DELETE FROM jobs WHERE session_id = ?", (session_id,)
            )
            deleted += cursor.rowcount
        return deleted

    # -- introspection -------------------------------------------------------
    def depths(self, session_id: Optional[str] = None) -> Dict[str, int]:
        """Queue depth per state (zero-filled for absent states)."""
        query = "SELECT state, COUNT(*) FROM jobs"
        args: tuple = ()
        if session_id is not None:
            query += " WHERE session_id = ?"
            args = (session_id,)
        query += " GROUP BY state"
        rows = self.database.execute(query, args).fetchall()
        depths = {state: 0 for state in JOB_STATES}
        depths.update({state: int(count) for state, count in rows})
        return depths

    def get(self, session_id: str, trial_id: int) -> Optional[Job]:
        row = self.database.execute(
            f"SELECT {_JOB_COLUMNS} FROM jobs "
            "WHERE session_id = ? AND trial_id = ?",
            (session_id, int(trial_id)),
        ).fetchone()
        return None if row is None else Job.from_row(row)

    def jobs_for(self, session_id: str, state: Optional[str] = None) -> List[Job]:
        query = f"SELECT {_JOB_COLUMNS} FROM jobs WHERE session_id = ?"
        args: List[Any] = [session_id]
        if state is not None:
            query += " AND state = ?"
            args.append(state)
        query += " ORDER BY trial_id"
        rows = self.database.execute(query, tuple(args)).fetchall()
        return [Job.from_row(row) for row in rows]

    def results_for(
        self, session_id: str, trial_ids: Iterable[int]
    ) -> Dict[int, bytes]:
        """Result blobs of the finished jobs among ``trial_ids``."""
        wanted = [int(t) for t in trial_ids]
        if not wanted:
            return {}
        marks = ",".join("?" for _ in wanted)
        rows = self.database.execute(
            "SELECT trial_id, result FROM jobs "
            f"WHERE session_id = ? AND state = ? AND trial_id IN ({marks})",
            tuple([session_id, DONE] + wanted),
        ).fetchall()
        return {int(trial_id): result for trial_id, result in rows}

    def worker_stats(self, session_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Per-worker completion counts and busy time (done jobs only);
        completed jobs keep ``lease_owner`` as the finisher's name."""
        query = (
            "SELECT COALESCE(lease_owner, 'unknown') AS worker, COUNT(*), "
            "SUM(finished_at - started_at) FROM jobs WHERE state = ?"
        )
        args: List[Any] = [DONE]
        if session_id is not None:
            query += " AND session_id = ?"
            args.append(session_id)
        query += " GROUP BY worker ORDER BY worker"
        rows = self.database.execute(query, tuple(args)).fetchall()
        return [
            {
                "worker": row[0],
                "jobs_done": int(row[1]),
                "busy_s": float(row[2] or 0.0),
            }
            for row in rows
        ]

    # -- dead-letter quarantine ----------------------------------------------
    def dead_letters(
        self, session_id: Optional[str] = None
    ) -> List[DeadLetter]:
        """Quarantined jobs, oldest first."""
        query = (
            "SELECT id, session_id, trial_id, payload, attempts, error, "
            "error_history, created_at, quarantined_at FROM dead_letter"
        )
        args: tuple = ()
        if session_id is not None:
            query += " WHERE session_id = ?"
            args = (session_id,)
        query += " ORDER BY id"
        rows = self.database.execute(query, args).fetchall()
        return [
            DeadLetter(
                id=int(row[0]),
                session_id=row[1],
                trial_id=int(row[2]),
                payload=row[3],
                attempts=int(row[4]),
                error=row[5],
                error_history=json.loads(row[6] or "[]"),
                created_at=float(row[7]),
                quarantined_at=float(row[8]),
            )
            for row in rows
        ]

    def dead_letter_count(self, session_id: Optional[str] = None) -> int:
        query = "SELECT COUNT(*) FROM dead_letter"
        args: tuple = ()
        if session_id is not None:
            query += " WHERE session_id = ?"
            args = (session_id,)
        (count,) = self.database.execute(query, args).fetchone()
        return int(count)

    def retry_dead(
        self,
        session_id: str,
        trial_id: Optional[int] = None,
        now: Optional[float] = None,
    ) -> int:
        """Release quarantined jobs back to the queue with a clean slate.

        Resets attempts and error history so the job gets its full retry
        budget again (the operator presumably fixed the underlying cause).
        Returns the number of jobs released.
        """
        now = time.time() if now is None else now
        with self.database.transaction() as connection:
            query = "SELECT trial_id FROM dead_letter WHERE session_id = ?"
            args: List[Any] = [session_id]
            if trial_id is not None:
                query += " AND trial_id = ?"
                args.append(int(trial_id))
            trials = [row[0] for row in
                      connection.execute(query, tuple(args)).fetchall()]
            for trial in trials:
                connection.execute(
                    "UPDATE jobs SET state = ?, attempts = 0, error = NULL, "
                    "error_history = '[]', next_retry_at = 0, "
                    "lease_owner = NULL, lease_expires_at = NULL, "
                    "result = NULL, started_at = NULL, finished_at = NULL "
                    "WHERE session_id = ? AND trial_id = ?",
                    (QUEUED, session_id, int(trial)),
                )
                connection.execute(
                    "DELETE FROM dead_letter "
                    "WHERE session_id = ? AND trial_id = ?",
                    (session_id, int(trial)),
                )
        return len(trials)

    def purge_dead(self, session_id: Optional[str] = None) -> int:
        """Drop quarantine rows (the failed ``jobs`` rows stay)."""
        query = "DELETE FROM dead_letter"
        args: tuple = ()
        if session_id is not None:
            query += " WHERE session_id = ?"
            args = (session_id,)
        cursor = self.database.execute(query, args)
        return cursor.rowcount

    def last_error(self, session_id: str) -> Optional[str]:
        """Most recent job error recorded for a session, if any.

        Reads ``error_history`` rather than ``jobs.error`` because a
        successful retry clears the latter — the history is the durable
        record of what went wrong along the way.
        """
        rows = self.database.execute(
            "SELECT error, error_history FROM jobs WHERE session_id = ?",
            (session_id,),
        ).fetchall()
        latest_at = float("-inf")
        latest: Optional[str] = None
        for error, raw_history in rows:
            history = json.loads(raw_history or "[]")
            if history and history[-1]["at"] > latest_at:
                latest_at = history[-1]["at"]
                latest = history[-1]["error"]
            elif latest is None and error:
                latest = error  # pre-v5 rows carry only ``error``
        return latest
