"""Tuning-session records (``sessions`` table).

A session is one submitted tuning run: its :class:`SessionSpec`, a
lifecycle state (``queued → running → done | failed``), the result
summary, and — the crash-safety core — a checkpoint blob written after
every completed trial by the coordinator, from which a ``kill -9``'d
session resumes without re-running finished trials.
"""

from __future__ import annotations

import json
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import ServiceError
from ..storage import TrialDatabase
from .queue import JobQueue
from .spec import SessionSpec

#: Session lifecycle states.
S_QUEUED = "queued"
S_RUNNING = "running"
S_DONE = "done"
S_FAILED = "failed"

SESSION_STATES = (S_QUEUED, S_RUNNING, S_DONE, S_FAILED)


@dataclass
class SessionRecord:
    """One row of the ``sessions`` table."""

    id: str
    spec: SessionSpec
    state: str
    result: Optional[Dict[str, Any]]
    error: Optional[str]
    created_at: float
    updated_at: float
    has_checkpoint: bool


class SessionStore:
    """CRUD + lifecycle transitions for tuning sessions."""

    def __init__(self, database: TrialDatabase):
        self.database = database

    def create(
        self, spec: SessionSpec, session_id: Optional[str] = None
    ) -> str:
        """Insert a new queued session; returns its id."""
        session_id = session_id or uuid.uuid4().hex[:12]
        now = time.time()
        self.database.execute(
            "INSERT INTO sessions (id, spec, state, created_at, updated_at) "
            "VALUES (?, ?, ?, ?, ?)",
            (session_id, json.dumps(spec.to_dict(), sort_keys=True),
             S_QUEUED, now, now),
        )
        return session_id

    def get(self, session_id: str) -> SessionRecord:
        row = self.database.execute(
            "SELECT id, spec, state, result, error, created_at, updated_at, "
            "checkpoint IS NOT NULL FROM sessions WHERE id = ?",
            (session_id,),
        ).fetchone()
        if row is None:
            raise ServiceError(f"no session {session_id!r}")
        return SessionRecord(
            id=row[0],
            spec=SessionSpec.from_dict(json.loads(row[1])),
            state=row[2],
            result=json.loads(row[3]) if row[3] else None,
            error=row[4],
            created_at=row[5],
            updated_at=row[6],
            has_checkpoint=bool(row[7]),
        )

    def list(self, state: Optional[str] = None) -> List[SessionRecord]:
        query = (
            "SELECT id FROM sessions"
            + (" WHERE state = ?" if state else "")
            + " ORDER BY created_at"
        )
        rows = self.database.execute(
            query, (state,) if state else ()
        ).fetchall()
        return [self.get(row[0]) for row in rows]

    # -- lifecycle -----------------------------------------------------------
    def claim_next_queued(self) -> Optional[SessionRecord]:
        """Atomically move the oldest queued session to ``running``."""
        with self.database.transaction() as connection:
            row = connection.execute(
                "SELECT id FROM sessions WHERE state = ? "
                "ORDER BY created_at LIMIT 1",
                (S_QUEUED,),
            ).fetchone()
            if row is None:
                return None
            connection.execute(
                "UPDATE sessions SET state = ?, updated_at = ? WHERE id = ?",
                (S_RUNNING, time.time(), row[0]),
            )
            session_id = row[0]
        return self.get(session_id)

    def set_state(self, session_id: str, state: str) -> None:
        if state not in SESSION_STATES:
            raise ServiceError(f"unknown session state {state!r}")
        self.database.execute(
            "UPDATE sessions SET state = ?, updated_at = ? WHERE id = ?",
            (state, time.time(), session_id),
        )

    def finish(self, session_id: str, result: Dict[str, Any]) -> None:
        """Mark done with a JSON result summary; drops the checkpoint."""
        self.database.execute(
            "UPDATE sessions SET state = ?, result = ?, checkpoint = NULL, "
            "error = NULL, updated_at = ? WHERE id = ?",
            (S_DONE, json.dumps(result, sort_keys=True), time.time(),
             session_id),
        )

    def fail(self, session_id: str, error: str) -> None:
        self.database.execute(
            "UPDATE sessions SET state = ?, error = ?, updated_at = ? "
            "WHERE id = ?",
            (S_FAILED, error, time.time(), session_id),
        )

    # -- checkpoints ---------------------------------------------------------
    def save_checkpoint(self, session_id: str, blob: bytes) -> None:
        self.database.execute(
            "UPDATE sessions SET checkpoint = ?, updated_at = ? WHERE id = ?",
            (blob, time.time(), session_id),
        )

    def load_checkpoint(self, session_id: str) -> Optional[bytes]:
        row = self.database.execute(
            "SELECT checkpoint FROM sessions WHERE id = ?", (session_id,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"no session {session_id!r}")
        return row[0]

    # -- garbage collection ----------------------------------------------------
    def gc(self, max_age_s: float = 7 * 24 * 3600.0,
           now: Optional[float] = None) -> Dict[str, int]:
        """Purge finished sessions older than ``max_age_s`` (and their
        jobs), and reclaim expired job leases.  Returns counters."""
        now = time.time() if now is None else now
        cutoff = now - max_age_s
        stale = [
            row[0]
            for row in self.database.execute(
                "SELECT id FROM sessions WHERE state IN (?, ?) "
                "AND updated_at < ?",
                (S_DONE, S_FAILED, cutoff),
            ).fetchall()
        ]
        queue = JobQueue(self.database)
        jobs_deleted = queue.delete_for_sessions(stale)
        for session_id in stale:
            self.database.execute(
                "DELETE FROM sessions WHERE id = ?", (session_id,)
            )
        leases = queue.reclaim_expired(now=now)
        return {
            "sessions_deleted": len(stale),
            "jobs_deleted": jobs_deleted,
            "leases_reclaimed": leases,
        }
