"""Session specifications: what a submitted tuning job asks for.

A :class:`SessionSpec` is the JSON-serializable contract between
``service submit`` and the coordinator/workers that later execute the
session — everything needed to rebuild the tuner deterministically in any
process: system, workload, device, budget, objective metric, seed, sample
count and stopping rules.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from ..budgets import build_budget
from ..errors import ServiceError
from ..storage import TrialDatabase

#: Systems the service can run.  The hierarchical tuner is excluded: it is
#: a two-phase meta-tuner without a single scheduler to checkpoint.
SERVICE_SYSTEMS = ("edgetune", "tune", "hyperpower")


@dataclass(frozen=True)
class SessionSpec:
    """Deterministic description of one tuning session."""

    system: str = "edgetune"
    workload: str = "IC"
    device: str = "armv7"
    budget: str = "multi-budget"
    tuning_metric: str = "runtime"
    seed: int = 7
    samples: Optional[int] = None
    max_trials: Optional[int] = None
    target_accuracy: Optional[float] = None
    #: Seed the session's search model from historical trials of the same
    #: experiment before the first suggestion (the advisor's transfer path).
    warm_start: bool = False
    #: Warm-resume promoted trials from their parent rung's checkpoint
    #: (the artifact cache's cross-rung tier).  Opt-in: resumed trials
    #: train fewer epochs from inherited weights, so scores differ from
    #: the retrain-from-scratch default.
    reuse_checkpoints: bool = False
    #: Override the edgetune search algorithm (``asha``, ``sha``,
    #: ``bohb``, ...).  ``None`` keeps the system default.
    scheduler: Optional[str] = None
    #: Bracket width for the halving schedulers: how many fresh
    #: configurations enter the bottom rung.  Only meaningful with
    #: ``scheduler`` set to ``sha`` or ``asha``; ``None`` keeps the
    #: scheduler default (``eta ** num_rungs``).
    num_configs: Optional[int] = None
    #: Serving-load scenario this session tunes under (``repro.traffic``
    #: spec string), with the SLO metric/targets scored against it.
    traffic: Optional[str] = None
    traffic_metric: str = "p99"
    slo_p99_s: Optional[float] = None
    slo_deadline_s: Optional[float] = None
    #: Stacking width K for batched-trial execution on the workers
    #: (``--trial-batch``).  ``None`` = auto (``$REPRO_TRIAL_BATCH`` or
    #: the built-in default); 1 disables grouping.
    trial_batch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.system not in SERVICE_SYSTEMS:
            raise ServiceError(
                f"system {self.system!r} cannot run as a service session; "
                f"expected one of {SERVICE_SYSTEMS}"
            )
        if self.scheduler is not None:
            if self.system != "edgetune":
                raise ServiceError(
                    "--scheduler only applies to the edgetune system"
                )
            from ..search import SCHEDULER_NAMES

            if self.scheduler not in SCHEDULER_NAMES:
                raise ServiceError(
                    f"unknown scheduler {self.scheduler!r}; "
                    f"expected one of {SCHEDULER_NAMES}"
                )
        if self.num_configs is not None:
            if self.scheduler not in ("sha", "asha"):
                raise ServiceError(
                    "--num-configs only applies to the 'sha'/'asha' "
                    "schedulers (pass --scheduler)"
                )
            if self.num_configs < 1:
                raise ServiceError("--num-configs must be >= 1")
        if self.traffic is not None:
            if self.system != "edgetune":
                raise ServiceError(
                    "traffic-aware tuning is only supported by the "
                    "edgetune system"
                )
            # Validate (and normalise implicitly) at submit time so a bad
            # scenario fails in the submitting shell, not inside a worker.
            from ..traffic import parse_scenario

            parse_scenario(self.traffic)
        elif self.slo_p99_s is not None or self.slo_deadline_s is not None:
            raise ServiceError(
                "SLO targets need a traffic scenario to replay"
            )
        if self.trial_batch is not None and self.trial_batch < 1:
            raise ServiceError("--trial-batch must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "SessionSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in raw.items() if k in known})


def build_server(spec: SessionSpec, database: TrialDatabase):
    """Instantiate the :class:`~repro.core.model_server.ModelTuningServer`
    described by ``spec``, wired to ``database``.

    Import is deferred so worker processes that never coordinate avoid the
    heavier core imports.
    """
    from .. import EdgeTune
    from ..baselines import HyperPowerBaseline, TuneBaseline

    common = dict(
        workload=spec.workload,
        seed=spec.seed,
        samples=spec.samples,
        max_trials=spec.max_trials,
        target_accuracy=spec.target_accuracy,
        database=database,
    )
    if spec.system == "edgetune":
        slo = None
        if spec.slo_p99_s is not None or spec.slo_deadline_s is not None:
            from ..traffic import SLOSpec

            slo = SLOSpec(
                p99_target_s=spec.slo_p99_s,
                deadline_s=spec.slo_deadline_s,
            )
        extra: Dict[str, Any] = {}
        if spec.scheduler is not None:
            extra["algorithm"] = spec.scheduler
        if spec.num_configs is not None:
            extra["num_configs"] = spec.num_configs
        server = EdgeTune(
            device=spec.device,
            budget=spec.budget,
            tuning_metric=spec.tuning_metric,
            traffic=spec.traffic,
            traffic_metric=spec.traffic_metric,
            slo=slo,
            **extra,
            **common,
        ).model_server
    elif spec.system == "tune":
        server = TuneBaseline(budget=build_budget(spec.budget), **common).server
    elif spec.system == "hyperpower":
        server = HyperPowerBaseline(
            budget=build_budget(spec.budget), **common
        ).server
    else:
        raise ServiceError(f"unsupported service system {spec.system!r}")
    # All systems run on a ModelTuningServer, so transfer works uniformly.
    server.warm_start = bool(spec.warm_start)
    if spec.reuse_checkpoints:
        server.enable_checkpoint_reuse()
    return server
