"""Trial-evaluation workers: the processes that do the real training.

:func:`worker_main` is the entry point of each pool process (also usable
standalone).  A worker:

1. leases the oldest runnable job from the persistent queue;
2. spawns a heartbeat thread that renews the lease while training runs —
   a worker killed mid-trial stops heartbeating, so its job is reclaimed
   and retried by someone else;
3. executes the trial's real numpy training via
   :func:`repro.core.model_server.evaluate_trial` (datasets cached per
   workload/seed/sample-count, so a session pays the synthesis cost once
   per worker);
4. writes the pickled :class:`TrialEvaluation` back into the job row.

Workers are stateless by design: every piece of information needed to run
a job travels inside the job payload, which is what makes retries after a
crash bit-identical.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import threading
import time
import traceback
from typing import List, Optional, Tuple

from ..artifacts import ArtifactStore
from ..core.model_server import (
    TrialTask,
    dataset_cache_stats,
    evaluate_trial,
    load_task_datasets,
)
from ..core.trial_batch import (
    batch_signature,
    evaluate_trial_batch,
    resolve_trial_batch,
)
from ..faults import fault_point
from ..storage import TrialDatabase
from .failures import run_with_deadline
from .queue import DEFAULT_LEASE_TTL_S, Job, JobQueue, _env_float

#: How long an idle worker sleeps between queue polls, seconds.
IDLE_POLL_S = 0.05

#: Lease renewal period as a fraction of the TTL.
HEARTBEAT_FRACTION = 0.25

#: Explicit lease-renewal period; ``None`` derives it from the TTL via
#: :data:`HEARTBEAT_FRACTION`.  Overridable per deployment through
#: ``$REPRO_HEARTBEAT_INTERVAL_S`` (and per run via ``--heartbeat-interval``).
DEFAULT_HEARTBEAT_INTERVAL_S: Optional[float] = (
    _env_float("REPRO_HEARTBEAT_INTERVAL_S", 0.0) or None
)


def heartbeat_interval(
    ttl_s: float, interval_s: Optional[float] = None
) -> float:
    """Resolve the effective lease-renewal period for a TTL."""
    if interval_s is None:
        interval_s = DEFAULT_HEARTBEAT_INTERVAL_S
    if interval_s is not None and interval_s > 0:
        return float(interval_s)
    return max(0.05, ttl_s * HEARTBEAT_FRACTION)


class _Heartbeat:
    """Daemon thread renewing one job lease until stopped."""

    def __init__(self, queue: JobQueue, job_id: int, worker_id: str,
                 ttl_s: float, interval_s: Optional[float] = None,
                 on_beat=None):
        self._queue = queue
        self._job_id = job_id
        self._worker_id = worker_id
        self._ttl_s = ttl_s
        self._interval_s = heartbeat_interval(ttl_s, interval_s)
        self._on_beat = on_beat
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        # Bounded join: if the heartbeat thread is itself stuck inside a
        # wedged sqlite call, blocking here longer than the lease TTL
        # would delay the failure report past the point where a sibling
        # reclaims the job anyway.  The thread is a daemon; abandon it.
        self._thread.join(timeout=min(self._ttl_s, 1.0))

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            if not self._queue.heartbeat(
                self._job_id, self._worker_id, ttl_s=self._ttl_s
            ):
                return  # lease lost; the retry owns the job now
            if self._on_beat is not None:
                self._on_beat()


class TrialWorker:
    """Executes trial-evaluation jobs from a shared database file."""

    def __init__(
        self,
        db_path: Optional[str] = None,
        worker_id: Optional[str] = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        poll_interval_s: float = IDLE_POLL_S,
        database: Optional[TrialDatabase] = None,
        trial_timeout_s: Optional[float] = None,
        heartbeat_interval_s: Optional[float] = None,
        trial_batch: Optional[int] = None,
    ):
        if database is None and db_path is None:
            raise ValueError("TrialWorker needs a db_path or a database")
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.database = database or TrialDatabase(db_path)
        self._owns_database = database is None
        self.queue = JobQueue(self.database)
        self.lease_ttl_s = lease_ttl_s
        self.poll_interval_s = poll_interval_s
        self.heartbeat_interval_s = heartbeat_interval_s
        #: Wall-clock budget per trial; ``None`` disables the deadline.
        self.trial_timeout_s = trial_timeout_s
        self.jobs_done = 0
        self.jobs_failed = 0
        #: Trial artifact cache over the session database.  Exact
        #: memoization is always on (bit-safe); warm-resume activates
        #: only for tasks that carry lineage (``--reuse-checkpoints``).
        self.artifacts = ArtifactStore(self.database)
        #: Machine-registry presence: every worker registers itself with
        #: its host's capability tags so ``service status`` can report
        #: per-machine liveness instead of bare worker PIDs.
        from ..fleet.registry import MachineRegistry, local_capabilities

        self.registry = MachineRegistry(self.database)
        self.registry.register(
            self.worker_id, capabilities=local_capabilities()
        )
        self._machine_touched_at = time.time()
        #: Stacking width K for batched-trial execution.  Opt-in for
        #: queue workers (``None`` falls back to ``$REPRO_TRIAL_BATCH``,
        #: else stays serial): the session spec or the ``--trial-batch``
        #: flag is what turns grouping on service-side.
        self.trial_batch = resolve_trial_batch(trial_batch, default=1)
        #: Batch-group occupancy meters (also pushed to the fleet-stats
        #: table so ``service status`` sees fleet-wide occupancy).
        self.groups_formed = 0
        self.group_members = 0
        self.serial_fallbacks = 0
        self.max_group = 0
        self._dataset_cache_last = dataset_cache_stats()

    def _touch_machine(self) -> None:
        """Throttled machine-liveness heartbeat (cheap: one UPDATE at
        most every quarter-TTL, piggybacking on existing loops)."""
        now = time.time()
        if now - self._machine_touched_at >= max(
            0.25, self.lease_ttl_s * HEARTBEAT_FRACTION
        ):
            self.registry.heartbeat(self.worker_id, now=now)
            self._machine_touched_at = now

    # -- execution ----------------------------------------------------------
    def run_job(self, job: Job) -> None:
        """Execute one leased job to completion (or record its failure)."""
        with _Heartbeat(self.queue, job.id, self.worker_id,
                        self.lease_ttl_s,
                        interval_s=self.heartbeat_interval_s,
                        on_beat=self._touch_machine):
            try:
                # Chaos sites: keyed by trial id and gated on the lease
                # attempt, so (by default) the retry of an injected
                # failure runs clean and the session still converges.
                fault_point("worker.crash", key=job.trial_id,
                            attempt=job.attempts)
                fault_point("worker.fail", key=job.trial_id,
                            attempt=job.attempts)
                task = TrialTask.from_json(job.payload)
                evaluation, model = self._evaluate(task, job.attempts)
                evaluation.model_blob = pickle.dumps(
                    model, protocol=pickle.HIGHEST_PROTOCOL
                )
                blob = pickle.dumps(
                    evaluation, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:
                self.jobs_failed += 1
                self.queue.fail(
                    job.id, self.worker_id, traceback.format_exc(limit=8)
                )
                return
        if self.queue.complete(job.id, self.worker_id, blob):
            self.jobs_done += 1
            self.registry.record_done(self.worker_id)

    # -- batched execution --------------------------------------------------
    def run_leased(self, job: Job) -> None:
        """Execute a freshly leased job, stacking groupmates when enabled."""
        if self.trial_batch <= 1:
            self.run_job(job)
            return
        group = self._form_group(job)
        if len(group) <= 1:
            self.serial_fallbacks += 1
            self.registry.bump("batch.serial_fallback")
            self.run_job(job)
        else:
            self.run_job_group(group)
        self._publish_dataset_cache_stats()

    def _form_group(self, head: Job) -> List[Job]:
        """Claim up to K-1 stackable groupmates for an already-leased job.

        Only first-attempt jobs group (retries — including the survivors
        of a failed group — re-run serially, keeping fault-injection and
        dead-letter semantics identical to the serial worker), and only
        when no per-trial deadline is configured (the group shares one
        training loop, which a member-level deadline cannot cut).
        """
        if self.trial_timeout_s is not None or head.attempts != 1:
            return [head]
        try:
            head_task = TrialTask.from_json(head.payload)
            signature = batch_signature(head_task)
        except Exception:
            return [head]
        if signature is None:
            return [head]
        group = [head]
        candidates = self.queue.peek_queued(
            session_id=head.session_id,
            limit=max(16, 4 * self.trial_batch),
        )
        for candidate in candidates:
            if len(group) >= self.trial_batch:
                break
            if candidate.id == head.id or candidate.attempts != 0:
                continue
            try:
                task = TrialTask.from_json(candidate.payload)
                if batch_signature(task) != signature:
                    continue
            except Exception:
                continue
            leased = self.queue.lease_by_id(
                candidate.id, self.worker_id,
                ttl_s=self.lease_ttl_s, fresh_only=True,
            )
            if leased is not None:
                group.append(leased)
        return group

    def run_job_group(self, jobs: List[Job]) -> None:
        """Execute K signature-matched leased jobs as one stacked run.

        Failure containment mirrors the serial worker per member: fault
        sites fire with each member's own key/attempt (an injected crash
        kills the process, every lease expires, and all members retry
        serially); a training error fails *every* member, whose serial
        retries then isolate any poisoned one into the dead-letter queue
        alone.
        """
        completed: List[Tuple[Job, bytes]] = []
        with contextlib.ExitStack() as heartbeats:
            for job in jobs:
                heartbeats.enter_context(_Heartbeat(
                    self.queue, job.id, self.worker_id, self.lease_ttl_s,
                    interval_s=self.heartbeat_interval_s,
                    on_beat=self._touch_machine,
                ))
            live: List[Tuple[Job, TrialTask]] = []
            for job in jobs:
                try:
                    fault_point("worker.crash", key=job.trial_id,
                                attempt=job.attempts)
                    fault_point("worker.fail", key=job.trial_id,
                                attempt=job.attempts)
                    fault_point("worker.hang", key=job.trial_id,
                                attempt=job.attempts)
                    live.append((job, TrialTask.from_json(job.payload)))
                except Exception:
                    self.jobs_failed += 1
                    self.queue.fail(
                        job.id, self.worker_id,
                        traceback.format_exc(limit=8),
                    )
            if live:
                try:
                    train_set, eval_set = load_task_datasets(live[0][1])
                    outputs = evaluate_trial_batch(
                        [task for _, task in live], train_set, eval_set,
                        artifacts=self.artifacts,
                    )
                    for (job, _), (evaluation, model) in zip(live, outputs):
                        evaluation.model_blob = pickle.dumps(
                            model, protocol=pickle.HIGHEST_PROTOCOL
                        )
                        completed.append((job, pickle.dumps(
                            evaluation, protocol=pickle.HIGHEST_PROTOCOL
                        )))
                except Exception:
                    error = traceback.format_exc(limit=8)
                    completed = []
                    for job, _ in live:
                        self.jobs_failed += 1
                        self.queue.fail(job.id, self.worker_id, error)
        for job, blob in completed:
            if self.queue.complete(job.id, self.worker_id, blob):
                self.jobs_done += 1
                self.registry.record_done(self.worker_id)
        self.groups_formed += 1
        self.group_members += len(jobs)
        self.max_group = max(self.max_group, len(jobs))
        self.registry.bump("batch.groups")
        self.registry.bump("batch.members", float(len(jobs)))
        self.registry.bump_max("batch.max_k", float(len(jobs)))

    def _publish_dataset_cache_stats(self) -> None:
        """Push dataset-memo deltas into the shared fleet-stats table."""
        stats = dataset_cache_stats()
        for key in ("hits", "misses", "evictions"):
            delta = stats[key] - self._dataset_cache_last.get(key, 0)
            if delta:
                self.registry.bump(f"dataset_cache.{key}", float(delta))
        self._dataset_cache_last = stats

    def batch_stats(self) -> dict:
        """This worker's batch-group occupancy meters."""
        members = self.group_members
        return {
            "trial_batch": self.trial_batch,
            "groups": self.groups_formed,
            "members": members,
            "mean_k": (members / self.groups_formed)
            if self.groups_formed else 0.0,
            "max_k": self.max_group,
            "serial_fallback": self.serial_fallbacks,
        }

    def _evaluate(self, task: TrialTask, attempt: int) -> Tuple:
        """Run one trial, under the wall-clock deadline when configured."""

        def execute() -> Tuple:
            fault_point("worker.hang", key=task.trial_id, attempt=attempt)
            train_set, eval_set = load_task_datasets(task)
            return evaluate_trial(
                task, train_set, eval_set, artifacts=self.artifacts
            )

        if self.trial_timeout_s is None:
            return execute()
        return run_with_deadline(
            execute, self.trial_timeout_s, name=f"trial-{task.trial_id}"
        )

    # -- main loop -----------------------------------------------------------
    def run_forever(
        self,
        stop_event: Optional["threading.Event"] = None,
        idle_timeout_s: Optional[float] = None,
    ) -> int:
        """Lease-execute until stopped (or idle past ``idle_timeout_s``).

        Returns the number of jobs completed.  Also moonlights as the
        queue janitor: idle workers reclaim expired leases so a crashed
        sibling's jobs are not stuck until the coordinator notices.
        """
        idle_since = time.time()
        while stop_event is None or not stop_event.is_set():
            self._touch_machine()
            job = self.queue.lease(
                self.worker_id, ttl_s=self.lease_ttl_s
            )
            if job is None:
                self.queue.reclaim_expired()
                if (
                    idle_timeout_s is not None
                    and time.time() - idle_since > idle_timeout_s
                ):
                    break
                time.sleep(self.poll_interval_s)
                continue
            self.run_leased(job)
            idle_since = time.time()
        return self.jobs_done

    def close(self) -> None:
        if self._owns_database:
            self.database.close()


def worker_main(
    db_path: str,
    worker_id: Optional[str] = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_interval_s: float = IDLE_POLL_S,
    idle_timeout_s: Optional[float] = None,
    trial_timeout_s: Optional[float] = None,
    heartbeat_interval_s: Optional[float] = None,
    trial_batch: Optional[int] = None,
) -> int:
    """Process entry point for pool workers (importable, hence spawn-safe)."""
    worker = TrialWorker(
        db_path,
        worker_id=worker_id,
        lease_ttl_s=lease_ttl_s,
        poll_interval_s=poll_interval_s,
        trial_timeout_s=trial_timeout_s,
        heartbeat_interval_s=heartbeat_interval_s,
        trial_batch=trial_batch,
    )
    try:
        return worker.run_forever(idle_timeout_s=idle_timeout_s)
    except KeyboardInterrupt:
        return worker.jobs_done
    finally:
        worker.close()
