"""Trial-evaluation workers: the processes that do the real training.

:func:`worker_main` is the entry point of each pool process (also usable
standalone).  A worker:

1. leases the oldest runnable job from the persistent queue;
2. spawns a heartbeat thread that renews the lease while training runs —
   a worker killed mid-trial stops heartbeating, so its job is reclaimed
   and retried by someone else;
3. executes the trial's real numpy training via
   :func:`repro.core.model_server.evaluate_trial` (datasets cached per
   workload/seed/sample-count, so a session pays the synthesis cost once
   per worker);
4. writes the pickled :class:`TrialEvaluation` back into the job row.

Workers are stateless by design: every piece of information needed to run
a job travels inside the job payload, which is what makes retries after a
crash bit-identical.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
from typing import Optional, Tuple

from ..artifacts import ArtifactStore
from ..core.model_server import TrialTask, evaluate_trial, load_task_datasets
from ..faults import fault_point
from ..storage import TrialDatabase
from .failures import run_with_deadline
from .queue import DEFAULT_LEASE_TTL_S, Job, JobQueue, _env_float

#: How long an idle worker sleeps between queue polls, seconds.
IDLE_POLL_S = 0.05

#: Lease renewal period as a fraction of the TTL.
HEARTBEAT_FRACTION = 0.25

#: Explicit lease-renewal period; ``None`` derives it from the TTL via
#: :data:`HEARTBEAT_FRACTION`.  Overridable per deployment through
#: ``$REPRO_HEARTBEAT_INTERVAL_S`` (and per run via ``--heartbeat-interval``).
DEFAULT_HEARTBEAT_INTERVAL_S: Optional[float] = (
    _env_float("REPRO_HEARTBEAT_INTERVAL_S", 0.0) or None
)


def heartbeat_interval(
    ttl_s: float, interval_s: Optional[float] = None
) -> float:
    """Resolve the effective lease-renewal period for a TTL."""
    if interval_s is None:
        interval_s = DEFAULT_HEARTBEAT_INTERVAL_S
    if interval_s is not None and interval_s > 0:
        return float(interval_s)
    return max(0.05, ttl_s * HEARTBEAT_FRACTION)


class _Heartbeat:
    """Daemon thread renewing one job lease until stopped."""

    def __init__(self, queue: JobQueue, job_id: int, worker_id: str,
                 ttl_s: float, interval_s: Optional[float] = None,
                 on_beat=None):
        self._queue = queue
        self._job_id = job_id
        self._worker_id = worker_id
        self._ttl_s = ttl_s
        self._interval_s = heartbeat_interval(ttl_s, interval_s)
        self._on_beat = on_beat
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        # Bounded join: if the heartbeat thread is itself stuck inside a
        # wedged sqlite call, blocking here longer than the lease TTL
        # would delay the failure report past the point where a sibling
        # reclaims the job anyway.  The thread is a daemon; abandon it.
        self._thread.join(timeout=min(self._ttl_s, 1.0))

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            if not self._queue.heartbeat(
                self._job_id, self._worker_id, ttl_s=self._ttl_s
            ):
                return  # lease lost; the retry owns the job now
            if self._on_beat is not None:
                self._on_beat()


class TrialWorker:
    """Executes trial-evaluation jobs from a shared database file."""

    def __init__(
        self,
        db_path: Optional[str] = None,
        worker_id: Optional[str] = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        poll_interval_s: float = IDLE_POLL_S,
        database: Optional[TrialDatabase] = None,
        trial_timeout_s: Optional[float] = None,
        heartbeat_interval_s: Optional[float] = None,
    ):
        if database is None and db_path is None:
            raise ValueError("TrialWorker needs a db_path or a database")
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.database = database or TrialDatabase(db_path)
        self._owns_database = database is None
        self.queue = JobQueue(self.database)
        self.lease_ttl_s = lease_ttl_s
        self.poll_interval_s = poll_interval_s
        self.heartbeat_interval_s = heartbeat_interval_s
        #: Wall-clock budget per trial; ``None`` disables the deadline.
        self.trial_timeout_s = trial_timeout_s
        self.jobs_done = 0
        self.jobs_failed = 0
        #: Trial artifact cache over the session database.  Exact
        #: memoization is always on (bit-safe); warm-resume activates
        #: only for tasks that carry lineage (``--reuse-checkpoints``).
        self.artifacts = ArtifactStore(self.database)
        #: Machine-registry presence: every worker registers itself with
        #: its host's capability tags so ``service status`` can report
        #: per-machine liveness instead of bare worker PIDs.
        from ..fleet.registry import MachineRegistry, local_capabilities

        self.registry = MachineRegistry(self.database)
        self.registry.register(
            self.worker_id, capabilities=local_capabilities()
        )
        self._machine_touched_at = time.time()

    def _touch_machine(self) -> None:
        """Throttled machine-liveness heartbeat (cheap: one UPDATE at
        most every quarter-TTL, piggybacking on existing loops)."""
        now = time.time()
        if now - self._machine_touched_at >= max(
            0.25, self.lease_ttl_s * HEARTBEAT_FRACTION
        ):
            self.registry.heartbeat(self.worker_id, now=now)
            self._machine_touched_at = now

    # -- execution ----------------------------------------------------------
    def run_job(self, job: Job) -> None:
        """Execute one leased job to completion (or record its failure)."""
        with _Heartbeat(self.queue, job.id, self.worker_id,
                        self.lease_ttl_s,
                        interval_s=self.heartbeat_interval_s,
                        on_beat=self._touch_machine):
            try:
                # Chaos sites: keyed by trial id and gated on the lease
                # attempt, so (by default) the retry of an injected
                # failure runs clean and the session still converges.
                fault_point("worker.crash", key=job.trial_id,
                            attempt=job.attempts)
                fault_point("worker.fail", key=job.trial_id,
                            attempt=job.attempts)
                task = TrialTask.from_json(job.payload)
                evaluation, model = self._evaluate(task, job.attempts)
                evaluation.model_blob = pickle.dumps(
                    model, protocol=pickle.HIGHEST_PROTOCOL
                )
                blob = pickle.dumps(
                    evaluation, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception:
                self.jobs_failed += 1
                self.queue.fail(
                    job.id, self.worker_id, traceback.format_exc(limit=8)
                )
                return
        if self.queue.complete(job.id, self.worker_id, blob):
            self.jobs_done += 1
            self.registry.record_done(self.worker_id)

    def _evaluate(self, task: TrialTask, attempt: int) -> Tuple:
        """Run one trial, under the wall-clock deadline when configured."""

        def execute() -> Tuple:
            fault_point("worker.hang", key=task.trial_id, attempt=attempt)
            train_set, eval_set = load_task_datasets(task)
            return evaluate_trial(
                task, train_set, eval_set, artifacts=self.artifacts
            )

        if self.trial_timeout_s is None:
            return execute()
        return run_with_deadline(
            execute, self.trial_timeout_s, name=f"trial-{task.trial_id}"
        )

    # -- main loop -----------------------------------------------------------
    def run_forever(
        self,
        stop_event: Optional["threading.Event"] = None,
        idle_timeout_s: Optional[float] = None,
    ) -> int:
        """Lease-execute until stopped (or idle past ``idle_timeout_s``).

        Returns the number of jobs completed.  Also moonlights as the
        queue janitor: idle workers reclaim expired leases so a crashed
        sibling's jobs are not stuck until the coordinator notices.
        """
        idle_since = time.time()
        while stop_event is None or not stop_event.is_set():
            self._touch_machine()
            job = self.queue.lease(
                self.worker_id, ttl_s=self.lease_ttl_s
            )
            if job is None:
                self.queue.reclaim_expired()
                if (
                    idle_timeout_s is not None
                    and time.time() - idle_since > idle_timeout_s
                ):
                    break
                time.sleep(self.poll_interval_s)
                continue
            self.run_job(job)
            idle_since = time.time()
        return self.jobs_done

    def close(self) -> None:
        if self._owns_database:
            self.database.close()


def worker_main(
    db_path: str,
    worker_id: Optional[str] = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_interval_s: float = IDLE_POLL_S,
    idle_timeout_s: Optional[float] = None,
    trial_timeout_s: Optional[float] = None,
    heartbeat_interval_s: Optional[float] = None,
) -> int:
    """Process entry point for pool workers (importable, hence spawn-safe)."""
    worker = TrialWorker(
        db_path,
        worker_id=worker_id,
        lease_ttl_s=lease_ttl_s,
        poll_interval_s=poll_interval_s,
        trial_timeout_s=trial_timeout_s,
        heartbeat_interval_s=heartbeat_interval_s,
    )
    try:
        return worker.run_forever(idle_timeout_s=idle_timeout_s)
    except KeyboardInterrupt:
        return worker.jobs_done
    finally:
        worker.close()
