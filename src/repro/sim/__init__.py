"""Virtual-time execution: clock and the two-lane pipelined executor."""

from .clock import SimClock, TimelineSegment
from .executor import (
    INFERENCE_LANE,
    MODEL_LANE,
    LaneState,
    PipelinedExecutor,
)

__all__ = [
    "SimClock",
    "TimelineSegment",
    "PipelinedExecutor",
    "LaneState",
    "MODEL_LANE",
    "INFERENCE_LANE",
]
