"""Virtual clock for deterministic time accounting.

All "runtime" in the reproduction is simulated: the hardware emulator says
how long each piece of work takes, and :class:`SimClock` / the two-lane
timeline add those durations up.  Nothing ever sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import SchedulingError


class SimClock:
    """A monotonically advancing virtual clock (seconds)."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise SchedulingError(f"clock cannot start negative: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, duration: float) -> float:
        """Move forward by ``duration`` and return the new time."""
        if duration < 0:
            raise SchedulingError(f"cannot advance by {duration} < 0")
        self._now += duration
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to ``timestamp`` if it is in the future; never rewinds."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now


@dataclass(frozen=True)
class TimelineSegment:
    """One executed piece of work on a lane, for Fig 6-style renderings."""

    lane: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start
