"""Two-lane pipelined executor modelling the async Model/Inference servers.

Paper Fig 6 and §3.3: for every training trial the Model Tuning Server
*asynchronously* launches inference tuning for the trial's architecture;
the Inference Tuning Server pipelines those requests on its own (CPU-only)
lane.  Because an inference-tuning job is much shorter than a training
trial, its result is normally ready before the trial finishes, so it adds
no wall-clock overhead — but if it is not, the model lane *stalls* until
the result arrives.  This executor reproduces exactly that accounting in
virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SchedulingError
from .clock import TimelineSegment

MODEL_LANE = "model"
INFERENCE_LANE = "inference"


@dataclass
class LaneState:
    """Cursor and history of one execution lane."""

    name: str
    cursor: float = 0.0
    busy_time: float = 0.0
    segments: List[TimelineSegment] = field(default_factory=list)


class PipelinedExecutor:
    """Virtual-time scheduler for the two EdgeTune server lanes."""

    def __init__(self) -> None:
        self._lanes: Dict[str, LaneState] = {
            MODEL_LANE: LaneState(MODEL_LANE),
            INFERENCE_LANE: LaneState(INFERENCE_LANE),
        }
        #: completion time of each async inference job, by job key
        self._inference_done: Dict[str, float] = {}

    # -- lane primitives ------------------------------------------------------
    def _run(
        self, lane: str, duration: float, label: str,
        earliest_start: float = 0.0,
    ) -> TimelineSegment:
        if duration < 0:
            raise SchedulingError(f"negative duration for {label!r}")
        state = self._lanes[lane]
        start = max(state.cursor, earliest_start)
        segment = TimelineSegment(
            lane=lane, label=label, start=start, end=start + duration
        )
        state.cursor = segment.end
        state.busy_time += duration
        state.segments.append(segment)
        return segment

    # -- model-server operations ---------------------------------------------
    def start_inference_job(self, key: str, duration: float) -> TimelineSegment:
        """Queue an async inference-tuning job; returns its lane segment.

        The job starts no earlier than the current model-lane time (it is
        triggered by the trial that is about to run) and no earlier than
        the inference lane frees up — the pipelining of Fig 6.
        """
        trigger_time = self._lanes[MODEL_LANE].cursor
        segment = self._run(
            INFERENCE_LANE, duration, f"inference:{key}",
            earliest_start=trigger_time,
        )
        self._inference_done[key] = segment.end
        return segment

    def run_training_trial(self, label: str, duration: float) -> TimelineSegment:
        """Run one training trial synchronously on the model lane."""
        return self._run(MODEL_LANE, duration, f"trial:{label}")

    def await_inference(self, key: str) -> float:
        """Block the model lane until job ``key`` has completed.

        Returns the stall duration (zero when the inference result was
        ready in time — the common case the paper's design guarantees).
        """
        if key not in self._inference_done:
            raise SchedulingError(f"no inference job with key {key!r}")
        done = self._inference_done[key]
        state = self._lanes[MODEL_LANE]
        stall = max(0.0, done - state.cursor)
        if stall > 0:
            state.segments.append(
                TimelineSegment(
                    lane=MODEL_LANE,
                    label=f"stall:{key}",
                    start=state.cursor,
                    end=done,
                )
            )
            state.cursor = done
        return stall

    def inference_ready(self, key: str) -> bool:
        """Whether job ``key`` finished by the current model-lane time."""
        done = self._inference_done.get(key)
        return done is not None and done <= self._lanes[MODEL_LANE].cursor

    # -- accounting ----------------------------------------------------------
    @property
    def model_time(self) -> float:
        """Virtual wall-clock of the tuning process (model-lane cursor)."""
        return self._lanes[MODEL_LANE].cursor

    @property
    def inference_time(self) -> float:
        return self._lanes[INFERENCE_LANE].cursor

    def lane_segments(self, lane: str) -> List[TimelineSegment]:
        return list(self._lanes[lane].segments)

    def lane_busy(self, lane: str) -> float:
        return self._lanes[lane].busy_time

    def stall_time(self) -> float:
        """Total model-lane time lost waiting on inference results."""
        return sum(
            segment.duration
            for segment in self._lanes[MODEL_LANE].segments
            if segment.label.startswith("stall:")
        )
