"""GPU-pool scheduling: parallel trials over a shared device pool.

Tuning systems run many trials concurrently across the tuning server's
GPUs (Ray Tune's default is one GPU per trial, eight trials in flight on
the paper's 8-GPU Titan host).  The tuning *runtime* users experience is
therefore the **makespan** of the trial schedule, not the sum of trial
durations — while tuning *energy* still sums every trial's consumption.

:class:`GpuPool` implements greedy list scheduling: each trial asks for
``width`` GPUs for ``duration`` seconds and is placed at the earliest time
``width`` devices are simultaneously free (respecting an optional barrier,
used for synchronous successive-halving rung boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import SchedulingError


@dataclass(frozen=True)
class PoolPlacement:
    """Where one trial landed on the pool."""

    start: float
    end: float
    gpus: Tuple[int, ...]

    @property
    def duration(self) -> float:
        return self.end - self.start


class GpuPool:
    """Greedy scheduler over a fixed-size GPU pool."""

    def __init__(self, size: int):
        if size < 1:
            raise SchedulingError(f"pool size must be >= 1, got {size}")
        self.size = size
        self._free_at = [0.0] * size
        self._placements: List[PoolPlacement] = []

    def schedule(
        self, width: int, duration: float, earliest: float = 0.0
    ) -> PoolPlacement:
        """Place a job needing ``width`` GPUs for ``duration`` seconds.

        Requests wider than the pool are clamped to the pool size (the
        cluster cannot grant more devices than it has).
        """
        if width < 1:
            raise SchedulingError(f"width must be >= 1, got {width}")
        if duration < 0:
            raise SchedulingError(f"duration must be >= 0, got {duration}")
        width = min(width, self.size)
        # The job can start once `width` GPUs are free: that is the
        # width-th smallest free time (and no earlier than `earliest`).
        order = sorted(range(self.size), key=lambda i: self._free_at[i])
        chosen = order[:width]
        start = max(earliest, self._free_at[chosen[-1]])
        end = start + duration
        for index in chosen:
            self._free_at[index] = end
        placement = PoolPlacement(start=start, end=end, gpus=tuple(chosen))
        self._placements.append(placement)
        return placement

    @property
    def makespan(self) -> float:
        """Completion time of the whole schedule so far."""
        return max(self._free_at)

    @property
    def placements(self) -> List[PoolPlacement]:
        return list(self._placements)

    def busy_gpu_seconds(self) -> float:
        """Total GPU-seconds consumed (width x duration summed)."""
        return sum(len(p.gpus) * p.duration for p in self._placements)

    def utilisation(self) -> float:
        """Pool utilisation over the makespan (0 when nothing ran)."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.busy_gpu_seconds() / (span * self.size)
