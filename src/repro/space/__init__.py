"""Search-space primitives: parameters, spaces and configurations."""

from .parameters import PARAMETER_KINDS, Categorical, Float, Integer, Parameter
from .space import Configuration, ParameterSpace

__all__ = [
    "PARAMETER_KINDS",
    "Parameter",
    "Categorical",
    "Integer",
    "Float",
    "ParameterSpace",
    "Configuration",
]
