"""Parameter definitions for tuning search spaces.

EdgeTune tunes four kinds of parameters (paper §2.3): *model*
hyperparameters (structure: layers, embedding dim, stride, dropout),
*training* hyperparameters (batch size, learning rate, ...), *inference*
hyperparameters (inference batch size) and *system* parameters (CPU cores,
GPUs, CPU frequency, memory).  All of them reduce to three primitive types —
categorical, integer and float — plus a ``kind`` tag that tells the tuner
which sub-server owns the parameter and whether a change invalidates cached
inference results (§3.4: only parameters affecting the *architecture* force
the inference server to re-tune).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, SearchSpaceError

#: Allowed values of :attr:`Parameter.kind`.
PARAMETER_KINDS = (
    "model",  # defines the network architecture (affects inference reuse)
    "training",  # training-only hyperparameter (batch size, lr, epochs)
    "inference",  # inference-only hyperparameter (inference batch size)
    "system",  # system parameter (cores, GPUs, frequency, memory)
)


@dataclass(frozen=True)
class Parameter:
    """Base class for a single tunable parameter.

    Attributes
    ----------
    name:
        Unique name within a :class:`~repro.space.space.ParameterSpace`.
    kind:
        One of :data:`PARAMETER_KINDS`; drives ownership (model vs inference
        server) and cache-reuse decisions.
    """

    name: str
    kind: str = "training"

    def __post_init__(self) -> None:
        if not self.name:
            raise SearchSpaceError("parameter name must be non-empty")
        if self.kind not in PARAMETER_KINDS:
            raise SearchSpaceError(
                f"unknown parameter kind {self.kind!r}; "
                f"expected one of {PARAMETER_KINDS}"
            )

    # -- interface -------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one value uniformly at random from the parameter's domain."""
        raise NotImplementedError

    def contains(self, value: Any) -> bool:
        """Whether ``value`` lies in the parameter's domain."""
        raise NotImplementedError

    def validate(self, value: Any) -> Any:
        """Return ``value`` if valid, raising :class:`ConfigurationError`."""
        if not self.contains(value):
            raise ConfigurationError(
                f"value {value!r} is outside the domain of parameter "
                f"{self.name!r}"
            )
        return value

    def grid(self, resolution: int = 10) -> List[Any]:
        """A finite list of domain values used by grid search."""
        raise NotImplementedError

    def to_unit(self, value: Any) -> float:
        """Map ``value`` to [0, 1] for surrogate models (TPE/BOHB)."""
        raise NotImplementedError

    def from_unit(self, u: float) -> Any:
        """Inverse of :meth:`to_unit` (clipping ``u`` into [0, 1])."""
        raise NotImplementedError

    @property
    def cardinality(self) -> float:
        """Number of distinct values (``math.inf`` for continuous)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Categorical(Parameter):
    """A parameter taking one of a finite, ordered set of choices."""

    choices: Tuple[Any, ...] = ()

    def __init__(self, name: str, choices: Sequence[Any], kind: str = "training"):
        object.__setattr__(self, "choices", tuple(choices))
        super().__init__(name=name, kind=kind)

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.choices) == 0:
            raise SearchSpaceError(f"categorical {self.name!r} has no choices")
        if len(set(map(repr, self.choices))) != len(self.choices):
            raise SearchSpaceError(f"categorical {self.name!r} has duplicates")

    def sample(self, rng: np.random.Generator) -> Any:
        return self.choices[int(rng.integers(len(self.choices)))]

    def contains(self, value: Any) -> bool:
        return any(value == c and type(value) is type(c) for c in self.choices)

    def grid(self, resolution: int = 10) -> List[Any]:
        return list(self.choices)

    def to_unit(self, value: Any) -> float:
        self.validate(value)
        index = next(
            i for i, c in enumerate(self.choices)
            if value == c and type(value) is type(c)
        )
        if len(self.choices) == 1:
            return 0.5
        return index / (len(self.choices) - 1)

    def from_unit(self, u: float) -> Any:
        u = min(max(float(u), 0.0), 1.0)
        index = int(round(u * (len(self.choices) - 1)))
        return self.choices[index]

    @property
    def cardinality(self) -> float:
        return float(len(self.choices))


@dataclass(frozen=True)
class Integer(Parameter):
    """An integer parameter on ``[low, high]`` (inclusive).

    ``log=True`` makes sampling and unit-mapping uniform in log space, the
    right choice for scale-like parameters such as batch size.
    """

    low: int = 0
    high: int = 1
    log: bool = False

    def __init__(
        self,
        name: str,
        low: int,
        high: int,
        log: bool = False,
        kind: str = "training",
    ):
        object.__setattr__(self, "low", int(low))
        object.__setattr__(self, "high", int(high))
        object.__setattr__(self, "log", bool(log))
        super().__init__(name=name, kind=kind)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.low > self.high:
            raise SearchSpaceError(
                f"integer {self.name!r}: low ({self.low}) > high ({self.high})"
            )
        if self.log and self.low <= 0:
            raise SearchSpaceError(
                f"integer {self.name!r}: log scale requires low > 0"
            )

    def sample(self, rng: np.random.Generator) -> int:
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high + 1)
            return min(int(math.exp(rng.uniform(lo, hi))), self.high)
        return int(rng.integers(self.low, self.high + 1))

    def contains(self, value: Any) -> bool:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            return False
        return self.low <= int(value) <= self.high

    def grid(self, resolution: int = 10) -> List[int]:
        span = self.high - self.low + 1
        if span <= resolution:
            return list(range(self.low, self.high + 1))
        if self.log:
            points = np.logspace(
                math.log10(self.low), math.log10(self.high), resolution
            )
        else:
            points = np.linspace(self.low, self.high, resolution)
        values = sorted({int(round(p)) for p in points})
        return [min(max(v, self.low), self.high) for v in values]

    def to_unit(self, value: Any) -> float:
        self.validate(value)
        if self.low == self.high:
            return 0.5
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high)
            return (math.log(int(value)) - lo) / (hi - lo)
        return (int(value) - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> int:
        u = min(max(float(u), 0.0), 1.0)
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high)
            raw = math.exp(lo + u * (hi - lo))
        else:
            raw = self.low + u * (self.high - self.low)
        return min(max(int(round(raw)), self.low), self.high)

    @property
    def cardinality(self) -> float:
        return float(self.high - self.low + 1)


@dataclass(frozen=True)
class Float(Parameter):
    """A continuous parameter on ``[low, high]``."""

    low: float = 0.0
    high: float = 1.0
    log: bool = False

    def __init__(
        self,
        name: str,
        low: float,
        high: float,
        log: bool = False,
        kind: str = "training",
    ):
        object.__setattr__(self, "low", float(low))
        object.__setattr__(self, "high", float(high))
        object.__setattr__(self, "log", bool(log))
        super().__init__(name=name, kind=kind)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (self.low < self.high or self.low == self.high):
            raise SearchSpaceError(
                f"float {self.name!r}: low ({self.low}) > high ({self.high})"
            )
        if self.low > self.high:
            raise SearchSpaceError(
                f"float {self.name!r}: low ({self.low}) > high ({self.high})"
            )
        if self.log and self.low <= 0:
            raise SearchSpaceError(
                f"float {self.name!r}: log scale requires low > 0"
            )

    def sample(self, rng: np.random.Generator) -> float:
        if self.log:
            return float(
                math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
            )
        return float(rng.uniform(self.low, self.high))

    def contains(self, value: Any) -> bool:
        if isinstance(value, bool) or not isinstance(
            value, (int, float, np.integer, np.floating)
        ):
            return False
        return self.low <= float(value) <= self.high

    def grid(self, resolution: int = 10) -> List[float]:
        if self.low == self.high:
            return [self.low]
        if self.log:
            return [
                float(v)
                for v in np.logspace(
                    math.log10(self.low), math.log10(self.high), resolution
                )
            ]
        return [float(v) for v in np.linspace(self.low, self.high, resolution)]

    def to_unit(self, value: Any) -> float:
        self.validate(value)
        if self.low == self.high:
            return 0.5
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high)
            return (math.log(float(value)) - lo) / (hi - lo)
        return (float(value) - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        u = min(max(float(u), 0.0), 1.0)
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high)
            return float(math.exp(lo + u * (hi - lo)))
        return float(self.low + u * (self.high - self.low))

    @property
    def cardinality(self) -> float:
        return math.inf if self.low < self.high else 1.0
