"""Parameter spaces and configurations.

A :class:`ParameterSpace` is an ordered collection of
:class:`~repro.space.parameters.Parameter` objects.  A
:class:`Configuration` assigns one value to every parameter of a space and is
the unit that search algorithms propose and trials evaluate.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, SearchSpaceError
from ..rng import SeedLike, make_rng
from .parameters import Parameter


class Configuration(Mapping):
    """An immutable assignment of values to the parameters of a space.

    Behaves as a read-only mapping from parameter name to value.  Two
    configurations over the same space compare equal iff all values match;
    configurations are hashable so they can key caches (the historical-result
    look-up of the Inference Tuning Server relies on this).
    """

    __slots__ = ("_space", "_values", "_key")

    def __init__(self, space: "ParameterSpace", values: Mapping[str, Any]):
        missing = [p.name for p in space if p.name not in values]
        if missing:
            raise ConfigurationError(f"missing values for parameters {missing}")
        extra = [name for name in values if name not in space.names]
        if extra:
            raise ConfigurationError(f"unknown parameters {extra}")
        validated: Dict[str, Any] = {}
        for parameter in space:
            validated[parameter.name] = parameter.validate(values[parameter.name])
        self._space = space
        self._values = validated
        self._key = tuple(
            (name, repr(validated[name])) for name in space.names
        )

    # -- mapping interface -----------------------------------------------
    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # -- identity ----------------------------------------------------------
    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Configuration) and self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Configuration({inner})"

    # -- helpers -----------------------------------------------------------
    @property
    def space(self) -> "ParameterSpace":
        return self._space

    def subset(self, kinds: Iterable[str]) -> Dict[str, Any]:
        """Values of parameters whose ``kind`` is in ``kinds``.

        The inference server caches results keyed by the *model*-kind subset
        only (§3.4): training-only parameters do not change the architecture,
        so their inference results can be reused.
        """
        wanted = set(kinds)
        return {
            p.name: self._values[p.name]
            for p in self._space
            if p.kind in wanted
        }

    def architecture_key(self) -> Tuple[Tuple[str, str], ...]:
        """Hashable key identifying the network architecture only."""
        return tuple(
            (name, repr(value))
            for name, value in sorted(self.subset(["model"]).items())
        )

    def to_unit_vector(self) -> np.ndarray:
        """Configuration as a point in the unit hypercube (for surrogates)."""
        return np.array(
            [p.to_unit(self._values[p.name]) for p in self._space],
            dtype=float,
        )

    def replace(self, **updates: Any) -> "Configuration":
        """A copy of this configuration with some values replaced."""
        values = dict(self._values)
        values.update(updates)
        return Configuration(self._space, values)

    def to_dict(self) -> Dict[str, Any]:
        return dict(self._values)

    def to_json(self) -> str:
        return json.dumps(self._values, sort_keys=True, default=repr)


class ParameterSpace:
    """An ordered, named collection of parameters.

    Parameters are kept in insertion order; that order defines the axes of
    the unit hypercube used by model-based search algorithms.
    """

    def __init__(self, parameters: Iterable[Parameter] = ()):
        self._parameters: Dict[str, Parameter] = {}
        for parameter in parameters:
            self.add(parameter)

    # -- construction ------------------------------------------------------
    def add(self, parameter: Parameter) -> "ParameterSpace":
        if parameter.name in self._parameters:
            raise SearchSpaceError(f"duplicate parameter {parameter.name!r}")
        self._parameters[parameter.name] = parameter
        return self

    # -- container interface ------------------------------------------------
    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters.values())

    def __len__(self) -> int:
        return len(self._parameters)

    def __contains__(self, name: str) -> bool:
        return name in self._parameters

    def __getitem__(self, name: str) -> Parameter:
        try:
            return self._parameters[name]
        except KeyError:
            raise SearchSpaceError(f"no parameter named {name!r}") from None

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, ParameterSpace)
            and list(self._parameters.values())
            == list(other._parameters.values())
        )

    def __repr__(self) -> str:
        return f"ParameterSpace({list(self._parameters.values())!r})"

    @property
    def names(self) -> List[str]:
        return list(self._parameters)

    @property
    def cardinality(self) -> float:
        """Number of distinct configurations (``inf`` if any axis is)."""
        total = 1.0
        for parameter in self:
            total *= parameter.cardinality
        return total

    def of_kind(self, *kinds: str) -> "ParameterSpace":
        """A sub-space restricted to parameters of the given kinds."""
        return ParameterSpace(p for p in self if p.kind in kinds)

    # -- sampling ------------------------------------------------------------
    def sample(self, rng: SeedLike = None) -> Configuration:
        """Draw one configuration uniformly at random."""
        generator = make_rng(rng)
        if not self._parameters:
            raise SearchSpaceError("cannot sample from an empty space")
        return Configuration(
            self, {p.name: p.sample(generator) for p in self}
        )

    def sample_many(self, count: int, rng: SeedLike = None) -> List[Configuration]:
        generator = make_rng(rng)
        return [self.sample(generator) for _ in range(count)]

    def grid(self, resolution: int = 10) -> List[Configuration]:
        """The full cartesian grid (used by grid search and Fig 10)."""
        if not self._parameters:
            raise SearchSpaceError("cannot enumerate an empty space")
        axes = [(p.name, p.grid(resolution)) for p in self]
        names = [name for name, _ in axes]
        combos = itertools.product(*(values for _, values in axes))
        return [
            Configuration(self, dict(zip(names, combo))) for combo in combos
        ]

    def configuration(self, **values: Any) -> Configuration:
        """Build a validated configuration from keyword values."""
        return Configuration(self, values)

    def from_unit_vector(self, vector: np.ndarray) -> Configuration:
        """Map a unit-hypercube point back to a configuration."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (len(self),):
            raise ConfigurationError(
                f"expected a vector of length {len(self)}, got {vector.shape}"
            )
        values = {
            p.name: p.from_unit(u) for p, u in zip(self, vector)
        }
        return Configuration(self, values)

    def merge(self, other: "ParameterSpace") -> "ParameterSpace":
        """A new space containing the parameters of both (names disjoint)."""
        return ParameterSpace(list(self) + list(other))
