"""Persistent trial database and the inference historical-result cache.

Also home of the schema shared with :mod:`repro.service`: the ``sessions``
and ``jobs`` tables behind the persistent tuning job queue.
"""

from .database import (
    BUSY_TIMEOUT_MS,
    MIGRATIONS,
    SCHEMA_VERSION,
    StoredInferenceResult,
    TrialDatabase,
)

__all__ = [
    "TrialDatabase",
    "StoredInferenceResult",
    "MIGRATIONS",
    "SCHEMA_VERSION",
    "BUSY_TIMEOUT_MS",
]
