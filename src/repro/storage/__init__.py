"""Persistent trial database and the inference historical-result cache.

Also home of the schema shared with :mod:`repro.service`: the ``sessions``
and ``jobs`` tables behind the persistent tuning job queue.
"""

from .database import (
    BUSY_TIMEOUT_MS,
    MIGRATIONS,
    NO_TARGET,
    SCHEMA_VERSION,
    StoredInferenceResult,
    StoredRecommendation,
    TrialDatabase,
)

__all__ = [
    "TrialDatabase",
    "StoredInferenceResult",
    "StoredRecommendation",
    "NO_TARGET",
    "MIGRATIONS",
    "SCHEMA_VERSION",
    "BUSY_TIMEOUT_MS",
]
