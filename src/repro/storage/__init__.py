"""Persistent trial database and the inference historical-result cache."""

from .database import StoredInferenceResult, TrialDatabase

__all__ = ["TrialDatabase", "StoredInferenceResult"]
