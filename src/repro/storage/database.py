"""Persistent trial database (the architecture box "Persistent Database").

Backed by sqlite3 (stdlib); ``path=":memory:"`` gives an ephemeral store
for tests.  Four tables:

* ``trials`` — every training trial the Model Tuning Server ran;
* ``inference_results`` — the Inference Tuning Server's historical
  look-up table (§3.4): optimal inference configuration and metrics keyed
  by architecture, so repeated architectures are never re-tuned;
* ``sessions`` — long-lived tuning sessions owned by :mod:`repro.service`
  (spec, lifecycle state, checkpoint blob for crash-safe resume);
* ``jobs`` — the persistent trial-evaluation job queue consumed by the
  service's parallel worker pool (lease-with-heartbeat ownership), with
  a ``shard`` column for the fleet's per-shard queues;
* ``machines`` — the :mod:`repro.fleet` machine registry: worker hosts
  with capability tags and liveness heartbeats;
* ``fleet_stats`` — crash-safe fleet counters (artifact federation hits,
  janitor reclaims) readable from any process;
* ``hub_state`` — the fleet hub's persisted incarnation epoch (bumped on
  every hub start so stale pre-crash frames can be fenced).

The schema is evolved through numbered migrations tracked in sqlite's
``PRAGMA user_version``, so databases written by older releases are
upgraded in place on open.  File-backed databases run in WAL journal mode
with a busy timeout so several worker *processes* can share one file
without ``database is locked`` failures.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .. import faults
from ..errors import StorageError

#: How long (ms) a connection waits on a locked database before failing;
#: generous because worker processes contend on the shared job queue.
BUSY_TIMEOUT_MS = 10_000

#: Transient sqlite failures worth retrying at the statement boundary
#: (a flaky disk or a lock that outlived the busy timeout); anything
#: else propagates immediately.
_TRANSIENT_MARKERS = ("disk i/o error", "database is locked",
                     "database table is locked")

#: Bounded retry envelope for transient statement failures.
IO_RETRIES = 4
IO_RETRY_BASE_S = 0.01


def _is_transient(error: sqlite3.OperationalError) -> bool:
    message = str(error).lower()
    return any(marker in message for marker in _TRANSIENT_MARKERS)

_SCHEMA_V1 = """
CREATE TABLE IF NOT EXISTS trials (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment TEXT NOT NULL,
    trial_id INTEGER NOT NULL,
    configuration TEXT NOT NULL,
    fidelity INTEGER NOT NULL,
    epochs INTEGER NOT NULL,
    data_fraction REAL NOT NULL,
    accuracy REAL NOT NULL,
    score REAL NOT NULL,
    train_runtime_s REAL NOT NULL,
    train_energy_j REAL NOT NULL,
    created_at REAL NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_trials_experiment ON trials (experiment);

CREATE TABLE IF NOT EXISTS inference_results (
    architecture_key TEXT NOT NULL,
    device TEXT NOT NULL,
    objective TEXT NOT NULL,
    configuration TEXT NOT NULL,
    batch_latency_s REAL NOT NULL,
    throughput_sps REAL NOT NULL,
    energy_per_sample_j REAL NOT NULL,
    power_w REAL NOT NULL,
    tuning_runtime_s REAL NOT NULL,
    tuning_energy_j REAL NOT NULL,
    PRIMARY KEY (architecture_key, device, objective)
);
"""

#: v2 — trials history queries sort by insertion time; ``created_at`` is
#: stamped by :meth:`TrialDatabase.record_trial` from this version on.
_SCHEMA_V2 = """
CREATE INDEX IF NOT EXISTS idx_trials_experiment_created
    ON trials (experiment, created_at);
"""

#: v3 — the service layer: tuning sessions and the trial-evaluation job
#: queue (states: queued/leased/done/failed).
_SCHEMA_V3 = """
CREATE TABLE IF NOT EXISTS sessions (
    id TEXT PRIMARY KEY,
    spec TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'queued',
    checkpoint BLOB,
    result TEXT,
    error TEXT,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_sessions_state ON sessions (state, created_at);

CREATE TABLE IF NOT EXISTS jobs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    session_id TEXT NOT NULL,
    trial_id INTEGER NOT NULL,
    payload TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'queued',
    attempts INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 3,
    lease_owner TEXT,
    lease_expires_at REAL,
    next_retry_at REAL NOT NULL DEFAULT 0,
    result BLOB,
    error TEXT,
    created_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL,
    UNIQUE (session_id, trial_id)
);
CREATE INDEX IF NOT EXISTS idx_jobs_claim ON jobs (state, next_retry_at, id);
CREATE INDEX IF NOT EXISTS idx_jobs_session ON jobs (session_id, state);
"""

#: v4 — the advisor's tuning knowledge base: one deployment
#: recommendation per (workload, device, objective, target, system),
#: distilled from a finished session.  ``target_accuracy`` uses -1.0 for
#: "no target" so the uniqueness key has no NULLs; ``signature`` is the
#: JSON workload signature used for nearest-workload matching.
_SCHEMA_V4 = """
CREATE TABLE IF NOT EXISTS recommendations (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    workload TEXT NOT NULL,
    device TEXT NOT NULL,
    objective TEXT NOT NULL,
    target_accuracy REAL NOT NULL DEFAULT -1.0,
    system TEXT NOT NULL DEFAULT 'edgetune',
    signature TEXT NOT NULL,
    session_id TEXT,
    best_configuration TEXT NOT NULL,
    best_accuracy REAL NOT NULL,
    best_score REAL NOT NULL,
    num_trials INTEGER NOT NULL,
    tuning_runtime_s REAL NOT NULL,
    tuning_energy_j REAL NOT NULL,
    inference TEXT,
    created_at REAL NOT NULL,
    UNIQUE (workload, device, objective, target_accuracy, system)
);
CREATE INDEX IF NOT EXISTS idx_recommendations_device
    ON recommendations (device, objective);
"""

#: v5 — failure containment: the ``dead_letter`` quarantine for jobs
#: that exhausted their retries (full error history preserved for
#: forensics and ``service deadletter retry``), plus a per-job
#: ``error_history`` JSON column accumulating one entry per failed
#: attempt.
_SCHEMA_V5 = """
CREATE TABLE IF NOT EXISTS dead_letter (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    session_id TEXT NOT NULL,
    trial_id INTEGER NOT NULL,
    payload TEXT NOT NULL,
    attempts INTEGER NOT NULL,
    error TEXT,
    error_history TEXT NOT NULL DEFAULT '[]',
    created_at REAL NOT NULL,
    quarantined_at REAL NOT NULL,
    UNIQUE (session_id, trial_id)
);
CREATE INDEX IF NOT EXISTS idx_dead_letter_session
    ON dead_letter (session_id);
"""

#: v6 — the trial artifact cache (:mod:`repro.artifacts`): one row per
#: content-addressed trial result.  ``key`` is the blake2b trial key;
#: ``blob`` holds the pickled payload inline for ``:memory:`` databases,
#: while file-backed databases keep payloads in a ``<db>.artifacts/``
#: sidecar directory (atomic rename writes) and leave ``blob`` NULL.
#: ``size_bytes``/``hits``/``last_hit_at`` feed ``service gc`` and the
#: cache-hit telemetry.
_SCHEMA_V6 = """
CREATE TABLE IF NOT EXISTS artifacts (
    key TEXT PRIMARY KEY,
    workload TEXT NOT NULL,
    trial_id INTEGER NOT NULL,
    epochs INTEGER NOT NULL,
    data_fraction REAL NOT NULL,
    size_bytes INTEGER NOT NULL,
    hits INTEGER NOT NULL DEFAULT 0,
    blob BLOB,
    created_at REAL NOT NULL,
    last_hit_at REAL
);
CREATE INDEX IF NOT EXISTS idx_artifacts_created ON artifacts (created_at);
"""

#: v7 — the multi-host tuning fleet (:mod:`repro.fleet`): the ``machines``
#: registry (worker hosts with capability tags and liveness heartbeats),
#: the ``fleet_stats`` counter table (crash-safe federation/janitor
#: accounting readable by ``service status`` from any process), and a
#: ``shard`` column on ``jobs`` so per-shard queues can be leased
#: independently (``idx_jobs_claim_shard``).  The column itself is added
#: by ``_ensure_column`` during migration (older files lack it).
_SCHEMA_V7 = """
CREATE TABLE IF NOT EXISTS machines (
    id TEXT PRIMARY KEY,
    hostname TEXT NOT NULL,
    shard INTEGER NOT NULL DEFAULT 0,
    state TEXT NOT NULL DEFAULT 'alive',
    capabilities TEXT NOT NULL DEFAULT '{}',
    jobs_done INTEGER NOT NULL DEFAULT 0,
    registered_at REAL NOT NULL,
    last_heartbeat_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_machines_state ON machines (state, shard);

CREATE TABLE IF NOT EXISTS fleet_stats (
    key TEXT PRIMARY KEY,
    value REAL NOT NULL DEFAULT 0
);

CREATE INDEX IF NOT EXISTS idx_jobs_claim_shard
    ON jobs (shard, state, next_retry_at, id);
"""

#: v8 — crash-safe hub restarts and end-to-end artifact integrity:
#: ``hub_state`` persists the fleet hub's monotonically increasing
#: incarnation epoch (every lease embeds it; frames from a pre-crash
#: epoch are rejected as fenced), ``jobs.lease_epoch`` records which
#: incarnation granted each lease, and ``artifacts.checksum`` carries a
#: blake2b digest of the payload verified on every read and federation
#: transfer (both columns added by ``_ensure_column``).
_SCHEMA_V8 = """
CREATE TABLE IF NOT EXISTS hub_state (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: Ordered (version, script) migration ladder; each script must be safe to
#: run on a database that already contains the objects it creates (older
#: releases wrote the v1 tables without stamping ``user_version``).
MIGRATIONS: Tuple[Tuple[int, str], ...] = (
    (1, _SCHEMA_V1),
    (2, _SCHEMA_V2),
    (3, _SCHEMA_V3),
    (4, _SCHEMA_V4),
    (5, _SCHEMA_V5),
    (6, _SCHEMA_V6),
    (7, _SCHEMA_V7),
    (8, _SCHEMA_V8),
)

SCHEMA_VERSION = MIGRATIONS[-1][0]


#: Sentinel stored in ``recommendations.target_accuracy`` when the session
#: ran without a target (sqlite UNIQUE treats NULLs as distinct, which
#: would break the replace-on-reindex contract).
NO_TARGET = -1.0


@dataclass
class StoredRecommendation:
    """One knowledge-base row: the distilled outcome of a tuning session.

    ``inference`` carries the session's deployment recommendation
    (configuration + measured metrics) as a JSON-safe dict, ``None`` when
    the session ran without an inference server (baselines).
    """

    workload: str
    device: str
    objective: str
    target_accuracy: Optional[float]
    system: str
    signature: Dict[str, Any]
    session_id: Optional[str]
    best_configuration: Dict[str, Any]
    best_accuracy: float
    best_score: float
    num_trials: int
    tuning_runtime_s: float
    tuning_energy_j: float
    inference: Optional[Dict[str, Any]]
    created_at: float = 0.0


@dataclass
class StoredInferenceResult:
    """A cached inference-tuning outcome."""

    architecture_key: str
    device: str
    objective: str
    configuration: Dict[str, Any]
    batch_latency_s: float
    throughput_sps: float
    energy_per_sample_j: float
    power_w: float
    tuning_runtime_s: float
    tuning_energy_j: float


class TrialDatabase:
    """Thread-safe sqlite wrapper used by both tuning servers.

    The same class is shared by the service layer: every coordinator and
    worker *process* opens its own ``TrialDatabase`` over one file; WAL
    journaling plus the busy timeout make that safe.
    """

    def __init__(
        self, path: str = ":memory:", busy_timeout_ms: int = BUSY_TIMEOUT_MS
    ):
        try:
            # Autocommit mode: every statement is atomic on its own and
            # multi-statement sections use the explicit :meth:`transaction`
            # helper — required for the job queue's BEGIN IMMEDIATE claims.
            self._connection = sqlite3.connect(
                path, check_same_thread=False, isolation_level=None,
                timeout=busy_timeout_ms / 1000.0,
            )
            self._connection.execute(
                f"PRAGMA busy_timeout = {int(busy_timeout_ms)}"
            )
            if path != ":memory:":
                # WAL lets worker processes read while the coordinator
                # writes (and vice versa) instead of raising
                # "database is locked"; a no-op for in-memory stores.
                self._connection.execute("PRAGMA journal_mode = WAL")
                self._connection.execute("PRAGMA synchronous = NORMAL")
            self._migrate()
        except sqlite3.Error as error:
            raise StorageError(f"could not open trial database: {error}")
        self._lock = threading.RLock()
        self.path = path

    # -- schema lifecycle ---------------------------------------------------
    def _migrate(self) -> None:
        """Bring the schema up to :data:`SCHEMA_VERSION` in-place."""
        (version,) = self._connection.execute(
            "PRAGMA user_version"
        ).fetchone()
        for target, script in MIGRATIONS:
            if version >= target:
                continue
            if target == 2:
                self._ensure_column(
                    "trials", "created_at", "REAL NOT NULL DEFAULT 0"
                )
            if target == 5:
                self._ensure_column(
                    "jobs", "error_history", "TEXT NOT NULL DEFAULT '[]'"
                )
            if target == 7:
                self._ensure_column(
                    "jobs", "shard", "INTEGER NOT NULL DEFAULT 0"
                )
            if target == 8:
                self._ensure_column(
                    "jobs", "lease_epoch", "INTEGER NOT NULL DEFAULT 0"
                )
                self._ensure_column("artifacts", "checksum", "TEXT")
            self._connection.executescript(script)
            self._connection.execute(f"PRAGMA user_version = {target}")
            version = target

    def _ensure_column(self, table: str, column: str, decl: str) -> None:
        """Add ``column`` to ``table`` when a pre-migration file lacks it."""
        present = {
            row[1]
            for row in self._connection.execute(
                f"PRAGMA table_info({table})"
            ).fetchall()
        }
        if column not in present:
            self._connection.execute(
                f"ALTER TABLE {table} ADD COLUMN {column} {decl}"
            )

    @property
    def schema_version(self) -> int:
        (version,) = self._connection.execute(
            "PRAGMA user_version"
        ).fetchone()
        return int(version)

    # -- low-level access (service layer) -----------------------------------
    def execute(self, sql: str, args: Tuple = ()) -> sqlite3.Cursor:
        """Run one statement under the instance lock (autocommitted).

        Transient failures (disk I/O errors, locks outliving the busy
        timeout — or their injected equivalents via the ``storage.io``
        fault site) are retried with exponential backoff; statements are
        atomic in autocommit mode, so the retry is always safe.
        """
        delay = IO_RETRY_BASE_S
        for attempt in range(IO_RETRIES + 1):
            try:
                with self._lock:
                    faults.fault_point("storage.io")
                    return self._connection.execute(sql, args)
            except sqlite3.OperationalError as error:
                if attempt >= IO_RETRIES or not _is_transient(error):
                    raise
                time.sleep(delay)
                delay *= 2.0
        raise StorageError("unreachable")  # pragma: no cover

    @contextmanager
    def _write(self) -> Iterator[sqlite3.Connection]:
        """A single logical write: autocommitted on its own, but *joining*
        an enclosing :meth:`transaction` when one is open (committing
        there would prematurely end the caller's atomic section)."""
        with self._lock:
            if self._connection.in_transaction:
                yield self._connection
            else:
                with self._connection:
                    yield self._connection

    @contextmanager
    def transaction(self, immediate: bool = True) -> Iterator[sqlite3.Connection]:
        """A serialized read-modify-write section.

        ``immediate`` grabs the sqlite write lock up front, which is what
        makes the job queue's claim step atomic across processes.  Only
        the BEGIN is retried on transient errors: nothing has happened
        yet, so retrying it cannot double-apply the caller's writes.
        """
        with self._lock:
            self._begin(immediate)
            try:
                yield self._connection
            except BaseException:
                self._connection.execute("ROLLBACK")
                raise
            else:
                self._connection.execute("COMMIT")

    def _begin(self, immediate: bool) -> None:
        statement = "BEGIN IMMEDIATE" if immediate else "BEGIN"
        delay = IO_RETRY_BASE_S
        for attempt in range(IO_RETRIES + 1):
            try:
                faults.fault_point("storage.io")
                self._connection.execute(statement)
                return
            except sqlite3.OperationalError as error:
                if attempt >= IO_RETRIES or not _is_transient(error):
                    raise
                time.sleep(delay)
                delay *= 2.0

    # -- trials ------------------------------------------------------------
    def record_trial(
        self,
        experiment: str,
        trial_id: int,
        configuration: Dict[str, Any],
        fidelity: int,
        epochs: int,
        data_fraction: float,
        accuracy: float,
        score: float,
        train_runtime_s: float,
        train_energy_j: float,
        created_at: Optional[float] = None,
    ) -> None:
        with self._write():
            self._connection.execute(
                "INSERT INTO trials (experiment, trial_id, configuration, "
                "fidelity, epochs, data_fraction, accuracy, score, "
                "train_runtime_s, train_energy_j, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    experiment,
                    trial_id,
                    json.dumps(configuration, sort_keys=True, default=repr),
                    fidelity,
                    epochs,
                    data_fraction,
                    accuracy,
                    score,
                    train_runtime_s,
                    train_energy_j,
                    time.time() if created_at is None else float(created_at),
                ),
            )

    def trials_for(self, experiment: str) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT trial_id, configuration, fidelity, epochs, "
                "data_fraction, accuracy, score, train_runtime_s, "
                "train_energy_j FROM trials WHERE experiment = ? ORDER BY id",
                (experiment,),
            ).fetchall()
        return [
            {
                "trial_id": row[0],
                "configuration": json.loads(row[1]),
                "fidelity": row[2],
                "epochs": row[3],
                "data_fraction": row[4],
                "accuracy": row[5],
                "score": row[6],
                "train_runtime_s": row[7],
                "train_energy_j": row[8],
            }
            for row in rows
        ]

    def history(
        self, experiment: Optional[str] = None, limit: int = 20
    ) -> List[Dict[str, Any]]:
        """Most recent trials first (status dashboards, ``service status``)."""
        query = (
            "SELECT experiment, trial_id, accuracy, score, created_at "
            "FROM trials"
        )
        args: List[Any] = []
        if experiment is not None:
            query += " WHERE experiment = ?"
            args.append(experiment)
        query += " ORDER BY created_at DESC, id DESC LIMIT ?"
        args.append(int(limit))
        with self._lock:
            rows = self._connection.execute(query, tuple(args)).fetchall()
        return [
            {
                "experiment": row[0],
                "trial_id": row[1],
                "accuracy": row[2],
                "score": row[3],
                "created_at": row[4],
            }
            for row in rows
        ]

    def trial_count(self, experiment: Optional[str] = None) -> int:
        query = "SELECT COUNT(*) FROM trials"
        args: tuple = ()
        if experiment is not None:
            query += " WHERE experiment = ?"
            args = (experiment,)
        with self._lock:
            (count,) = self._connection.execute(query, args).fetchone()
        return int(count)

    # -- inference cache ------------------------------------------------------
    def store_inference(self, result: StoredInferenceResult) -> None:
        with self._write():
            self._connection.execute(
                "INSERT OR REPLACE INTO inference_results VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    result.architecture_key,
                    result.device,
                    result.objective,
                    json.dumps(
                        result.configuration, sort_keys=True, default=repr
                    ),
                    result.batch_latency_s,
                    result.throughput_sps,
                    result.energy_per_sample_j,
                    result.power_w,
                    result.tuning_runtime_s,
                    result.tuning_energy_j,
                ),
            )

    def lookup_inference(
        self, architecture_key: str, device: str, objective: str
    ) -> Optional[StoredInferenceResult]:
        with self._lock:
            row = self._connection.execute(
                "SELECT configuration, batch_latency_s, throughput_sps, "
                "energy_per_sample_j, power_w, tuning_runtime_s, "
                "tuning_energy_j FROM inference_results WHERE "
                "architecture_key = ? AND device = ? AND objective = ?",
                (architecture_key, device, objective),
            ).fetchone()
        if row is None:
            return None
        return StoredInferenceResult(
            architecture_key=architecture_key,
            device=device,
            objective=objective,
            configuration=json.loads(row[0]),
            batch_latency_s=row[1],
            throughput_sps=row[2],
            energy_per_sample_j=row[3],
            power_w=row[4],
            tuning_runtime_s=row[5],
            tuning_energy_j=row[6],
        )

    def inference_cache_size(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM inference_results"
            ).fetchone()
        return int(count)

    # -- recommendations (advisor knowledge base) ---------------------------
    _RECOMMENDATION_COLUMNS = (
        "workload, device, objective, target_accuracy, system, signature, "
        "session_id, best_configuration, best_accuracy, best_score, "
        "num_trials, tuning_runtime_s, tuning_energy_j, inference, "
        "created_at"
    )

    def store_recommendation(self, rec: StoredRecommendation) -> None:
        """Insert or replace the recommendation for the row's key."""
        created = rec.created_at or time.time()
        with self._write():
            self._connection.execute(
                "INSERT OR REPLACE INTO recommendations "
                f"({self._RECOMMENDATION_COLUMNS}) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    rec.workload,
                    rec.device,
                    rec.objective,
                    NO_TARGET if rec.target_accuracy is None
                    else float(rec.target_accuracy),
                    rec.system,
                    json.dumps(rec.signature, sort_keys=True),
                    rec.session_id,
                    json.dumps(
                        rec.best_configuration, sort_keys=True, default=repr
                    ),
                    rec.best_accuracy,
                    rec.best_score,
                    rec.num_trials,
                    rec.tuning_runtime_s,
                    rec.tuning_energy_j,
                    None if rec.inference is None
                    else json.dumps(rec.inference, sort_keys=True),
                    created,
                ),
            )

    @staticmethod
    def _recommendation_of(row: Tuple) -> StoredRecommendation:
        return StoredRecommendation(
            workload=row[0],
            device=row[1],
            objective=row[2],
            target_accuracy=None if row[3] == NO_TARGET else row[3],
            system=row[4],
            signature=json.loads(row[5]),
            session_id=row[6],
            best_configuration=json.loads(row[7]),
            best_accuracy=row[8],
            best_score=row[9],
            num_trials=row[10],
            tuning_runtime_s=row[11],
            tuning_energy_j=row[12],
            inference=json.loads(row[13]) if row[13] else None,
            created_at=row[14],
        )

    def lookup_recommendation(
        self,
        workload: str,
        device: str,
        objective: str,
        target_accuracy: Optional[float] = None,
        system: Optional[str] = None,
    ) -> Optional[StoredRecommendation]:
        """Exact-key lookup; ``system=None`` matches any system (best
        accuracy first, so EdgeTune rows win over weaker baselines)."""
        query = (
            f"SELECT {self._RECOMMENDATION_COLUMNS} FROM recommendations "
            "WHERE workload = ? AND device = ? AND objective = ? "
            "AND target_accuracy = ?"
        )
        args: List[Any] = [
            workload, device, objective,
            NO_TARGET if target_accuracy is None else float(target_accuracy),
        ]
        if system is not None:
            query += " AND system = ?"
            args.append(system)
        query += " ORDER BY best_accuracy DESC, created_at DESC LIMIT 1"
        with self._lock:
            row = self._connection.execute(query, tuple(args)).fetchone()
        return None if row is None else self._recommendation_of(row)

    def all_recommendations(
        self, device: Optional[str] = None, objective: Optional[str] = None
    ) -> List[StoredRecommendation]:
        """Every stored recommendation, optionally filtered — the candidate
        pool for nearest-signature matching of unseen workloads."""
        query = (
            f"SELECT {self._RECOMMENDATION_COLUMNS} FROM recommendations"
        )
        clauses, args = [], []
        if device is not None:
            clauses.append("device = ?")
            args.append(device)
        if objective is not None:
            clauses.append("objective = ?")
            args.append(objective)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY workload, created_at"
        with self._lock:
            rows = self._connection.execute(query, tuple(args)).fetchall()
        return [self._recommendation_of(row) for row in rows]

    def recommendation_count(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM recommendations"
            ).fetchone()
        return int(count)

    # -- export / analysis -------------------------------------------------
    def export_json(self, path: str) -> None:
        """Dump both tables to a JSON file (portable experiment archive)."""
        with self._lock:
            experiments = [
                row[0]
                for row in self._connection.execute(
                    "SELECT DISTINCT experiment FROM trials"
                ).fetchall()
            ]
        payload = {
            "trials": {name: self.trials_for(name) for name in experiments},
            "inference_results": self._all_inference(),
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)

    def _all_inference(self) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT architecture_key, device, objective, configuration, "
                "batch_latency_s, throughput_sps, energy_per_sample_j, "
                "power_w, tuning_runtime_s, tuning_energy_j "
                "FROM inference_results"
            ).fetchall()
        return [
            {
                "architecture_key": row[0],
                "device": row[1],
                "objective": row[2],
                "configuration": json.loads(row[3]),
                "batch_latency_s": row[4],
                "throughput_sps": row[5],
                "energy_per_sample_j": row[6],
                "power_w": row[7],
                "tuning_runtime_s": row[8],
                "tuning_energy_j": row[9],
            }
            for row in rows
        ]

    def experiment_summary(self, experiment: str) -> Dict[str, Any]:
        """Aggregate statistics for one experiment's trials."""
        rows = self.trials_for(experiment)
        if not rows:
            raise StorageError(f"no trials recorded for {experiment!r}")
        accuracies = [row["accuracy"] for row in rows]
        runtimes = [row["train_runtime_s"] for row in rows]
        energies = [row["train_energy_j"] for row in rows]
        return {
            "experiment": experiment,
            "trials": len(rows),
            "best_accuracy": max(accuracies),
            "total_train_runtime_s": sum(runtimes),
            "total_train_energy_j": sum(energies),
            "max_fidelity": max(row["fidelity"] for row in rows),
        }

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "TrialDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
