"""Persistent trial database (the architecture box "Persistent Database").

Backed by sqlite3 (stdlib); ``path=":memory:"`` gives an ephemeral store
for tests.  Two tables:

* ``trials`` — every training trial the Model Tuning Server ran;
* ``inference_results`` — the Inference Tuning Server's historical
  look-up table (§3.4): optimal inference configuration and metrics keyed
  by architecture, so repeated architectures are never re-tuned.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import StorageError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment TEXT NOT NULL,
    trial_id INTEGER NOT NULL,
    configuration TEXT NOT NULL,
    fidelity INTEGER NOT NULL,
    epochs INTEGER NOT NULL,
    data_fraction REAL NOT NULL,
    accuracy REAL NOT NULL,
    score REAL NOT NULL,
    train_runtime_s REAL NOT NULL,
    train_energy_j REAL NOT NULL,
    created_at REAL NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_trials_experiment ON trials (experiment);

CREATE TABLE IF NOT EXISTS inference_results (
    architecture_key TEXT NOT NULL,
    device TEXT NOT NULL,
    objective TEXT NOT NULL,
    configuration TEXT NOT NULL,
    batch_latency_s REAL NOT NULL,
    throughput_sps REAL NOT NULL,
    energy_per_sample_j REAL NOT NULL,
    power_w REAL NOT NULL,
    tuning_runtime_s REAL NOT NULL,
    tuning_energy_j REAL NOT NULL,
    PRIMARY KEY (architecture_key, device, objective)
);
"""


@dataclass
class StoredInferenceResult:
    """A cached inference-tuning outcome."""

    architecture_key: str
    device: str
    objective: str
    configuration: Dict[str, Any]
    batch_latency_s: float
    throughput_sps: float
    energy_per_sample_j: float
    power_w: float
    tuning_runtime_s: float
    tuning_energy_j: float


class TrialDatabase:
    """Thread-safe sqlite wrapper used by both tuning servers."""

    def __init__(self, path: str = ":memory:"):
        try:
            self._connection = sqlite3.connect(path, check_same_thread=False)
            self._connection.executescript(_SCHEMA)
        except sqlite3.Error as error:
            raise StorageError(f"could not open trial database: {error}")
        self._lock = threading.Lock()
        self.path = path

    # -- trials ------------------------------------------------------------
    def record_trial(
        self,
        experiment: str,
        trial_id: int,
        configuration: Dict[str, Any],
        fidelity: int,
        epochs: int,
        data_fraction: float,
        accuracy: float,
        score: float,
        train_runtime_s: float,
        train_energy_j: float,
    ) -> None:
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT INTO trials (experiment, trial_id, configuration, "
                "fidelity, epochs, data_fraction, accuracy, score, "
                "train_runtime_s, train_energy_j) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    experiment,
                    trial_id,
                    json.dumps(configuration, sort_keys=True, default=repr),
                    fidelity,
                    epochs,
                    data_fraction,
                    accuracy,
                    score,
                    train_runtime_s,
                    train_energy_j,
                ),
            )

    def trials_for(self, experiment: str) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT trial_id, configuration, fidelity, epochs, "
                "data_fraction, accuracy, score, train_runtime_s, "
                "train_energy_j FROM trials WHERE experiment = ? ORDER BY id",
                (experiment,),
            ).fetchall()
        return [
            {
                "trial_id": row[0],
                "configuration": json.loads(row[1]),
                "fidelity": row[2],
                "epochs": row[3],
                "data_fraction": row[4],
                "accuracy": row[5],
                "score": row[6],
                "train_runtime_s": row[7],
                "train_energy_j": row[8],
            }
            for row in rows
        ]

    def trial_count(self, experiment: Optional[str] = None) -> int:
        query = "SELECT COUNT(*) FROM trials"
        args: tuple = ()
        if experiment is not None:
            query += " WHERE experiment = ?"
            args = (experiment,)
        with self._lock:
            (count,) = self._connection.execute(query, args).fetchone()
        return int(count)

    # -- inference cache ------------------------------------------------------
    def store_inference(self, result: StoredInferenceResult) -> None:
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO inference_results VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    result.architecture_key,
                    result.device,
                    result.objective,
                    json.dumps(
                        result.configuration, sort_keys=True, default=repr
                    ),
                    result.batch_latency_s,
                    result.throughput_sps,
                    result.energy_per_sample_j,
                    result.power_w,
                    result.tuning_runtime_s,
                    result.tuning_energy_j,
                ),
            )

    def lookup_inference(
        self, architecture_key: str, device: str, objective: str
    ) -> Optional[StoredInferenceResult]:
        with self._lock:
            row = self._connection.execute(
                "SELECT configuration, batch_latency_s, throughput_sps, "
                "energy_per_sample_j, power_w, tuning_runtime_s, "
                "tuning_energy_j FROM inference_results WHERE "
                "architecture_key = ? AND device = ? AND objective = ?",
                (architecture_key, device, objective),
            ).fetchone()
        if row is None:
            return None
        return StoredInferenceResult(
            architecture_key=architecture_key,
            device=device,
            objective=objective,
            configuration=json.loads(row[0]),
            batch_latency_s=row[1],
            throughput_sps=row[2],
            energy_per_sample_j=row[3],
            power_w=row[4],
            tuning_runtime_s=row[5],
            tuning_energy_j=row[6],
        )

    def inference_cache_size(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM inference_results"
            ).fetchone()
        return int(count)

    # -- export / analysis -------------------------------------------------
    def export_json(self, path: str) -> None:
        """Dump both tables to a JSON file (portable experiment archive)."""
        with self._lock:
            experiments = [
                row[0]
                for row in self._connection.execute(
                    "SELECT DISTINCT experiment FROM trials"
                ).fetchall()
            ]
        payload = {
            "trials": {name: self.trials_for(name) for name in experiments},
            "inference_results": self._all_inference(),
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)

    def _all_inference(self) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._connection.execute(
                "SELECT architecture_key, device, objective, configuration, "
                "batch_latency_s, throughput_sps, energy_per_sample_j, "
                "power_w, tuning_runtime_s, tuning_energy_j "
                "FROM inference_results"
            ).fetchall()
        return [
            {
                "architecture_key": row[0],
                "device": row[1],
                "objective": row[2],
                "configuration": json.loads(row[3]),
                "batch_latency_s": row[4],
                "throughput_sps": row[5],
                "energy_per_sample_j": row[6],
                "power_w": row[7],
                "tuning_runtime_s": row[8],
                "tuning_energy_j": row[9],
            }
            for row in rows
        ]

    def experiment_summary(self, experiment: str) -> Dict[str, Any]:
        """Aggregate statistics for one experiment's trials."""
        rows = self.trials_for(experiment)
        if not rows:
            raise StorageError(f"no trials recorded for {experiment!r}")
        accuracies = [row["accuracy"] for row in rows]
        runtimes = [row["train_runtime_s"] for row in rows]
        energies = [row["train_energy_j"] for row in rows]
        return {
            "experiment": experiment,
            "trials": len(rows),
            "best_accuracy": max(accuracies),
            "total_train_runtime_s": sum(runtimes),
            "total_train_energy_j": sum(energies),
            "max_fidelity": max(row["fidelity"] for row in rows),
        }

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "TrialDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
