"""Measurement records, aggregation helpers, and service meters."""

from .meters import Counter, Gauge, Meter, MeterRegistry
from .metrics import (
    InferenceMeasurement,
    MetricSummary,
    TrainingMeasurement,
    percent_error,
)

__all__ = [
    "TrainingMeasurement",
    "InferenceMeasurement",
    "MetricSummary",
    "percent_error",
    "Counter",
    "Gauge",
    "Meter",
    "MeterRegistry",
]
