"""Measurement records and aggregation helpers."""

from .metrics import (
    InferenceMeasurement,
    MetricSummary,
    TrainingMeasurement,
    percent_error,
)

__all__ = [
    "TrainingMeasurement",
    "InferenceMeasurement",
    "MetricSummary",
    "percent_error",
]
