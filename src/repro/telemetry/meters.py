"""Lightweight operational meters for the tuning service.

Distinct from :mod:`repro.telemetry.metrics` (simulated physical
measurements): meters track *real* operational quantities — queue depth
over time, jobs per worker, wave latencies — cheaply enough to sample in
the coordinator's poll loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .metrics import MetricSummary

#: Canonical counter names for the failure-containment path, so the
#: coordinator, CLI and tests agree on spelling.
FAULTS_INJECTED = "faults.injected"
FAILURES_SUBSTITUTED = "failures.substituted"
FAILURES_DEAD_LETTERED = "failures.dead_lettered"
FAILURES_TIMEOUTS = "failures.timeouts"


@dataclass
class Counter:
    """Monotonic event count (jobs completed, retries, respawns)."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += int(amount)


@dataclass
class Gauge:
    """Last-value-wins measurement (current queue depth, live workers)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Meter:
    """A sampled series with summary statistics (kept fully in memory;
    service sessions run at most a few thousand samples)."""

    name: str
    samples: List[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self.samples.append(float(value))

    def summary(self) -> Optional[MetricSummary]:
        if not self.samples:
            return None
        return MetricSummary.of(self.samples)


class MeterRegistry:
    """Named meters for one coordinator run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._meters: Dict[str, Meter] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge(name))

    def meter(self, name: str) -> Meter:
        return self._meters.setdefault(name, Meter(name))

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict dump (JSON-safe) for status output and session
        result summaries."""
        out: Dict[str, Any] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            out[name] = gauge.value
        for name, meter in sorted(self._meters.items()):
            summary = meter.summary()
            if summary is None:
                continue
            out[name] = {
                "count": summary.count,
                "mean": summary.mean,
                "min": summary.minimum,
                "max": summary.maximum,
                "p50": summary.p50,
                "p90": summary.p90,
                "p99": summary.p99,
            }
        return out
