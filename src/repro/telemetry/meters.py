"""Lightweight operational meters for the tuning service.

Distinct from :mod:`repro.telemetry.metrics` (simulated physical
measurements): meters track *real* operational quantities — queue depth
over time, jobs per worker, wave latencies — cheaply enough to sample in
the coordinator's poll loop.

Thread safety: the advisor's TCP server mutates meters from its
per-connection handler threads while the drain path snapshots them, so
every mutation and read goes through a per-instrument lock (and the
registry guards its name tables the same way).  The locks are plain
``threading.Lock`` — uncontended acquisition is tens of nanoseconds,
invisible next to the work being metered.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .metrics import MetricSummary

#: Canonical counter names for the failure-containment path, so the
#: coordinator, CLI and tests agree on spelling.
FAULTS_INJECTED = "faults.injected"
FAILURES_SUBSTITUTED = "failures.substituted"
FAILURES_DEAD_LETTERED = "failures.dead_lettered"
FAILURES_TIMEOUTS = "failures.timeouts"


@dataclass
class Counter:
    """Monotonic event count (jobs completed, retries, respawns)."""

    name: str
    value: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += int(amount)


@dataclass
class Gauge:
    """Last-value-wins measurement (current queue depth, live workers)."""

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


@dataclass
class Meter:
    """A sampled series with summary statistics (kept fully in memory;
    service sessions run at most a few thousand samples)."""

    name: str
    samples: List[float] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, value: float) -> None:
        with self._lock:
            self.samples.append(float(value))

    def summary(self) -> Optional[MetricSummary]:
        with self._lock:
            if not self.samples:
                return None
            samples = list(self.samples)
        return MetricSummary.of(samples)


class MeterRegistry:
    """Named meters for one coordinator run (safe to share across the
    advisor server's handler threads)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._meters: Dict[str, Meter] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge(name))

    def meter(self, name: str) -> Meter:
        with self._lock:
            return self._meters.setdefault(name, Meter(name))

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict dump (JSON-safe) for status output and session
        result summaries."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            meters = sorted(self._meters.items())
        out: Dict[str, Any] = {}
        for name, counter in counters:
            out[name] = counter.value
        for name, gauge in gauges:
            out[name] = gauge.value
        for name, meter in meters:
            summary = meter.summary()
            if summary is None:
                continue
            out[name] = {
                "count": summary.count,
                "mean": summary.mean,
                "min": summary.minimum,
                "max": summary.maximum,
                "p50": summary.p50,
                "p90": summary.p90,
                "p99": summary.p99,
            }
        return out
