"""Measurement records produced by the hardware emulator.

All quantities live in *simulated* physical units (seconds, joules):
the emulator converts FLOP tallies from real numpy training into
device-dependent runtime and energy, so experiments are deterministic and
hardware-independent while retaining realistic magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class TrainingMeasurement:
    """Simulated cost of one training run (one trial's training phase)."""

    runtime_s: float
    energy_j: float
    #: Average power drawn during the run, W.
    power_w: float
    #: Peak working-set size, bytes (drives the memory model).
    working_set_bytes: int
    device: str
    gpus: int = 0
    cores: int = 1

    @property
    def runtime_minutes(self) -> float:
        return self.runtime_s / 60.0

    @property
    def energy_kj(self) -> float:
        return self.energy_j / 1e3


@dataclass(frozen=True)
class InferenceMeasurement:
    """Simulated steady-state inference performance of one configuration."""

    #: Latency of one batched inference call, seconds.
    batch_latency_s: float
    #: Samples per second at steady state.
    throughput_sps: float
    #: Energy per single sample, joules.
    energy_per_sample_j: float
    #: Average power while serving, W.
    power_w: float
    working_set_bytes: int
    device: str
    batch_size: int = 1
    cores: int = 1

    @property
    def latency_per_sample_s(self) -> float:
        return self.batch_latency_s / max(self.batch_size, 1)


@dataclass
class MetricSummary:
    """Aggregate of a series of scalar observations."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float = 0.0

    @classmethod
    def of(cls, values: List[float]) -> "MetricSummary":
        if not values:
            raise ValueError("cannot summarise an empty series")
        ordered = sorted(values)

        def percentile(q: float) -> float:
            index = min(int(q * (len(ordered) - 1)), len(ordered) - 1)
            return ordered[index]

        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=percentile(0.5),
            p90=percentile(0.9),
            p99=percentile(0.99),
        )


def percent_error(empirical: float, estimated: float) -> float:
    """Paper §5.3: PE = |empirical - estimated| / empirical * 100."""
    if empirical == 0:
        raise ValueError("percent error undefined for empirical value 0")
    return abs(empirical - estimated) / abs(empirical) * 100.0
