"""repro.traffic: trace-driven serving load for deployment scoring.

The subsystem has three layers (DESIGN.md §7):

1. :mod:`~repro.traffic.traces` — deterministic, seed-driven trace
   generators (poisson / diurnal / flash / pareto / multi / fleet) plus a
   line-JSON loader for external traces;
2. :mod:`~repro.traffic.replay` — a discrete-event replay engine that
   drives a trace through a deployment's batching/latency curve and
   records per-request latency, queue depth and energy;
3. SLO scoring — :class:`SLOSpec` violations feed the traffic-aware
   objectives in :mod:`repro.objectives.slo` and the persistent
   ``traffic.*`` counters behind ``service status``.
"""

from .replay import (
    DEFAULT_MAX_QUEUE,
    DIVERGENCE_WAIT_FACTOR,
    ReplayStats,
    SLOSpec,
    merge_stats,
    replay_fleet,
    replay_trace,
)
from .stats import record_replay, traffic_stats
from .traces import (
    MAX_TRACE_REQUESTS,
    TRACE_FAMILIES,
    Request,
    Trace,
    TraceSpec,
    build_trace,
    load_trace,
    parse_scenario,
    save_trace,
)

__all__ = [
    "DEFAULT_MAX_QUEUE",
    "DIVERGENCE_WAIT_FACTOR",
    "MAX_TRACE_REQUESTS",
    "TRACE_FAMILIES",
    "ReplayStats",
    "Request",
    "SLOSpec",
    "Trace",
    "TraceSpec",
    "build_trace",
    "load_trace",
    "merge_stats",
    "parse_scenario",
    "record_replay",
    "replay_fleet",
    "replay_trace",
    "save_trace",
    "traffic_stats",
]
