"""Traffic command-line interface.

Generate, inspect and replay serving-load traces from the shell::

    python -m repro traffic generate "diurnal:rate=40,peak=4,duration=120,seed=7" --out trace.jsonl
    python -m repro traffic replay "flash:rate=30,mult=8,duration=90,seed=7" --device armv7 --batch 16
    python -m repro traffic replay trace.jsonl --device i7nuc --batch 8 --json
    python -m repro traffic compare "diurnal:rate=40,duration=120,seed=7" --device armv7

``replay`` accepts either a scenario spec or a line-JSON trace file and
prices the candidate deployment with the hardware emulator.  ``compare``
sweeps the default batch candidates under the trace and prints the
SLO picture per batch size — the quick way to see why tuned-under-load
configurations diverge from steady-state picks.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..batching import DEFAULT_BATCH_CANDIDATES
from ..errors import ReproError
from ..hardware import Emulator, get_device
from .replay import SLOSpec, replay_trace
from .traces import Trace, build_trace, load_trace, save_trace


def _load(source: str) -> Trace:
    """Scenario spec or line-JSON path -> trace."""
    if os.path.exists(source):
        with open(source) as handle:
            return load_trace(
                handle, name=os.path.basename(source)
            )
    return build_trace(source)


def _latency_fn(args, emulator: Emulator):
    """Latency curve of the candidate deployment on the emulated device."""
    spec = get_device(args.device)
    frequency = args.frequency if args.frequency else None

    def latency(batch: int) -> float:
        return emulator.measure_inference(
            forward_flops_per_sample=args.flops,
            parameter_count=args.params,
            batch_size=batch,
            device=spec,
            cores=args.cores,
            frequency_ghz=frequency,
        ).batch_latency_s

    return latency, spec


def _slo(args) -> SLOSpec:
    return SLOSpec(
        p99_target_s=args.slo_p99,
        deadline_s=args.slo_deadline,
    )


def _cmd_generate(args) -> int:
    trace = build_trace(args.scenario)
    if args.out:
        with open(args.out, "w") as handle:
            count = save_trace(trace, handle)
        print(f"wrote {count} requests to {args.out} "
              f"(digest {trace.digest()})")
    else:
        save_trace(trace, sys.stdout)
    return 0


def _cmd_replay(args) -> int:
    trace = _load(args.scenario)
    emulator = Emulator()
    latency, spec = _latency_fn(args, emulator)
    power = emulator.measure_inference(
        forward_flops_per_sample=args.flops,
        parameter_count=args.params,
        batch_size=max(args.batch, 1),
        device=spec,
        cores=args.cores,
        frequency_ghz=args.frequency if args.frequency else None,
    ).power_w
    stats = replay_trace(
        trace,
        latency,
        max_batch=args.batch,
        slo=_slo(args),
        power_w=power,
        idle_power_w=spec.idle_power_w,
    )
    if args.json:
        payload = stats.to_dict()
        payload["digest"] = trace.digest()
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    print(f"trace:      {trace.name} ({stats.requests} requests, "
          f"digest {trace.digest()})")
    print(f"deployment: {args.device} batch={args.batch} "
          f"cores={args.cores}"
          + (f" freq={args.frequency}GHz" if args.frequency else ""))
    print(f"latency:    mean {stats.mean_latency_s * 1000:.1f}ms  "
          f"p95 {stats.p95_latency_s * 1000:.1f}ms  "
          f"p99 {stats.p99_latency_s * 1000:.1f}ms")
    print(f"throughput: {stats.throughput_rps:.1f} req/s  "
          f"utilisation {stats.utilisation:.2f}  "
          f"mean batch {stats.mean_batch:.1f}")
    print(f"energy:     {stats.energy_per_request_j:.4f} J/request")
    print(f"queue:      mean {stats.mean_queue_depth:.1f}  "
          f"max {stats.max_queue_depth}")
    if args.slo_deadline is not None:
        print(f"deadline:   {stats.deadline_misses} misses "
              f"({stats.deadline_miss_rate:.1%})")
    if stats.shed or stats.diverged:
        print(f"overload:   DIVERGED — {stats.shed} requests shed")
    if stats.storm_injected:
        print(f"storm:      {stats.storm_injected} injected requests")
    return 0


def _cmd_compare(args) -> int:
    trace = _load(args.scenario)
    emulator = Emulator()
    latency, spec = _latency_fn(args, emulator)
    slo = _slo(args)
    print(f"{'batch':>6} {'p99 ms':>10} {'mean ms':>10} {'miss %':>8} "
          f"{'J/req':>8} {'util':>6}  state")
    for batch in DEFAULT_BATCH_CANDIDATES:
        power = emulator.measure_inference(
            forward_flops_per_sample=args.flops,
            parameter_count=args.params,
            batch_size=batch,
            device=spec,
            cores=args.cores,
            frequency_ghz=args.frequency if args.frequency else None,
        ).power_w
        stats = replay_trace(
            trace, latency, max_batch=batch, slo=slo,
            power_w=power, idle_power_w=spec.idle_power_w,
        )
        state = "diverged" if stats.diverged else "ok"
        print(f"{batch:>6} {stats.p99_latency_s * 1000:>10.1f} "
              f"{stats.mean_latency_s * 1000:>10.1f} "
              f"{stats.deadline_miss_rate * 100:>8.2f} "
              f"{stats.energy_per_request_j:>8.4f} "
              f"{stats.utilisation:>6.2f}  {state}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro traffic",
        description="Generate and replay serving-load traces.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def deployment_args(sub) -> None:
        sub.add_argument("--device", default="armv7",
                         help="emulated edge device serving the trace")
        sub.add_argument("--batch", type=int, default=8,
                         help="inference batch size (greedy aggregation cap)")
        sub.add_argument("--cores", type=int, default=1)
        sub.add_argument("--frequency", type=float, default=None,
                         help="CPU frequency in GHz (default: device max)")
        sub.add_argument("--flops", type=float, default=200.0,
                         help="measured forward FLOPs per sample of the "
                              "served (scaled-down) model — the emulator "
                              "maps these onto realistic magnitudes")
        sub.add_argument("--params", type=int, default=12_000,
                         help="parameter count of the served model")
        sub.add_argument("--slo-p99", type=float, default=None,
                         help="p99 latency target in seconds")
        sub.add_argument("--slo-deadline", type=float, default=None,
                         help="per-request deadline in seconds")

    generate = subparsers.add_parser(
        "generate", help="materialise a scenario as line-JSON"
    )
    generate.add_argument("scenario",
                          help="scenario spec, e.g. 'diurnal:rate=40,"
                               "peak=4,duration=120,seed=7'")
    generate.add_argument("--out", default=None,
                          help="output path (default: stdout)")
    generate.set_defaults(func=_cmd_generate)

    replay = subparsers.add_parser(
        "replay", help="replay a scenario/trace against one deployment"
    )
    replay.add_argument("scenario",
                        help="scenario spec or line-JSON trace path")
    replay.add_argument("--json", action="store_true",
                        help="machine-readable stats output")
    deployment_args(replay)
    replay.set_defaults(func=_cmd_replay)

    compare = subparsers.add_parser(
        "compare", help="sweep batch candidates under one trace"
    )
    compare.add_argument("scenario",
                         help="scenario spec or line-JSON trace path")
    deployment_args(compare)
    compare.set_defaults(func=_cmd_compare)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
