"""Discrete-event trace replay: load in, per-request latency/SLO stats out.

The engine drives a request :class:`~repro.traffic.traces.Trace` through
the same greedy dynamic-batching semantics as
:func:`repro.batching.queueing.simulate_multistream_scenario`, extended
with everything deployment scoring needs:

* **multi-model service** — each model has its own latency curve; a batch
  only aggregates consecutive same-model requests (no cross-model
  batching on one device, matching real serving runtimes);
* **per-request accounting** — response latencies (hence p50/p95/p99),
  queue depth at every dispatch, busy/idle energy;
* **graceful overload degradation** — when the backlog diverges
  (head-of-queue wait beyond :data:`DIVERGENCE_WAIT_FACTOR` service
  times, or queue depth beyond ``max_queue``) the engine sheds the
  remaining requests into the miss count and reports, instead of
  simulating an unbounded queue or crashing;
* **fault injection** — the ``traffic.request_storm`` site multiplies
  arrivals inside a mid-trace window, so chaos tests can assert the
  degradation path stays graceful.

Everything runs in virtual time (see :mod:`repro.sim.clock`): nothing
sleeps, and a replay of millions of requests is a tight Python/numpy
loop — the perf harness gates it at >= 50k simulated requests/sec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import faults
from ..errors import ConfigurationError
from .traces import Trace

LatencyFn = Callable[[int], float]

#: The backlog is declared divergent when the head-of-queue request has
#: waited longer than this many service times of the *largest* batch —
#: by then the queue can only have grown monotonically for many calls.
DIVERGENCE_WAIT_FACTOR = 50.0

#: Default queue-depth ceiling before the engine starts shedding.
DEFAULT_MAX_QUEUE = 100_000

#: Default storm burst multiplier when the fault rule carries no param.
DEFAULT_STORM_MULT = 5.0


@dataclass(frozen=True)
class SLOSpec:
    """Service-level objectives a deployment is scored against."""

    #: Target for the 99th-percentile response latency, seconds.
    p99_target_s: Optional[float] = None
    #: Per-request completion deadline, seconds after arrival.
    deadline_s: Optional[float] = None
    #: Energy budget per served request, joules.
    energy_budget_j: Optional[float] = None

    def canonical(self) -> str:
        parts = []
        if self.p99_target_s is not None:
            parts.append(f"p99={self.p99_target_s:g}")
        if self.deadline_s is not None:
            parts.append(f"deadline={self.deadline_s:g}")
        if self.energy_budget_j is not None:
            parts.append(f"energy={self.energy_budget_j:g}")
        return ",".join(parts) or "none"

    def violations(self, stats: "ReplayStats") -> Dict[str, float]:
        """SLO violation counters for one replay (status reporting)."""
        out: Dict[str, float] = {}
        if self.p99_target_s is not None:
            out["p99"] = 1.0 if stats.p99_latency_s > self.p99_target_s \
                else 0.0
        if self.deadline_s is not None:
            out["deadline"] = float(stats.deadline_misses)
        if self.energy_budget_j is not None:
            out["energy"] = (
                1.0 if stats.energy_per_request_j > self.energy_budget_j
                else 0.0
            )
        return out


@dataclass
class ReplayStats:
    """Outcome of replaying one trace against one deployment config."""

    trace: str
    requests: int
    completed: int
    #: Requests shed by the overload guard (they count as misses).
    shed: int
    #: The backlog diverged and the replay short-circuited.
    diverged: bool
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    deadline_misses: int
    deadline_miss_rate: float
    throughput_rps: float
    energy_per_request_j: float
    energy_total_j: float
    busy_s: float
    horizon_s: float
    utilisation: float
    mean_queue_depth: float
    max_queue_depth: int
    batches: int
    mean_batch: float
    #: Extra requests injected by the ``traffic.request_storm`` fault.
    storm_injected: int = 0
    per_model: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace": self.trace,
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "diverged": self.diverged,
            "mean_latency_s": self.mean_latency_s,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "max_latency_s": self.max_latency_s,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
            "throughput_rps": self.throughput_rps,
            "energy_per_request_j": self.energy_per_request_j,
            "energy_total_j": self.energy_total_j,
            "busy_s": self.busy_s,
            "horizon_s": self.horizon_s,
            "utilisation": self.utilisation,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "batches": self.batches,
            "mean_batch": self.mean_batch,
            "storm_injected": self.storm_injected,
            "per_model": dict(self.per_model),
        }


def _percentile(ordered: np.ndarray, q: float) -> float:
    """Nearest-rank percentile over a pre-sorted array (matches the
    estimator used across the repo's telemetry)."""
    if ordered.size == 0:
        return 0.0
    index = min(int(q * (ordered.size - 1)), ordered.size - 1)
    return float(ordered[index])


def _storm(trace: Trace) -> Tuple[Trace, int]:
    """Apply the ``traffic.request_storm`` fault, if planned.

    Every request inside the middle-third window is replicated
    ``mult - 1`` extra times at its own timestamp — a deterministic burst
    that multiplies instantaneous load without perturbing the RNG streams
    of the generators (the schedule stays bit-identical otherwise).
    """
    plan = faults.get_plan()
    if plan is None or not plan.should(
        "traffic.request_storm", key=trace.name
    ):
        return trace, 0
    rule = plan.rules["traffic.request_storm"]
    mult = int(rule.param) if rule.param is not None \
        else int(DEFAULT_STORM_MULT)
    mult = max(2, mult)
    duration = trace.duration_s
    lo, hi = duration / 3.0, 2.0 * duration / 3.0
    in_window = (trace.arrivals_s >= lo) & (trace.arrivals_s < hi)
    extra = int(np.count_nonzero(in_window)) * (mult - 1)
    if extra == 0:
        return trace, 0
    arrivals = np.concatenate(
        [trace.arrivals_s]
        + [trace.arrivals_s[in_window]] * (mult - 1)
    )
    model_ids = np.concatenate(
        [trace.model_ids] + [trace.model_ids[in_window]] * (mult - 1)
    )
    order = np.argsort(arrivals, kind="stable")
    stormed = Trace(
        name=trace.name,
        arrivals_s=arrivals[order],
        model_ids=model_ids[order],
        models=trace.models,
        meta=dict(trace.meta),
    )
    return stormed, extra


def _latency_tables(
    latency_fn: Union[LatencyFn, Sequence[LatencyFn]],
    num_models: int,
    max_batch: int,
) -> List[np.ndarray]:
    """Precompute per-model latency(batch) tables for the hot loop."""
    if callable(latency_fn):
        fns: Sequence[LatencyFn] = [latency_fn] * num_models
    else:
        fns = list(latency_fn)
        if len(fns) != num_models:
            raise ConfigurationError(
                f"trace has {num_models} models but {len(fns)} latency "
                "functions were provided"
            )
    tables = []
    for fn in fns:
        table = np.empty(max_batch + 1, dtype=np.float64)
        table[0] = 0.0
        for batch in range(1, max_batch + 1):
            value = float(fn(batch))
            if not math.isfinite(value) or value <= 0:
                raise ConfigurationError(
                    f"latency_fn({batch}) must be a positive finite "
                    f"number, got {value}"
                )
            table[batch] = value
        tables.append(table)
    return tables


def replay_trace(
    trace: Trace,
    latency_fn: Union[LatencyFn, Sequence[LatencyFn]],
    max_batch: int = 1,
    slo: Optional[SLOSpec] = None,
    power_w: float = 0.0,
    idle_power_w: float = 0.0,
    max_queue: int = DEFAULT_MAX_QUEUE,
) -> ReplayStats:
    """Replay ``trace`` through one deployment configuration.

    ``latency_fn`` maps a batch size to the device's batched-inference
    call latency (one function, or one per trace model).  ``max_batch``
    is the deployment's configured inference batch size — the greedy
    batcher aggregates up to this many queued same-model requests per
    call.  ``power_w``/``idle_power_w`` price busy and idle virtual time
    so energy-per-request reflects *deployment* energy, idle draw
    included, not just the per-call marginal cost.
    """
    if max_batch < 1:
        raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
    if max_queue < 1:
        raise ConfigurationError(f"max_queue must be >= 1, got {max_queue}")
    slo = slo or SLOSpec()
    trace, storm_injected = _storm(trace)
    arrivals = trace.arrivals_s
    model_ids = trace.model_ids
    total = arrivals.size
    if total == 0:
        raise ConfigurationError("cannot replay an empty trace")
    tables = _latency_tables(latency_fn, len(trace.models), max_batch)
    max_service = max(float(table[max_batch]) for table in tables)
    divergence_wait_s = DIVERGENCE_WAIT_FACTOR * max_service

    responses = np.empty(total, dtype=np.float64)
    engine_free = 0.0
    busy = 0.0
    energy_busy = 0.0
    batches = 0
    depth_sum = 0
    max_depth = 0
    diverged = False
    index = 0
    while index < total:
        arrival = arrivals[index]
        start = arrival if arrival > engine_free else engine_free
        wait = start - arrival
        # Queue depth at dispatch: everything that has arrived but not
        # been served.  searchsorted keeps the hot loop O(log n) here.
        depth = int(
            np.searchsorted(arrivals, start, side="right")
        ) - index
        if wait > divergence_wait_s or depth > max_queue:
            # Unbounded backlog: shed the tail instead of simulating a
            # queue that can only grow.  Deterministic — purely a
            # function of the same virtual timeline every replay sees.
            diverged = True
            break
        if depth > max_depth:
            max_depth = depth
        depth_sum += depth
        model = model_ids[index]
        take = 1
        limit = min(max_batch, total - index)
        while (
            take < limit
            and arrivals[index + take] <= start
            and model_ids[index + take] == model
        ):
            take += 1
        service = tables[model][take]
        finish = start + service
        responses[index:index + take] = finish - arrivals[index:index + take]
        busy += service
        energy_busy += service * power_w
        batches += 1
        engine_free = finish
        index += take

    completed = index
    shed = total - completed
    horizon = max(engine_free, float(arrivals[-1]))
    latencies = responses[:completed]
    ordered = np.sort(latencies)
    deadline_misses = shed
    if slo.deadline_s is not None:
        deadline_misses += int(np.count_nonzero(latencies > slo.deadline_s))
    energy_total = energy_busy + idle_power_w * max(horizon - busy, 0.0)
    per_model: Dict[str, int] = {}
    if len(trace.models) > 1:
        counts = np.bincount(model_ids, minlength=len(trace.models))
        per_model = {
            name: int(count)
            for name, count in zip(trace.models, counts)
        }
    return ReplayStats(
        trace=trace.name,
        requests=total,
        completed=completed,
        shed=shed,
        diverged=diverged,
        mean_latency_s=float(ordered.mean()) if completed else float("inf"),
        p50_latency_s=_percentile(ordered, 0.50),
        p95_latency_s=_percentile(ordered, 0.95),
        p99_latency_s=_percentile(ordered, 0.99),
        max_latency_s=float(ordered[-1]) if completed else 0.0,
        deadline_misses=deadline_misses,
        deadline_miss_rate=deadline_misses / total,
        throughput_rps=completed / horizon if horizon > 0 else 0.0,
        energy_per_request_j=(
            energy_total / completed if completed else float("inf")
        ),
        energy_total_j=energy_total,
        busy_s=busy,
        horizon_s=horizon,
        utilisation=min(busy / horizon, 1.0) if horizon > 0 else 0.0,
        mean_queue_depth=depth_sum / batches if batches else 0.0,
        max_queue_depth=max_depth,
        batches=batches,
        mean_batch=completed / batches if batches else 0.0,
        storm_injected=storm_injected,
        per_model=per_model,
    )


def replay_fleet(
    trace: Trace,
    latency_fn_for: Callable[[str], LatencyFn],
    max_batch: int = 1,
    slo: Optional[SLOSpec] = None,
    power_for: Optional[Callable[[str], Tuple[float, float]]] = None,
    max_queue: int = DEFAULT_MAX_QUEUE,
) -> Dict[str, ReplayStats]:
    """Replay a fleet trace: each device serves its own sub-stream.

    ``latency_fn_for(device)`` builds the device's latency curve;
    ``power_for(device)`` optionally returns ``(busy_w, idle_w)``.
    Returns per-device stats keyed by device name.
    """
    if trace.device_ids is None:
        raise ConfigurationError(
            "replay_fleet needs a fleet trace (per-request devices); "
            "use replay_trace for single-device traces"
        )
    results: Dict[str, ReplayStats] = {}
    for device, sub_trace in trace.split_by_device().items():
        if len(sub_trace) == 0:
            continue
        busy_w, idle_w = (0.0, 0.0)
        if power_for is not None:
            busy_w, idle_w = power_for(device)
        results[device] = replay_trace(
            sub_trace,
            latency_fn_for(device),
            max_batch=max_batch,
            slo=slo,
            power_w=busy_w,
            idle_power_w=idle_w,
            max_queue=max_queue,
        )
    return results


def merge_stats(results: Dict[str, ReplayStats]) -> Dict[str, float]:
    """Fleet-level aggregate of per-device replay stats (status views)."""
    if not results:
        return {}
    total = sum(stats.requests for stats in results.values())
    completed = sum(stats.completed for stats in results.values())
    misses = sum(stats.deadline_misses for stats in results.values())
    energy = sum(stats.energy_total_j for stats in results.values())
    return {
        "requests": float(total),
        "completed": float(completed),
        "deadline_miss_rate": misses / total if total else 0.0,
        "worst_p99_latency_s": max(
            stats.p99_latency_s for stats in results.values()
        ),
        "energy_per_request_j": energy / completed if completed else 0.0,
        "devices": float(len(results)),
    }
