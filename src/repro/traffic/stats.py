"""Persistent traffic counters for ``service status``.

Replays executed while scoring deployment candidates (the SLO-aware
inference objectives) record crash-safe aggregate counters into the
``fleet_stats`` key-value table (migration v7) under a ``traffic.``
prefix, so ``service status --json`` can report serving-load progress —
requests replayed, SLO violations, shed/diverged replays — next to the
fleet and cache meters, from any process, after any crash.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..storage import TrialDatabase
from .replay import ReplayStats, SLOSpec

#: Key prefix separating traffic counters from fleet counters inside the
#: shared ``fleet_stats`` table.
PREFIX = "traffic."


def _bump(database: TrialDatabase, key: str, amount: float) -> None:
    if not amount:
        return
    database.execute(
        "INSERT INTO fleet_stats (key, value) VALUES (?, ?) "
        "ON CONFLICT (key) DO UPDATE SET value = value + excluded.value",
        (PREFIX + key, float(amount)),
    )


def record_replay(
    database: TrialDatabase,
    stats: ReplayStats,
    slo: Optional[SLOSpec] = None,
) -> None:
    """Fold one replay's outcome into the persistent counters."""
    _bump(database, "replays", 1)
    _bump(database, "requests_replayed", stats.requests)
    _bump(database, "requests_shed", stats.shed)
    _bump(database, "replays_diverged", 1 if stats.diverged else 0)
    _bump(database, "storm_injected", stats.storm_injected)
    if slo is not None:
        for name, count in slo.violations(stats).items():
            _bump(database, f"slo_violations.{name}", count)


def traffic_stats(database: TrialDatabase) -> Dict[str, float]:
    """All ``traffic.*`` counters, with the prefix stripped."""
    rows = database.execute(
        "SELECT key, value FROM fleet_stats WHERE key LIKE ? ORDER BY key",
        (PREFIX + "%",),
    ).fetchall()
    return {key[len(PREFIX):]: float(value) for key, value in rows}
