"""Trace generators: deterministic serving-load request streams.

The traffic subsystem replays *traces* — timestamped request streams —
through the discrete-event engine in :mod:`repro.traffic.replay` to score
deployment configurations under realistic load instead of steady-state
one-off inference.  Every generator here is seed-driven and bit-exactly
reproducible: the same :class:`TraceSpec` produces the same
:class:`Trace` in every process, on every run (the determinism contract
the SLO objectives and the artifact cache rely on).

Five trace families cover the ROADMAP's "millions of users" load shapes:

``poisson``   homogeneous Poisson arrivals (the steady baseline)
``diurnal``   smooth day/night cycle (raised-cosine rate modulation)
``flash``     flash crowd: a rate spike of ``mult``x inside a window
``pareto``    heavy-tailed/bursty Pareto inter-arrivals
``multi``     several model streams multiplexed onto one device
``fleet``     a device-mix: per-device sub-traces over heterogeneous
              :mod:`repro.hardware` edge devices

All families share one canonical request format — ``(arrival_s,
model_id, device)`` — stored as numpy arrays for replay speed, with a
line-JSON import/export path for external traces.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, IO, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from ..rng import derive_seed, make_rng

#: Trace families understood by :func:`parse_scenario`.
TRACE_FAMILIES = ("poisson", "diurnal", "flash", "pareto", "multi", "fleet")

#: Hard cap on generated requests per trace: a mis-parameterised scenario
#: (rate x duration explosion) fails loudly instead of eating the host's
#: memory.
MAX_TRACE_REQUESTS = 5_000_000


@dataclass(frozen=True)
class Request:
    """One inference request of a trace (the line-JSON record shape)."""

    arrival_s: float
    model: str = "default"
    device: Optional[str] = None

    def to_json(self) -> str:
        record = {"arrival_s": round(self.arrival_s, 9), "model": self.model}
        if self.device is not None:
            record["device"] = self.device
        return json.dumps(record, sort_keys=True)


@dataclass
class Trace:
    """A timestamped request stream in replay-ready (array) form.

    ``arrivals_s`` is sorted ascending; ``model_ids`` indexes ``models``
    per request.  ``device_ids`` is only populated for fleet traces
    (``None`` means every request targets the replay caller's device).
    """

    name: str
    arrivals_s: np.ndarray
    model_ids: np.ndarray
    models: Tuple[str, ...] = ("default",)
    device_ids: Optional[np.ndarray] = None
    devices: Tuple[str, ...] = ()
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.arrivals_s = np.asarray(self.arrivals_s, dtype=np.float64)
        self.model_ids = np.asarray(self.model_ids, dtype=np.int64)
        if self.arrivals_s.shape != self.model_ids.shape:
            raise ConfigurationError(
                "arrivals and model ids must be index-aligned"
            )
        if self.arrivals_s.size and np.any(np.diff(self.arrivals_s) < 0):
            raise ConfigurationError("trace arrivals must be sorted")

    def __len__(self) -> int:
        return int(self.arrivals_s.size)

    @property
    def duration_s(self) -> float:
        return float(self.arrivals_s[-1]) if len(self) else 0.0

    def digest(self) -> str:
        """Bit-exact content address of the request stream."""
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(self.arrivals_s.tobytes())
        hasher.update(self.model_ids.tobytes())
        hasher.update("|".join(self.models).encode("utf-8"))
        if self.device_ids is not None:
            hasher.update(self.device_ids.tobytes())
            hasher.update("|".join(self.devices).encode("utf-8"))
        return hasher.hexdigest()

    def requests(self) -> Iterator[Request]:
        for index in range(len(self)):
            device = None
            if self.device_ids is not None:
                device = self.devices[int(self.device_ids[index])]
            yield Request(
                arrival_s=float(self.arrivals_s[index]),
                model=self.models[int(self.model_ids[index])],
                device=device,
            )

    def split_by_device(self) -> Dict[str, "Trace"]:
        """Per-device sub-traces of a fleet trace (identity otherwise)."""
        if self.device_ids is None:
            return {"": self}
        out: Dict[str, Trace] = {}
        for device_index, device in enumerate(self.devices):
            mask = self.device_ids == device_index
            out[device] = Trace(
                name=f"{self.name}@{device}",
                arrivals_s=self.arrivals_s[mask],
                model_ids=self.model_ids[mask],
                models=self.models,
                meta=dict(self.meta),
            )
        return out


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

def _homogeneous_arrivals(
    rng: np.random.Generator, rate_rps: float, duration_s: float
) -> np.ndarray:
    """Poisson arrivals on [0, duration): exponential gaps, cumsum, clip.

    Draws in fixed-size blocks so the number of RNG calls depends only on
    (rate, duration, seed) — never on float accumulation order.
    """
    if rate_rps <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if duration_s <= 0:
        raise ConfigurationError("trace duration must be positive")
    expected = rate_rps * duration_s
    if expected > MAX_TRACE_REQUESTS:
        raise ConfigurationError(
            f"scenario would generate ~{expected:.0f} requests "
            f"(cap {MAX_TRACE_REQUESTS}); lower rate or duration"
        )
    chunks: List[np.ndarray] = []
    total = 0.0
    while True:
        block = max(256, int(expected * 0.25) + 1)
        gaps = rng.exponential(1.0 / rate_rps, size=block)
        arrivals = total + np.cumsum(gaps)
        chunks.append(arrivals)
        total = float(arrivals[-1])
        if total >= duration_s:
            break
    arrivals = np.concatenate(chunks)
    return arrivals[arrivals < duration_s]


def _thin(
    rng: np.random.Generator,
    arrivals: np.ndarray,
    accept_probability: np.ndarray,
) -> np.ndarray:
    """Thinning step for non-homogeneous Poisson processes."""
    return arrivals[rng.random(size=arrivals.size) < accept_probability]


@dataclass(frozen=True)
class TraceSpec:
    """Parsed scenario description (the canonical, hashable identity).

    ``family`` picks the generator; ``params`` are the family's knobs
    (already validated/normalised).  ``canonical()`` is the string form
    embedded in objective names, session specs and artifact trial keys —
    two specs with the same canonical form build bit-identical traces.
    """

    family: str
    rate_rps: float
    duration_s: float
    seed: int
    params: Tuple[Tuple[str, float], ...] = ()
    devices: Tuple[str, ...] = ()
    models: int = 1

    def canonical(self) -> str:
        parts = [
            f"rate={self.rate_rps:g}",
            f"duration={self.duration_s:g}",
            f"seed={self.seed}",
        ]
        if self.models != 1:
            parts.append(f"models={self.models}")
        parts.extend(f"{key}={value:g}" for key, value in self.params)
        if self.devices:
            parts.append("devices=" + "+".join(self.devices))
        return f"{self.family}:" + ",".join(sorted(parts))

    def param(self, key: str, default: float) -> float:
        for name, value in self.params:
            if name == key:
                return value
        return default

    # -- builders ----------------------------------------------------------
    def build(self) -> Trace:
        """Materialise the request stream (deterministic in the spec)."""
        builder = {
            "poisson": self._build_poisson,
            "diurnal": self._build_diurnal,
            "flash": self._build_flash,
            "pareto": self._build_pareto,
            "multi": self._build_multi,
            "fleet": self._build_fleet,
        }[self.family]
        trace = builder()
        trace.meta["scenario"] = self.canonical()
        return trace

    def _rng(self, *path: Union[str, int]) -> np.random.Generator:
        return make_rng(derive_seed(self.seed, "traffic", self.family, *path))

    def _single_model(self, arrivals: np.ndarray, name: str) -> Trace:
        return Trace(
            name=name,
            arrivals_s=arrivals,
            model_ids=np.zeros(arrivals.size, dtype=np.int64),
        )

    def _build_poisson(self) -> Trace:
        arrivals = _homogeneous_arrivals(
            self._rng("arrivals"), self.rate_rps, self.duration_s
        )
        return self._single_model(arrivals, "poisson")

    def _build_diurnal(self) -> Trace:
        """Raised-cosine diurnal cycle via Lewis-Shedler thinning.

        rate(t) = base + (peak - base) * (1 - cos(2 pi t / period)) / 2,
        so the trace starts in the trough and peaks mid-period.
        """
        peak_mult = self.param("peak", 4.0)
        period = self.param("period", self.duration_s)
        if peak_mult < 1.0:
            raise ConfigurationError("diurnal peak multiplier must be >= 1")
        if period <= 0:
            raise ConfigurationError("diurnal period must be positive")
        peak_rate = self.rate_rps * peak_mult
        rng = self._rng("arrivals")
        candidates = _homogeneous_arrivals(rng, peak_rate, self.duration_s)
        rate = self.rate_rps + (peak_rate - self.rate_rps) * 0.5 * (
            1.0 - np.cos(2.0 * math.pi * candidates / period)
        )
        arrivals = _thin(rng, candidates, rate / peak_rate)
        return self._single_model(arrivals, "diurnal")

    def _build_flash(self) -> Trace:
        """Flash crowd: base Poisson with a ``mult``x window spike."""
        mult = self.param("mult", 8.0)
        start = self.param("start", self.duration_s / 3.0)
        width = self.param("width", self.duration_s / 6.0)
        if mult < 1.0:
            raise ConfigurationError("flash multiplier must be >= 1")
        if width <= 0 or start < 0:
            raise ConfigurationError(
                "flash window needs start >= 0 and width > 0"
            )
        peak_rate = self.rate_rps * mult
        rng = self._rng("arrivals")
        candidates = _homogeneous_arrivals(rng, peak_rate, self.duration_s)
        in_spike = (candidates >= start) & (candidates < start + width)
        accept = np.where(in_spike, 1.0, 1.0 / mult)
        arrivals = _thin(rng, candidates, accept)
        return self._single_model(arrivals, "flash")

    def _build_pareto(self) -> Trace:
        """Heavy-tailed (bursty) arrivals: Lomax/Pareto-II gaps.

        Gap = scale * Pareto(alpha) draws with mean scale/(alpha-1);
        the scale is solved so the long-run rate matches ``rate_rps``,
        which keeps the family comparable to the Poisson baseline while
        clustering arrivals into bursts separated by long silences.
        """
        alpha = self.param("alpha", 1.5)
        if alpha <= 1.0:
            raise ConfigurationError(
                "pareto alpha must be > 1 (finite mean inter-arrival)"
            )
        mean_gap = 1.0 / self.rate_rps
        scale = mean_gap * (alpha - 1.0)
        expected = self.rate_rps * self.duration_s
        if expected > MAX_TRACE_REQUESTS:
            raise ConfigurationError(
                f"scenario would generate ~{expected:.0f} requests "
                f"(cap {MAX_TRACE_REQUESTS}); lower rate or duration"
            )
        rng = self._rng("arrivals")
        chunks: List[np.ndarray] = []
        total = 0.0
        while True:
            gaps = scale * rng.pareto(alpha, size=max(256, int(expected) + 1))
            arrivals = total + np.cumsum(gaps)
            chunks.append(arrivals)
            total = float(arrivals[-1])
            if total >= self.duration_s:
                break
        arrivals = np.concatenate(chunks)
        return self._single_model(
            arrivals[arrivals < self.duration_s], "pareto"
        )

    def _build_multi(self) -> Trace:
        """Several model pipelines sharing one device.

        Stream ``k`` carries ``2^-k``-proportional weight (the classic
        skewed multi-model mix); streams are merged with a stable sort so
        equal timestamps order by stream index deterministically.
        """
        if self.models < 2:
            raise ConfigurationError("multi traces need models >= 2")
        weights = np.array(
            [2.0 ** -k for k in range(self.models)], dtype=np.float64
        )
        weights /= weights.sum()
        arrivals_parts: List[np.ndarray] = []
        id_parts: List[np.ndarray] = []
        for stream, weight in enumerate(weights):
            part = _homogeneous_arrivals(
                self._rng("stream", stream),
                self.rate_rps * float(weight),
                self.duration_s,
            )
            arrivals_parts.append(part)
            id_parts.append(np.full(part.size, stream, dtype=np.int64))
        arrivals = np.concatenate(arrivals_parts)
        model_ids = np.concatenate(id_parts)
        order = np.argsort(arrivals, kind="stable")
        return Trace(
            name="multi",
            arrivals_s=arrivals[order],
            model_ids=model_ids[order],
            models=tuple(f"model-{k}" for k in range(self.models)),
        )

    def _build_fleet(self) -> Trace:
        """A fleet mix: independent sub-streams per heterogeneous device."""
        if len(self.devices) < 2:
            raise ConfigurationError(
                "fleet traces need devices=a+b (two or more device names)"
            )
        from ..hardware import get_device

        for device in self.devices:
            get_device(device)  # validate early, before generating anything
        arrivals_parts: List[np.ndarray] = []
        device_parts: List[np.ndarray] = []
        for device_index, device in enumerate(self.devices):
            part = _homogeneous_arrivals(
                self._rng("device", device),
                self.rate_rps / len(self.devices),
                self.duration_s,
            )
            arrivals_parts.append(part)
            device_parts.append(
                np.full(part.size, device_index, dtype=np.int64)
            )
        arrivals = np.concatenate(arrivals_parts)
        device_ids = np.concatenate(device_parts)
        order = np.argsort(arrivals, kind="stable")
        arrivals = arrivals[order]
        return Trace(
            name="fleet",
            arrivals_s=arrivals,
            model_ids=np.zeros(arrivals.size, dtype=np.int64),
            device_ids=device_ids[order],
            devices=tuple(self.devices),
        )


def parse_scenario(spec: str) -> TraceSpec:
    """Parse ``family:key=value,...`` into a validated :class:`TraceSpec`.

    Examples::

        diurnal:rate=40,peak=4,period=120,duration=240,seed=7
        flash:rate=30,mult=8,start=60,width=20,duration=180,seed=7
        pareto:rate=50,alpha=1.5,duration=120,seed=7
        multi:rate=40,models=3,duration=120,seed=7
        fleet:rate=40,devices=armv7+i7nuc,duration=120,seed=7
    """
    spec = str(spec).strip()
    family, _, rest = spec.partition(":")
    family = family.strip().lower()
    if family not in TRACE_FAMILIES:
        raise ConfigurationError(
            f"unknown trace family {family!r}; expected one of "
            f"{TRACE_FAMILIES}"
        )
    values: Dict[str, str] = {}
    for entry in rest.split(","):
        entry = entry.strip()
        if not entry:
            continue
        if "=" not in entry:
            raise ConfigurationError(f"malformed scenario entry {entry!r}")
        key, _, value = entry.partition("=")
        values[key.strip().lower()] = value.strip()
    try:
        rate = float(values.pop("rate", 50.0))
        duration = float(values.pop("duration", 60.0))
        seed = int(values.pop("seed", 0))
        models = int(values.pop("models", 2 if family == "multi" else 1))
    except ValueError as error:
        raise ConfigurationError(f"malformed scenario {spec!r}: {error}")
    devices: Tuple[str, ...] = ()
    if "devices" in values:
        devices = tuple(
            name.strip().lower()
            for name in values.pop("devices").split("+")
            if name.strip()
        )
    known_params = {
        "poisson": (),
        "diurnal": ("peak", "period"),
        "flash": ("mult", "start", "width"),
        "pareto": ("alpha",),
        "multi": (),
        "fleet": (),
    }[family]
    params: List[Tuple[str, float]] = []
    for key in sorted(values):
        if key not in known_params:
            raise ConfigurationError(
                f"scenario key {key!r} is not valid for family {family!r} "
                f"(valid: rate, duration, seed"
                + (", models" if family == "multi" else "")
                + (", devices" if family == "fleet" else "")
                + (", " + ", ".join(known_params) if known_params else "")
                + ")"
            )
        try:
            params.append((key, float(values[key])))
        except ValueError as error:
            raise ConfigurationError(
                f"malformed scenario {spec!r}: {error}"
            )
    trace_spec = TraceSpec(
        family=family,
        rate_rps=rate,
        duration_s=duration,
        seed=seed,
        params=tuple(params),
        devices=devices,
        models=models,
    )
    # Validate eagerly: a bad spec should fail at parse/submit time, not
    # mid-session inside a worker.  Building is cheap relative to tuning,
    # but skip it for huge traces — the range checks below cover those.
    if rate * duration <= 100_000:
        trace_spec.build()
    return trace_spec


def build_trace(spec: Union[str, TraceSpec]) -> Trace:
    """One-call convenience: parse (if needed) and build."""
    parsed = parse_scenario(spec) if isinstance(spec, str) else spec
    return parsed.build()


# ---------------------------------------------------------------------------
# Line-JSON import/export (external traces)
# ---------------------------------------------------------------------------

def save_trace(trace: Trace, handle: IO[str]) -> int:
    """Write a trace as line-JSON; returns the number of records."""
    count = 0
    for request in trace.requests():
        handle.write(request.to_json() + "\n")
        count += 1
    return count


def load_trace(handle: IO[str], name: str = "external") -> Trace:
    """Load a line-JSON trace (one ``{"arrival_s": ...}`` object per line).

    Records may carry ``model`` and ``device`` fields; arrivals are
    sorted if the file is not already ordered (stable, so equal
    timestamps keep file order).
    """
    arrivals: List[float] = []
    model_names: List[str] = []
    device_names: List[Optional[str]] = []
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            arrival = float(record["arrival_s"])
        except (ValueError, KeyError, TypeError) as error:
            raise ConfigurationError(
                f"bad trace record on line {line_number}: {error}"
            )
        if arrival < 0:
            raise ConfigurationError(
                f"negative arrival on line {line_number}: {arrival}"
            )
        arrivals.append(arrival)
        model_names.append(str(record.get("model", "default")))
        device_names.append(record.get("device"))
    if not arrivals:
        raise ConfigurationError("trace file contains no requests")
    if len(arrivals) > MAX_TRACE_REQUESTS:
        raise ConfigurationError(
            f"trace file holds {len(arrivals)} requests "
            f"(cap {MAX_TRACE_REQUESTS})"
        )
    models = tuple(sorted(set(model_names)))
    model_index = {model: index for index, model in enumerate(models)}
    arrivals_array = np.asarray(arrivals, dtype=np.float64)
    model_ids = np.asarray(
        [model_index[model] for model in model_names], dtype=np.int64
    )
    device_ids: Optional[np.ndarray] = None
    devices: Tuple[str, ...] = ()
    if any(device is not None for device in device_names):
        devices = tuple(
            sorted({device for device in device_names if device is not None})
        )
        device_index = {device: idx for idx, device in enumerate(devices)}
        device_ids = np.asarray(
            [device_index.get(device or devices[0], 0)
             for device in device_names],
            dtype=np.int64,
        )
    order = np.argsort(arrivals_array, kind="stable")
    return Trace(
        name=name,
        arrivals_s=arrivals_array[order],
        model_ids=model_ids[order],
        models=models,
        device_ids=None if device_ids is None else device_ids[order],
        devices=devices,
    )
