"""Workload registry mirroring the paper's Table 1."""

from .registry import WORKLOADS, get_workload, workload_ids
from .workload import (
    INFERENCE_BATCH_RANGE,
    TRAIN_BATCH_RANGE,
    TRAIN_GPU_RANGE,
    Table1Row,
    Workload,
)

__all__ = [
    "Workload",
    "Table1Row",
    "WORKLOADS",
    "get_workload",
    "workload_ids",
    "TRAIN_BATCH_RANGE",
    "TRAIN_GPU_RANGE",
    "INFERENCE_BATCH_RANGE",
]
