"""The paper's four evaluation workloads (Table 1)."""

from __future__ import annotations

from typing import Dict, List

from ..errors import WorkloadError
from .workload import Table1Row, Workload

WORKLOADS: Dict[str, Workload] = {
    "IC": Workload(
        workload_id="IC",
        model_name="resnet",
        dataset_name="cifar10",
        table1=Table1Row(
            type_label="Image Classification",
            datasize="163 MB",
            train_files=50_000,
            test_files=10_000,
        ),
    ),
    "SR": Workload(
        workload_id="SR",
        model_name="m5",
        dataset_name="speechcommands",
        table1=Table1Row(
            type_label="Speech Recognition",
            datasize="8.17 GiB",
            train_files=85_511,
            test_files=4_890,
        ),
    ),
    "NLP": Workload(
        workload_id="NLP",
        model_name="textrnn",
        dataset_name="agnews",
        table1=Table1Row(
            type_label="Natural Language Processing",
            datasize="60.10 MB",
            train_files=120_000,
            test_files=7_600,
        ),
    ),
    "OD": Workload(
        workload_id="OD",
        model_name="yolo",
        dataset_name="coco",
        table1=Table1Row(
            type_label="Object Detection",
            datasize="19 GB",
            train_files=164_000,
            test_files=41_000,
        ),
        # The detection loss is more step-hungry than the classifiers;
        # a gentler base rate keeps large-batch trials from diverging.
        learning_rate=0.01,
    ),
}


def workload_ids() -> List[str]:
    return list(WORKLOADS)


def get_workload(workload_id: str) -> Workload:
    try:
        return WORKLOADS[workload_id.upper()]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {workload_id!r}; expected one of "
            f"{workload_ids()}"
        ) from None
